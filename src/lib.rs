//! # GKS — Generic Keyword Search over XML Data
//!
//! A from-scratch Rust implementation of *"Generic Keyword Search over XML
//! Data"* (Agarwal, Ramamritham, Agarwal — EDBT 2016).
//!
//! This facade crate re-exports the workspace's public API. Start with
//! [`Engine`](gks_core::engine::Engine):
//!
//! ```
//! use gks::prelude::*;
//!
//! let xml = r#"<dept><area><name>Databases</name><courses>
//!     <course><name>Data Mining</name>
//!       <students><student>Karen</student><student>Mike</student></students>
//!     </course>
//!     <course><name>Algorithms</name>
//!       <students><student>Karen</student><student>John</student></students>
//!     </course>
//! </courses></area></dept>"#;
//!
//! let corpus = Corpus::from_named_strs([("uni", xml)]).unwrap();
//! let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();
//! let query = Query::parse("karen mike john").unwrap();
//! let resp = engine.search(&query, SearchOptions::with_s(2)).unwrap();
//! assert!(!resp.hits().is_empty());
//! ```
//!
//! The individual subsystems are available as their own crates and re-exported
//! here as modules:
//!
//! * [`xml`] — streaming XML pull parser and writer,
//! * [`dewey`] — Dewey identifiers and codecs,
//! * [`text`] — tokenizer, stop words, Porter stemmer,
//! * [`index`] — node categorization and the GKS indexes,
//! * [`core`] — search, ranking, DI discovery, query refinement,
//! * [`baselines`] — SLCA / ELCA / naïve-GKS reference algorithms,
//! * [`datagen`] — synthetic corpora mirroring the paper's datasets,
//! * [`server`] — the resident HTTP query service (`gks serve`) and its
//!   closed-loop load generator.

pub use gks_baselines as baselines;
pub use gks_core as core;
pub use gks_datagen as datagen;
pub use gks_dewey as dewey;
pub use gks_index as index;
pub use gks_server as server;
pub use gks_text as text;
pub use gks_xml as xml;

/// One-stop imports for typical use of the engine.
pub mod prelude {
    pub use gks_core::di::{DiOptions, Insight};
    pub use gks_core::engine::Engine;
    pub use gks_core::query::Query;
    pub use gks_core::search::{SearchOptions, Threshold};
    pub use gks_index::corpus::Corpus;
    pub use gks_index::options::IndexOptions;
}
