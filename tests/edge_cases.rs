//! Edge-case and failure-injection tests across the public API.

use gks::prelude::*;
use gks_core::error::QueryError;
use gks_core::search::Threshold;

fn engine_of(xml: &str) -> Engine {
    let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
    Engine::build(&corpus, IndexOptions::default()).unwrap()
}

#[test]
fn duplicate_keywords_in_query_are_distinct_mask_bits() {
    // A query can repeat a keyword; both bits match wherever the one term
    // matches, and s counts *unique keyword slots* — so s=2 is satisfiable
    // by a single occurrence region.
    let e = engine_of("<r><a>needle</a><b>other</b></r>");
    let q = Query::parse("needle needle").unwrap();
    let r = e.search(&q, SearchOptions::with_s(2)).unwrap();
    assert!(!r.hits().is_empty());
    assert_eq!(r.hits()[0].keyword_count, 2);
}

#[test]
fn all_stopword_query_yields_no_hits_not_an_error() {
    let e = engine_of("<r><a>the and of</a></r>");
    let q = Query::parse("the of").unwrap();
    let r = e.search(&q, SearchOptions::with_s(1)).unwrap();
    assert!(r.hits().is_empty());
    assert_eq!(r.missing_keyword_indices(), &[0, 1]);
}

#[test]
fn zero_threshold_is_rejected() {
    let e = engine_of("<r><a>x</a></r>");
    let q = Query::parse("x").unwrap();
    let err = e
        .search(&q, SearchOptions { s: Threshold::Fixed(0), ..Default::default() })
        .unwrap_err();
    assert_eq!(err, QueryError::ZeroThreshold);
}

#[test]
fn s_larger_than_query_clamps_to_all() {
    let e = engine_of("<r><a>alpha</a><a>beta</a></r>");
    let q = Query::parse("alpha beta").unwrap();
    let clamped = e.search(&q, SearchOptions::with_s(99)).unwrap();
    let all = e.search(&q, SearchOptions { s: Threshold::All, ..Default::default() }).unwrap();
    assert_eq!(clamped.s(), 2);
    assert_eq!(clamped.hits().len(), all.hits().len());
}

#[test]
fn single_node_document() {
    let e = engine_of("<only>gold word</only>");
    let q = Query::parse("gold word").unwrap();
    let r = e.search(&q, SearchOptions { s: Threshold::All, ..Default::default() }).unwrap();
    assert_eq!(r.hits().len(), 1);
    assert!(r.hits()[0].node.steps().is_empty(), "the root itself");
}

#[test]
fn unicode_content_is_searchable() {
    let e = engine_of("<r><città>Müller straße</città></r>");
    let q = Query::parse("müller").unwrap();
    let r = e.search(&q, SearchOptions::with_s(1)).unwrap();
    assert_eq!(r.hits().len(), 1);
}

#[test]
fn numeric_keywords_work() {
    let e = engine_of("<r><y>2001</y><y>2002</y></r>");
    let r = e.search(&Query::parse("2001").unwrap(), SearchOptions::with_s(1)).unwrap();
    assert_eq!(r.hits().len(), 1);
}

#[test]
fn sixty_four_keywords_is_the_cap() {
    let words: Vec<String> = (0..64).map(|i| format!("w{i}")).collect();
    assert!(Query::from_keywords(words.clone()).is_ok());
    let mut too_many = words;
    too_many.push("extra".into());
    assert!(matches!(Query::from_keywords(too_many), Err(QueryError::TooManyKeywords(65))));
}

#[test]
fn max_width_query_searches() {
    // 64 keywords, some present — masks must not overflow.
    let mut xml = String::from("<r>");
    for i in 0..10 {
        xml.push_str(&format!("<k>w{i}</k>"));
    }
    xml.push_str("</r>");
    let e = engine_of(&xml);
    let words: Vec<String> = (0..64).map(|i| format!("w{i}")).collect();
    let q = Query::from_keywords(words).unwrap();
    let r = e.search(&q, SearchOptions::with_s(1)).unwrap();
    // s=1 returns the lowest matching nodes: one <k> per present keyword.
    assert_eq!(r.hits().len(), 10);
    assert!(r.hits().iter().all(|h| h.keyword_count == 1));
    assert_eq!(r.missing_keyword_indices().len(), 54);
    // At s=2 the common ancestor <r> carries all ten keywords.
    let r2 = e.search(&q, SearchOptions::with_s(2)).unwrap();
    assert_eq!(r2.max_keyword_count(), 10);
}

#[test]
fn empty_elements_and_whitespace_only_text() {
    let e = engine_of("<r><a/><b>   </b><c>real</c></r>");
    let r = e.search(&Query::parse("real").unwrap(), SearchOptions::with_s(1)).unwrap();
    assert_eq!(r.hits().len(), 1);
}

#[test]
fn mixed_content_indexes_both_text_runs() {
    let e = engine_of("<r><p>alpha <em>beta</em> gamma</p></r>");
    for kw in ["alpha", "beta", "gamma"] {
        let r = e.search(&Query::parse(kw).unwrap(), SearchOptions::with_s(1)).unwrap();
        assert!(!r.hits().is_empty(), "{kw} not found");
    }
    // alpha and gamma live at <p> itself; the phrase co-occurs there.
    let r = e
        .search(
            &Query::parse("alpha gamma").unwrap(),
            SearchOptions { s: Threshold::All, ..Default::default() },
        )
        .unwrap();
    assert!(!r.hits().is_empty());
}

#[test]
fn deep_document_search_works() {
    // 200 levels deep; keyword at the bottom.
    let mut xml = String::new();
    for _ in 0..200 {
        xml.push_str("<d>");
    }
    xml.push_str("needle");
    for _ in 0..200 {
        xml.push_str("</d>");
    }
    let e = engine_of(&xml);
    let r = e.search(&Query::parse("needle").unwrap(), SearchOptions::with_s(1)).unwrap();
    assert_eq!(r.hits().len(), 1);
    // The innermost <d> is an attribute node, so the hit is its parent
    // (Def 2.1.1 promotion).
    assert_eq!(r.hits()[0].node.depth(), 198);
}

#[test]
fn query_parse_and_from_keywords_agree() {
    let a = Query::parse(r#""Peter Buneman" xml"#).unwrap();
    let b = Query::from_keywords(["Peter Buneman".to_string(), "xml".to_string()]).unwrap();
    assert_eq!(a, b);
}
