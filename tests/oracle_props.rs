//! Property tests of GKS semantics against the DOM ground-truth oracle, on
//! randomly generated corpora.
//!
//! Invariants checked (for random trees, queries and thresholds):
//!
//! 1. **Exactness** — every hit's matched-keyword mask equals the oracle's;
//!    in particular every hit really contains ≥ s distinct keywords.
//! 2. **Coverage** — every qualifying node is represented: some hit lies on
//!    its ancestor-or-self/descendant axis (GKS may answer with the LCE
//!    above it or a more specific node below it, never miss the region).
//! 3. **Lemma 1** — every LCE hit is an ancestor-or-self of some qualifying
//!    node that is not above it (entities absorb candidates from below).
//! 4. **SLCA consistency** — for s = |Q|, every SLCA node is covered by the
//!    response.

use gks::prelude::*;
use gks_baselines::oracle::GroundTruth;
use gks_baselines::{query_posting_lists, slca::slca_ca_map};
use gks_core::search::Threshold;
use proptest::prelude::*;

/// Random small XML tree with keyword text drawn from a tiny vocabulary, so
/// queries hit often.
#[derive(Debug, Clone)]
enum Tree {
    Leaf(String),
    Node { label: String, children: Vec<Tree> },
}

fn arb_word() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["alpha", "beta", "gamma", "delta", "epsilon", "zeta"])
        .prop_map(str::to_string)
}

fn arb_label() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["item", "name", "group", "entry", "tag"]).prop_map(str::to_string)
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = arb_word().prop_map(Tree::Leaf);
    leaf.prop_recursive(4, 40, 4, |inner| {
        (arb_label(), prop::collection::vec(inner, 1..4))
            .prop_map(|(label, children)| Tree::Node { label, children })
    })
}

fn to_xml(tree: &Tree, out: &mut String) {
    match tree {
        Tree::Leaf(w) => {
            out.push_str("<w>");
            out.push_str(w);
            out.push_str("</w>");
        }
        Tree::Node { label, children } => {
            out.push('<');
            out.push_str(label);
            out.push('>');
            for c in children {
                to_xml(c, out);
            }
            out.push_str("</");
            out.push_str(label);
            out.push('>');
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gks_masks_and_coverage_match_oracle(
        tree in arb_tree(),
        kws in prop::collection::hash_set(arb_word(), 1..4),
        s in 1usize..3,
    ) {
        let mut xml = String::from("<root>");
        to_xml(&tree, &mut xml);
        xml.push_str("</root>");
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        let options = IndexOptions::default();
        let engine = Engine::build(&corpus, options.clone()).unwrap();

        let query = Query::from_keywords(kws.iter().cloned()).unwrap();
        let gt = GroundTruth::compute(&corpus, &query, &options);
        let resp = engine
            .search(&query, SearchOptions { s: Threshold::Fixed(s), ..Default::default() })
            .unwrap();
        let s_eff = resp.s();

        // 1. Exactness.
        for hit in resp.hits() {
            prop_assert_eq!(hit.keyword_mask, gt.mask(&hit.node), "mask of {}", hit.node);
            prop_assert!(hit.keyword_count as usize >= s_eff);
        }

        // 2. Coverage of qualifying nodes. The paper's SLCA-style pruning
        // (Table 1: x1 is dropped in favour of the nested x2 even though x1
        // has its own keyword copies) means a qualifying node may instead be
        // *represented* by a sibling region: it is excused when some
        // ancestor's subtree holds a surviving hit whose keyword set covers
        // the node's own.
        for q in gt.qualifying(s_eff) {
            let covered = resp.hits().iter().any(|h| {
                h.node.is_ancestor_or_self(&q) || q.is_ancestor_or_self(&h.node)
            });
            let excused = !covered
                && resp.hits().iter().any(|h| {
                    h.keyword_mask & gt.mask(&q) == gt.mask(&q)
                        && q.ancestors().any(|a| a.is_ancestor_of(&h.node))
                });
            prop_assert!(
                covered || excused,
                "qualifying node {q} neither covered nor represented (s={s_eff})"
            );
        }

        // 4. SLCA consistency at s = |Q| — with the same sibling-region
        // excusal as above (the paper's own design loses such regions: AN
        // postings point at the parent, and ancestors of response nodes are
        // pruned per its "semantics of SLCA").
        let lists = query_posting_lists(engine.index(), &query);
        let slcas = slca_ca_map(&lists);
        if !slcas.is_empty() {
            let resp_all = engine
                .search(&query, SearchOptions { s: Threshold::All, ..Default::default() })
                .unwrap();
            for v in &slcas {
                let covered = resp_all.hits().iter().any(|h| {
                    h.node.is_ancestor_or_self(v) || v.is_ancestor_or_self(&h.node)
                });
                let excused = !covered
                    && resp_all.hits().iter().any(|h| {
                        h.keyword_mask & gt.mask(v) == gt.mask(v)
                            && v.ancestors().any(|a| a.is_ancestor_of(&h.node))
                    });
                prop_assert!(covered || excused, "SLCA {v} not covered at s=|Q|");
            }
        }
    }

    #[test]
    fn all_three_slca_algorithms_agree_on_random_corpora(
        tree in arb_tree(),
        kws in prop::collection::hash_set(arb_word(), 1..4),
    ) {
        let mut xml = String::from("<root>");
        to_xml(&tree, &mut xml);
        xml.push_str("</root>");
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();
        let query = Query::from_keywords(kws.iter().cloned()).unwrap();
        let lists = query_posting_lists(engine.index(), &query);
        let reference = slca_ca_map(&lists);
        prop_assert_eq!(&reference, &gks_baselines::slca::slca_indexed_lookup(&lists));
        prop_assert_eq!(&reference, &gks_baselines::slca_stack::slca_stack(&lists));
    }

    #[test]
    fn naive_oracle_covered_by_gks(
        tree in arb_tree(),
        kws in prop::collection::hash_set(arb_word(), 2..4),
    ) {
        // Every node the naive exponential method returns is covered by the
        // GKS response at the same s.
        let mut xml = String::from("<root>");
        to_xml(&tree, &mut xml);
        xml.push_str("</root>");
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();
        let query = Query::from_keywords(kws.iter().cloned()).unwrap();
        let lists = query_posting_lists(engine.index(), &query);
        let s = 2usize.min(query.len());
        let naive = gks_baselines::naive::naive_gks(&lists, s);
        let resp = engine
            .search(&query, SearchOptions { s: Threshold::Fixed(s), ..Default::default() })
            .unwrap();
        for v in &naive.nodes {
            let covered = resp.hits().iter().any(|h| {
                h.node.is_ancestor_or_self(v) || v.is_ancestor_or_self(&h.node)
            });
            prop_assert!(covered, "naive node {v} not covered");
        }
    }
}
