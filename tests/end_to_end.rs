//! Cross-crate integration: generate a synthetic corpus, index it, search
//! it, mine DI, refine — the full Figure-3 pipeline.

use gks::prelude::*;
use gks_core::search::Threshold;
use gks_datagen::{dblp, mondial};

#[test]
fn dblp_pipeline_example2_style() {
    // Generate DBLP with known co-author clusters; query four authors, three
    // of whom co-publish.
    let out = dblp::generate(&dblp::Config { articles: 300, ..Default::default() }, 42);
    let corpus = Corpus::from_named_strs([("dblp", out.xml.clone())]).unwrap();
    let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();

    // Pick three authors from one cluster and one from another.
    let cluster = &out.clusters[0];
    let outsider = &out.clusters[1][0];
    let query_authors = [&cluster[0], &cluster[1], &cluster[2], outsider];
    let q = Query::from_keywords(query_authors.iter().map(|a| a.to_string())).unwrap();

    let resp = engine.search(&q, SearchOptions::with_s(1)).unwrap();
    assert!(!resp.hits().is_empty());

    // Every record by any queried author must be covered; count ground truth
    // from the manifest.
    let expected: usize = out
        .records
        .iter()
        .filter(|r| query_authors.iter().any(|qa| r.authors.contains(qa)))
        .count();
    assert_eq!(resp.hits().len(), expected, "s=1 returns all matching records");

    // The top hit has at least as many matched authors as any hit.
    let top = resp.hits()[0].keyword_count;
    assert!(resp.hits().iter().all(|h| h.keyword_count <= top));

    // DI exposes venues/years, never the query authors.
    let di = engine.discover_di(&resp, &DiOptions { top_m: 8, ..Default::default() });
    for insight in &di {
        for qa in &query_authors {
            assert_ne!(&insight.value, *qa);
        }
    }
}

#[test]
fn mondial_attribute_queries() {
    // QM1-style: {country, <religion>} — tag-name keyword + text keyword.
    let out = mondial::generate(&mondial::Config { countries: 15, ..Default::default() }, 7);
    let corpus = Corpus::from_named_strs([("mondial", out.xml.clone())]).unwrap();
    let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();

    let (_, religion) = &out.religions[0];
    let q = Query::from_keywords(["country".to_string(), religion.clone()]).unwrap();
    let resp = engine
        .search(&q, SearchOptions { s: Threshold::All, ..Default::default() })
        .unwrap();
    assert!(!resp.hits().is_empty(), "countries practising {religion} exist");
    // Hits should be country nodes (depth 1), not the root.
    for h in resp.hits() {
        assert!(h.node.depth() >= 1, "root must not be a hit: {}", h.node);
    }
}

#[test]
fn lemma2_monotonicity_on_synthetic_data() {
    let out = dblp::generate(&dblp::Config { articles: 120, ..Default::default() }, 3);
    let corpus = Corpus::from_named_strs([("dblp", out.xml)]).unwrap();
    let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();
    let cluster = &out.clusters[2];
    let q = Query::from_keywords(cluster.iter().take(4).cloned()).unwrap();
    let mut prev = usize::MAX;
    for s in 1..=4usize {
        let resp = engine.search(&q, SearchOptions::with_s(s)).unwrap();
        assert!(
            resp.hits().len() <= prev,
            "|RQ({s})| = {} > |RQ({})| = {prev}",
            resp.hits().len(),
            s - 1
        );
        prev = resp.hits().len();
    }
}

#[test]
fn persistence_round_trip_preserves_search() {
    let out = dblp::generate(&dblp::Config { articles: 80, ..Default::default() }, 5);
    let corpus = Corpus::from_named_strs([("dblp", out.xml)]).unwrap();
    let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();

    let dir = std::env::temp_dir().join("gks-e2e-persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dblp.gksix");
    engine.index().save(&path).unwrap();
    let loaded = Engine::from_index(gks::index::GksIndex::load(&path).unwrap());
    std::fs::remove_file(&path).ok();

    let author = &out.clusters[0][0];
    let q = Query::from_keywords([author.clone()]).unwrap();
    let a = engine.search(&q, SearchOptions::with_s(1)).unwrap();
    let b = loaded.search(&q, SearchOptions::with_s(1)).unwrap();
    assert_eq!(a.hits().len(), b.hits().len());
    for (x, y) in a.hits().iter().zip(b.hits()) {
        assert_eq!(x.node, y.node);
        assert_eq!(x.keyword_mask, y.keyword_mask);
        assert!((x.rank - y.rank).abs() < 1e-9);
    }
}

#[test]
fn parallel_and_sequential_engines_agree() {
    let docs: Vec<(String, String)> = (0..6)
        .map(|i| {
            let out = dblp::generate(&dblp::Config { articles: 40, ..Default::default() }, i);
            (format!("dblp{i}"), out.xml)
        })
        .collect();
    let corpus = Corpus::from_named_strs(docs).unwrap();
    let seq = Engine::build(&corpus, IndexOptions::default()).unwrap();
    let par = Engine::build_parallel(&corpus, IndexOptions::default(), 4).unwrap();

    let q = Query::parse("keyword search xml").unwrap();
    let a = seq.search(&q, SearchOptions::with_s(2)).unwrap();
    let b = par.search(&q, SearchOptions::with_s(2)).unwrap();
    assert_eq!(a.hits().len(), b.hits().len());
    for (x, y) in a.hits().iter().zip(b.hits()) {
        assert_eq!(x.node, y.node);
        assert!((x.rank - y.rank).abs() < 1e-9);
    }
}

#[test]
fn recursive_di_terminates_and_links_rounds() {
    let out = dblp::generate(&dblp::Config { articles: 150, ..Default::default() }, 9);
    let corpus = Corpus::from_named_strs([("dblp", out.xml)]).unwrap();
    let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();
    let author = out.clusters[0][0].clone();
    let q = Query::from_keywords([author]).unwrap();
    let rounds = engine
        .recursive_di(
            &q,
            SearchOptions::with_s(1),
            &DiOptions { top_m: 3, ..Default::default() },
            3,
        )
        .unwrap();
    assert!(!rounds.is_empty());
    assert!(rounds.len() <= 4);
    for window in rounds.windows(2) {
        let values: Vec<&str> = window[0].insights.iter().map(|i| i.value.as_str()).collect();
        for kw in window[1].query.keywords() {
            assert!(values.contains(&kw.raw()), "round queries come from prior DI");
        }
    }
}
