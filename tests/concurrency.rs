//! The engine is shared-state-free after construction: concurrent searches
//! from many threads must be safe and deterministic.

use std::sync::Arc;

use gks::prelude::*;
use gks_datagen::dblp;

#[test]
fn concurrent_searches_agree_with_serial_results() {
    let out = dblp::generate(&dblp::Config { articles: 400, ..Default::default() }, 17);
    let corpus = Corpus::from_named_strs([("dblp", out.xml)]).unwrap();
    let engine = Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap());

    // One query per cluster, run serially first.
    let queries: Vec<Query> = out
        .clusters
        .iter()
        .map(|c| Query::from_keywords(c.iter().take(3).cloned()).unwrap())
        .collect();
    let serial: Vec<Vec<(String, u64)>> = queries
        .iter()
        .map(|q| {
            engine
                .search(q, SearchOptions::with_s(1))
                .unwrap()
                .hits()
                .iter()
                .map(|h| (h.node.to_string(), h.keyword_mask))
                .collect()
        })
        .collect();

    let handles: Vec<_> = queries
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, q)| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                // Hammer the same query a few times per thread.
                let mut last = Vec::new();
                for _ in 0..5 {
                    last = engine
                        .search(&q, SearchOptions::with_s(1))
                        .unwrap()
                        .hits()
                        .iter()
                        .map(|h| (h.node.to_string(), h.keyword_mask))
                        .collect();
                }
                (i, last)
            })
        })
        .collect();

    for handle in handles {
        let (i, concurrent) = handle.join().expect("search thread");
        assert_eq!(concurrent, serial[i], "query {i} differs under concurrency");
    }
}

#[test]
fn engine_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<gks::index::GksIndex>();
}
