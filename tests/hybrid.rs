//! §7.6: hybrid queries over a merged DBLP + SIGMOD Record corpus.
//!
//! The paper merges the two datasets under a common root (padding the SIGMOD
//! side with two extra connecting nodes to skew depths), then runs a query
//! whose keywords target two *different* entity types: two authors that
//! co-publish only in DBLP `<inproceedings>` and two that co-publish only in
//! SIGMOD `<article>`s. GKS must return exactly the records of both types,
//! and rank by keyword distribution, not by absolute depth.

use gks::prelude::*;
use gks_core::search::Threshold;

/// Builds the merged corpus: common root, DBLP subtree, SIGMOD subtree
/// nested two connecting levels deeper.
fn merged_corpus() -> Corpus {
    let dblp_records = r#"
        <inproceedings><title>Proofs One</title>
            <author>Jean-Marc Meynadier</author><author>Patrick Behm</author></inproceedings>
        <inproceedings><title>Proofs Two</title>
            <author>Jean-Marc Meynadier</author><author>Patrick Behm</author>
            <author>Third Person</author><author>Fourth Person</author>
            <author>Fifth Person</author><author>Sixth Person</author>
            <author>Seventh Person</author><author>Eighth Person</author>
            <author>Ninth Person</author></inproceedings>
        <inproceedings><title>Proofs Three</title>
            <author>Jean-Marc Meynadier</author><author>Patrick Behm</author></inproceedings>
        <inproceedings><title>Unrelated</title>
            <author>Somebody Else</author><author>Another One</author></inproceedings>"#;
    let mut sigmod_articles = String::new();
    for i in 0..5 {
        sigmod_articles.push_str(&format!(
            "<article><title>Interface Design {i}</title><initPage>{}</initPage>\
             <endPage>{}</endPage><authors>\
             <author>Lawrence A. Rowe</author><author>Michael Stonebraker</author>\
             </authors></article>",
            i * 10 + 1,
            i * 10 + 9
        ));
    }
    let xml = format!(
        "<merged>\
            <dblp>{dblp_records}</dblp>\
            <pad1><pad2><SigmodRecord><issue><volume>11</volume>\
                <articles>{sigmod_articles}</articles>\
            </issue></SigmodRecord></pad2></pad1>\
        </merged>"
    );
    Corpus::from_named_strs([("merged", xml)]).unwrap()
}

const QUERY: &str =
    r#""Jean-Marc Meynadier" "Patrick Behm" "Lawrence A. Rowe" "Michael Stonebraker""#;

#[test]
fn hybrid_query_returns_both_entity_types() {
    let engine = Engine::build(&merged_corpus(), IndexOptions::default()).unwrap();
    let resp = engine
        .search(
            &Query::parse(QUERY).unwrap(),
            SearchOptions { s: Threshold::Fixed(2), ..Default::default() },
        )
        .unwrap();
    // Exactly 3 <inproceedings> (first two authors) + 5 <article> (last two):
    // the paper's "only these 8 nodes were returned".
    assert_eq!(resp.hits().len(), 8, "{:#?}", resp.hits());
    let mut inproceedings = 0;
    let mut articles = 0;
    for h in resp.hits() {
        match engine.index().node_table().label_name(&h.node) {
            Some("inproceedings") => inproceedings += 1,
            Some("article") => articles += 1,
            other => panic!("unexpected hit type {other:?} at {}", h.node),
        }
        assert!(h.keyword_count >= 2);
    }
    assert_eq!(inproceedings, 3);
    assert_eq!(articles, 5);
}

#[test]
fn ranking_ignores_absolute_depth() {
    // The paper: the two-author <article>s rank above the deep-but-pure…
    // precisely, articles with ONLY the two queried authors outrank
    // inproceedings that carry extra co-authors, despite the articles being
    // buried two connecting levels deeper.
    let engine = Engine::build(&merged_corpus(), IndexOptions::default()).unwrap();
    let resp = engine
        .search(
            &Query::parse(QUERY).unwrap(),
            SearchOptions { s: Threshold::Fixed(2), ..Default::default() },
        )
        .unwrap();
    let label =
        |h: &gks_core::Hit| engine.index().node_table().label_name(&h.node).unwrap().to_string();
    // Find the best-ranked article and the inproceedings with many extra
    // co-authors ("Proofs Two" has 7 extras diluting its potential flow).
    let best_article_pos = resp.hits().iter().position(|h| label(h) == "article").unwrap();
    let diluted_pos = resp
        .hits()
        .iter()
        .position(|h| {
            label(h) == "inproceedings"
                && engine.index().node_table().child_count(&h.node).unwrap_or(0) >= 8
        })
        .unwrap();
    assert!(
        best_article_pos < diluted_pos,
        "pure 2-author article (pos {best_article_pos}) must outrank diluted \
         3-author inproceedings (pos {diluted_pos}) regardless of depth"
    );
}

#[test]
fn hybrid_zero_overlap_between_clusters() {
    // Sanity: with s = 3 nothing qualifies — no node holds 3 of the 4
    // keywords (the pairs never mix).
    let engine = Engine::build(&merged_corpus(), IndexOptions::default()).unwrap();
    let resp = engine
        .search(
            &Query::parse(QUERY).unwrap(),
            SearchOptions { s: Threshold::Fixed(3), ..Default::default() },
        )
        .unwrap();
    // Only ancestors (pad nodes, root) could hold ≥3, and those are pruned
    // as less specific, except genuinely-combining containers.
    for h in resp.hits() {
        let label = engine.index().node_table().label_name(&h.node).unwrap();
        assert!(
            !matches!(label, "article" | "inproceedings"),
            "no single record holds 3 keywords"
        );
    }
}
