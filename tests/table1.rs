//! Reproduces the paper's Table 1: GKS vs ELCA vs SLCA on the Figure 1 tree
//! for queries Q1–Q3 — the motivating example of the whole paper.
//!
//! The Figure 1 reconstruction (see DESIGN.md): keyword instances are `<v>`
//! text leaves; `ka..kf` stand for the paper's `a..f` (single letters are
//! stop words).
//!
//! ```text
//! r ── x1 ── ka kb kc kf x2(ka kb kc)
//!   ── x3 ── ka kb x5(kd kf)
//!   ── x4 ── kc kd
//! ```

use gks::prelude::*;
use gks_baselines::{elca::elca, query_posting_lists, slca::slca_ca_map};
use gks_core::search::Threshold;
use gks_dewey::{DeweyId, DocId};

const FIG1: &str = "<r>\
    <x1><v>ka</v><v>kb</v><v>kc</v><v>kf</v>\
        <x2><v>ka</v><v>kb</v><v>kc</v></x2></x1>\
    <x3><v>ka</v><v>kb</v><x5><v>kd</v><v>kf</v></x5></x3>\
    <x4><v>kc</v><v>kd</v></x4>\
</r>";

fn d(steps: &[u32]) -> DeweyId {
    DeweyId::new(DocId(0), steps.to_vec())
}

fn engine() -> Engine {
    let corpus = Corpus::from_named_strs([("fig1", FIG1)]).unwrap();
    Engine::build(&corpus, IndexOptions::default()).unwrap()
}

fn gks_nodes(e: &Engine, q: &str, s: usize) -> Vec<DeweyId> {
    let resp = e
        .search(
            &Query::parse(q).unwrap(),
            SearchOptions { s: Threshold::Fixed(s), ..Default::default() },
        )
        .unwrap();
    resp.hits().iter().map(|h| h.node.clone()).collect()
}

fn baseline_lists(e: &Engine, q: &str) -> Vec<Vec<DeweyId>> {
    query_posting_lists(e.index(), &Query::parse(q).unwrap())
}

const X1: &[u32] = &[0];
const X2: &[u32] = &[0, 4];
const X3: &[u32] = &[1];
const X4: &[u32] = &[2];
const R: &[u32] = &[];

#[test]
fn table1_row_q1() {
    // Q1 = {a, b, c}, s = |Q1|.
    let e = engine();
    assert_eq!(gks_nodes(&e, "ka kb kc", 3), vec![d(X2)], "GKS column");
    let lists = baseline_lists(&e, "ka kb kc");
    assert_eq!(slca_ca_map(&lists), vec![d(X2)], "SLCA column");
    let el = elca(&lists);
    // Paper: ELCA = {x1, x2}. The reconstruction places x4's stray `kc`
    // under the root, which makes r a textbook ELCA as well (documented
    // deviation in DESIGN.md) — x1 and x2 must be present regardless.
    assert!(el.contains(&d(X1)), "ELCA contains x1: {el:?}");
    assert!(el.contains(&d(X2)), "ELCA contains x2: {el:?}");
}

#[test]
fn table1_row_q2() {
    // Q2 = {a, b, e}, s = 2: 'ke' does not occur anywhere.
    let e = engine();
    assert_eq!(gks_nodes(&e, "ka kb ke", 2), vec![d(X2), d(X3)], "GKS column");
    let lists = baseline_lists(&e, "ka kb ke");
    assert!(slca_ca_map(&lists).is_empty(), "SLCA column is NULL");
    assert!(elca(&lists).is_empty(), "ELCA column is NULL");
}

#[test]
fn table1_row_q3() {
    // Q3 = {a, b, c, d}, s = 2.
    let e = engine();
    assert_eq!(
        gks_nodes(&e, "ka kb kc kd", 2),
        vec![d(X2), d(X3), d(X4)],
        "GKS column, ranked x2 > x3 > x4"
    );
    let lists = baseline_lists(&e, "ka kb kc kd");
    assert_eq!(slca_ca_map(&lists), vec![d(R)], "SLCA column: the root");
    assert_eq!(elca(&lists), vec![d(R)], "ELCA column: the root");
}

#[test]
fn example5_rank_values() {
    let e = engine();
    let resp = e
        .search(&Query::parse("ka kb kc kd").unwrap(), SearchOptions::with_s(2))
        .unwrap();
    let ranks: Vec<f64> = resp.hits().iter().map(|h| h.rank).collect();
    assert!((ranks[0] - 3.0).abs() < 1e-9, "rank(x2) = {}", ranks[0]);
    assert!((ranks[1] - 2.5).abs() < 1e-9, "rank(x3) = {}", ranks[1]);
    assert!((ranks[2] - 2.0).abs() < 1e-9, "rank(x4) = {}", ranks[2]);
}

#[test]
fn section61_query_refinement_for_q3() {
    // §6.1: the Q3 response exposes that the keywords split into {a,b,c} and
    // {a,b,d}.
    let e = engine();
    let resp = e
        .search(&Query::parse("ka kb kc kd").unwrap(), SearchOptions::with_s(2))
        .unwrap();
    let refinement = e.refine(&resp, &[]);
    assert_eq!(refinement.sub_queries[0], vec!["ka", "kb", "kc"]);
    assert_eq!(refinement.sub_queries[1], vec!["ka", "kb", "kd"]);
    assert_eq!(refinement.partition.len(), 2);
}
