//! Response analytics (the paper's "analytics over raw XML data" future
//! work): run a broad s=1 query, then slice the answer set — hits by entity
//! type, value facets per attribute path, and the Figure 2(b)-style XML
//! chunk of the top hit.
//!
//! ```sh
//! cargo run --release --example response_analytics
//! ```

use gks::prelude::*;
use gks_core::analytics::AnalyticsOptions;
use gks_datagen::{dblp, sigmod};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-dataset corpus, so the type group-by has something to group.
    let d = dblp::generate(&dblp::Config { articles: 800, ..Default::default() }, 31);
    let s = sigmod::generate(&sigmod::Config { issues: 30, ..Default::default() }, 32);
    let corpus = Corpus::from_named_strs([("dblp", d.xml.clone()), ("sigmod", s.xml)])?;
    let engine = Engine::build(&corpus, IndexOptions::default())?;

    // Query a common title word — matches across both datasets and types.
    let query = Query::parse("keyword search")?;
    let resp = engine.search(&query, SearchOptions::with_s(1))?;
    println!("query: {query} → {} hit(s)\n", resp.hits().len());

    let analytics = engine.analyze(&resp, &AnalyticsOptions::default());
    println!("hits by entity type:");
    for g in &analytics.by_type {
        println!("  {:<16} {:>4} hit(s)   rank mass {:.2}", g.label, g.hits, g.rank_mass);
    }

    println!("\nfacets (value histograms across the answer set):");
    for f in analytics.facets.iter().take(5) {
        println!("  {} (in {} hits):", f.path.join("/"), f.coverage);
        for v in f.values.iter().take(4) {
            println!("    {:<28} ×{}", v.value, v.count);
        }
    }

    println!("\nper-keyword hit counts: {:?}", analytics.keyword_hit_counts);

    if let Some(top) = resp.hits().first() {
        println!("\ntop hit as an XML chunk (paper Figure 2(b) shape):");
        println!("{}", engine.render_xml_chunk(top)?);
    }
    Ok(())
}
