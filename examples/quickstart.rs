//! Quickstart: index a small XML document, run a GKS search, inspect the
//! ranked response and the discovered insights.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gks::prelude::*;
use gks_core::search::Threshold;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The university document of the paper's Figure 2(a).
    let xml = r#"<Dept>
        <Dept_Name>CS</Dept_Name>
        <Area>
            <Name>Databases</Name>
            <Courses>
                <Course><Name>Data Mining</Name><Students>
                    <Student>Karen</Student><Student>Mike</Student><Student>Peter</Student>
                </Students></Course>
                <Course><Name>Algorithms</Name><Students>
                    <Student>Karen</Student><Student>John</Student><Student>Julie</Student>
                </Students></Course>
                <Course><Name>AI</Name><Students>
                    <Student>Karen</Student><Student>Mike</Student><Student>Serena</Student>
                </Students></Course>
            </Courses>
        </Area>
    </Dept>"#;

    // 1. Build the index (one streaming pass: categorization + inverted
    //    index + entity hashes).
    let corpus = Corpus::from_named_strs([("university", xml)])?;
    let engine = Engine::build(&corpus, IndexOptions::default())?;

    // 2. The paper's Example 3: an "imperfect" query — no single course has
    //    all these students, and LCA techniques would answer with a useless
    //    common ancestor. GKS returns every course with ≥ 2 of the keywords.
    let query = Query::parse("student karen mike john harry")?;
    let response =
        engine.search(&query, SearchOptions { s: Threshold::Fixed(2), ..Default::default() })?;

    println!("query: {query}   (s = {}, |SL| = {})", response.s(), response.sl_len());
    println!("{} hit(s):", response.hits().len());
    for hit in response.hits() {
        println!("  {}", engine.render_hit(hit, &response));
    }

    // 3. Deeper Analytical Insights: the course names give the keywords
    //    their context (<Course: Name: Data Mining> …).
    let insights = engine.discover_di(&response, &DiOptions { top_m: 3, ..Default::default() });
    println!("\ndeeper analytical insights:");
    for i in &insights {
        println!("  {}   weight={:.2} support={}", i.display(), i.weight, i.support);
    }

    // 4. Refinement: how the query splits over the data, and what matched
    //    nothing at all.
    let refinement = engine.refine(&response, &insights);
    println!("\nrefinement:");
    println!("  sub-queries: {:?}", refinement.sub_queries);
    println!("  unmatched:   {:?}", refinement.unmatched);
    Ok(())
}
