//! §7.6: a hybrid query over a merged DBLP + SIGMOD Record corpus whose
//! keywords target two different entity types at once.
//!
//! ```sh
//! cargo run --example hybrid_search
//! ```

use gks::prelude::*;
use gks_core::search::Threshold;
use gks_datagen::merge::{merge_under_root, MergePart};
use gks_datagen::{dblp, sigmod};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dblp_out = dblp::generate(&dblp::Config { articles: 400, ..Default::default() }, 11);
    let sigmod_out = sigmod::generate(&sigmod::Config { issues: 20, ..Default::default() }, 12);

    // Merge under a common root, padding the SIGMOD side with two extra
    // connecting nodes (the paper increases its depth deliberately, to show
    // ranking is depth-independent).
    let merged = merge_under_root(&[
        MergePart { wrapper: "dblp", xml: &dblp_out.xml, pad_levels: 0 },
        MergePart { wrapper: "SigmodRecord", xml: &sigmod_out.xml, pad_levels: 2 },
    ]);
    let corpus = Corpus::from_named_strs([("merged", merged)])?;
    let engine = Engine::build(&corpus, IndexOptions::default())?;

    // Two DBLP co-authors + two SIGMOD co-authors.
    let dblp_pair = first_coauthor_pair(dblp_out.records.iter().map(|r| r.authors.as_slice()));
    let sigmod_pair = first_coauthor_pair(sigmod_out.article_authors.iter().map(Vec::as_slice));
    let query = Query::from_keywords([
        dblp_pair.0.clone(),
        dblp_pair.1.clone(),
        sigmod_pair.0.clone(),
        sigmod_pair.1.clone(),
    ])?;
    println!("hybrid query: {query}  (s = 2)");

    let response =
        engine.search(&query, SearchOptions { s: Threshold::Fixed(2), ..Default::default() })?;
    println!("{} hit(s):", response.hits().len());
    let mut by_type: std::collections::BTreeMap<String, usize> = Default::default();
    for hit in response.hits() {
        let label = engine.index().node_table().label_name(&hit.node).unwrap_or("?").to_string();
        *by_type.entry(label).or_default() += 1;
        println!("  {}", engine.render_hit(hit, &response));
    }
    println!("\nhits by entity type: {by_type:?}");
    println!(
        "both targeted node types are returned even though one lives two \
         connecting levels deeper — ranking depends on keyword distribution, \
         not absolute depth (paper §7.6)"
    );
    Ok(())
}

/// Finds the first record with ≥ 2 authors and returns its first two.
fn first_coauthor_pair<'a>(
    mut records: impl Iterator<Item = &'a [String]>,
) -> (&'a String, &'a String) {
    let r = records.find(|authors| authors.len() >= 2).expect("a multi-author record");
    (&r[0], &r[1])
}
