//! Query refinement via DI — the paper's §7.4 QD1 walk-through.
//!
//! Start from a narrow query, discover through DI that one of the returned
//! co-authors dominates the response, refine the query with that name, and
//! find many more joint articles than the original query surfaced.
//!
//! ```sh
//! cargo run --example query_refinement
//! ```

use gks::prelude::*;
use gks_core::refine::suggestion_to_query;
use gks_datagen::dblp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = dblp::generate(&dblp::Config { articles: 800, ..Default::default() }, 77);
    let corpus = Corpus::from_named_strs([("dblp", out.xml.clone())])?;
    let engine = Engine::build(&corpus, IndexOptions::default())?;

    // The QD1 role: one author from a cluster; their most frequent co-author
    // is unknown to the user.
    let author = out.clusters[3][0].clone();
    let query = Query::from_keywords([author.clone()])?;
    println!("initial query: {query}");

    let response = engine.search(&query, SearchOptions::with_s(1))?;
    println!("  {} article(s) returned", response.hits().len());

    // DI over the response: co-authors, venues, years.
    let insights = engine.discover_di(&response, &DiOptions { top_m: 5, ..Default::default() });
    println!("  DI:");
    for i in &insights {
        println!("    {}   weight={:.2} support={}", i.display(), i.weight, i.support);
    }

    // Take the top co-author insight and refine the query with it.
    let co_author = insights
        .iter()
        .find(|i| i.path.last().map(String::as_str) == Some("author"))
        .expect("a co-author insight");
    println!("\nrefining with discovered co-author: {:?}", co_author.value);

    let refined = suggestion_to_query(&[author.clone(), co_author.value.clone()])
        .expect("non-empty refined query");
    let refined_resp = engine.search(
        &refined,
        SearchOptions { s: gks_core::search::Threshold::All, ..Default::default() },
    )?;
    println!("refined query {refined} → {} joint article(s):", refined_resp.hits().len());
    for hit in refined_resp.hits().iter().take(10) {
        println!("  {}", engine.render_hit(hit, &refined_resp));
    }

    // Recursive DI: let the engine iterate the loop itself.
    println!("\nrecursive DI (2 rounds):");
    let rounds = engine.recursive_di(
        &query,
        SearchOptions::with_s(1),
        &DiOptions { top_m: 3, ..Default::default() },
        2,
    )?;
    for (r, round) in rounds.iter().enumerate() {
        println!(
            "  round {r}: query = {} → {} hit(s), insights = {:?}",
            round.query,
            round.response.hits().len(),
            round.insights.iter().map(|i| i.value.as_str()).collect::<Vec<_>>()
        );
    }
    Ok(())
}
