//! The paper's Example 2 on a synthetic DBLP: a four-author query where one
//! author never co-publishes with the others.
//!
//! An LCA-based system returns the DBLP root (useless). GKS with s=1 returns
//! every article by any of the authors, ranked so that articles shared by
//! *more* of the queried authors come first, and mines DI — the venues and
//! years that matter in the context of the query.
//!
//! ```sh
//! cargo run --release --example dblp_search
//! ```

use gks::prelude::*;
use gks_datagen::dblp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2 000 articles, clustered co-authorship.
    let out = dblp::generate(&dblp::Config { articles: 2000, ..Default::default() }, 2016);
    println!(
        "generated synthetic DBLP: {} bytes, {} records",
        out.xml.len(),
        out.records.len()
    );

    let corpus = Corpus::from_named_strs([("dblp", out.xml.clone())])?;
    let engine = Engine::build(&corpus, IndexOptions::default())?;
    let stats = engine.index().stats();
    println!(
        "indexed: {} nodes ({} entities), {} distinct terms, {} ms\n",
        stats.total_nodes, stats.census.entity, stats.distinct_terms, stats.build_millis
    );

    // Three authors from one co-author cluster + one outsider (the paper's
    // "Prithviraj Banerjee" role).
    let cluster = &out.clusters[0];
    let outsider = &out.clusters[out.clusters.len() - 1][0];
    let query = Query::from_keywords([
        cluster[0].clone(),
        cluster[1].clone(),
        cluster[2].clone(),
        outsider.clone(),
    ])?;
    println!("query Qd = {query}");

    let response = engine.search(&query, SearchOptions::with_s(1))?;
    println!(
        "GKS found {} article(s) in {} µs (|SL| = {})",
        response.hits().len(),
        response.elapsed_micros(),
        response.sl_len()
    );
    println!("top 10:");
    for hit in response.hits().iter().take(10) {
        println!("  {}", engine.render_hit(hit, &response));
    }

    // Articles by 3 queried co-authors must outrank the outsider's.
    if let Some(top) = response.hits().first() {
        println!(
            "\ntop hit matches {} of the 4 queried authors — an LCA system \
             would have returned the <dblp> root instead",
            top.keyword_count
        );
    }

    let insights = engine.discover_di(&response, &DiOptions { top_m: 6, ..Default::default() });
    println!("\nDI (venues / years / co-authors relevant to the query):");
    for i in &insights {
        println!("  {}   weight={:.2}", i.display(), i.weight);
    }
    Ok(())
}
