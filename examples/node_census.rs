//! §7.2: the node-categorization census (the paper's Table 5) over the
//! synthetic datasets — how many attribute / entity / repeating / connecting
//! nodes each repository contains, plus the per-element drill-down the paper
//! does for SIGMOD Record (single-author articles become connecting nodes).
//!
//! ```sh
//! cargo run --release --example node_census
//! ```

use gks::prelude::*;
use gks_datagen::Dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "Data Set", "AN", "EN", "RN", "CN", "Total"
    );
    for ds in [
        Dataset::SigmodRecord,
        Dataset::Dblp,
        Dataset::Mondial,
        Dataset::InterPro,
        Dataset::SwissProt,
    ] {
        let xml = ds.generate(60, 2016);
        let corpus = Corpus::from_named_strs([(ds.name(), xml)])?;
        let engine = Engine::build(&corpus, IndexOptions::default())?;
        let s = engine.index().stats();
        println!(
            "{:<18} {:>9} {:>9} {:>9} {:>9} {:>10}",
            ds.name(),
            s.census.attribute,
            s.census.entity,
            s.census.repeating,
            s.census.connecting,
            s.total_nodes
        );
    }

    // The paper's SIGMOD Record drill-down: articles split into EN
    // (multi-author) and CN (single-author).
    println!("\nSIGMOD Record per-element census:");
    let xml = Dataset::SigmodRecord.generate(60, 2016);
    let corpus = Corpus::from_named_strs([("sigmod", xml)])?;
    let engine = Engine::build(&corpus, IndexOptions::default())?;
    let stats = engine.index().stats();
    let mut labels: Vec<_> = stats.per_label.iter().collect();
    labels.sort_by_key(|(l, _)| l.as_str());
    println!("{:<12} {:>7} {:>7} {:>7} {:>7}", "element", "AN", "EN", "RN", "CN");
    for (label, census) in labels {
        println!(
            "{:<12} {:>7} {:>7} {:>7} {:>7}",
            label, census.attribute, census.entity, census.repeating, census.connecting
        );
    }
    println!(
        "\nnote how <article> splits between EN (multi-author: repeating \
         <author> group + <title> attribute) and CN (single author — no \
         repeating group), exactly the §7.2 observation."
    );
    Ok(())
}
