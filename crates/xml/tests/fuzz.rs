//! Failure-injection tests: the parser must never panic, whatever bytes it
//! is fed — malformed input yields `Err`, never UB or a crash.

use gks_xml::{Document, Reader};
use proptest::prelude::*;

/// Drains the reader fully, returning whether parsing succeeded.
fn drain(input: &str) -> bool {
    let mut r = Reader::new(input);
    loop {
        match r.next_event() {
            Ok(Some(_)) => {}
            Ok(None) => return true,
            Err(_) => return false,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary junk never panics the pull parser.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,200}") {
        let _ = drain(&input);
    }

    /// Markup-flavoured junk (lots of angle brackets and quotes) never
    /// panics either — this hits the tag/attribute parsing paths hard.
    #[test]
    fn markupish_input_never_panics(input in "[<>/=\"'a-z !\\[\\]\\-?&;#x0-9]{0,200}") {
        let _ = drain(&input);
        let _ = Document::parse(&input);
    }

    /// Truncating a valid document at any byte boundary yields a clean
    /// error or a clean prefix parse, never a panic.
    #[test]
    fn truncations_never_panic(cut in 0usize..120) {
        let xml = r#"<a x="1&amp;2"><!--c--><b><![CDATA[zz]]>text &#65;</b><c/></a>"#;
        let cut = cut.min(xml.len());
        // Only cut at a char boundary (ASCII here, so always true).
        let _ = drain(&xml[..cut]);
    }
}

#[test]
fn pathological_nesting_is_handled() {
    // 10_000 levels of nesting: must parse without stack overflow (the pull
    // parser's state is an explicit Vec, not recursion).
    let mut xml = String::new();
    for _ in 0..10_000 {
        xml.push_str("<d>");
    }
    xml.push('x');
    for _ in 0..10_000 {
        xml.push_str("</d>");
    }
    assert!(drain(&xml));
    // NOTE: Document::parse materializes a tree recursively in Drop, so the
    // DOM is only exercised at moderate depth here.
    let mut xml = String::new();
    for _ in 0..500 {
        xml.push_str("<d>");
    }
    for _ in 0..500 {
        xml.push_str("</d>");
    }
    assert!(Document::parse(&xml).is_ok());
}

#[test]
fn long_attribute_and_text_runs() {
    let big = "y".repeat(1 << 16);
    let xml = format!("<a k=\"{big}\">{big}</a>");
    assert!(drain(&xml));
}

#[test]
fn deeply_broken_entities_are_errors_not_panics() {
    for bad in ["<a>&;</a>", "<a>&#;</a>", "<a>&#xZZ;</a>", "<a>&unterminated", "<a k=\"&\"/>"] {
        assert!(!drain(bad), "{bad} should fail");
    }
}
