//! Property tests: random trees survive a write → parse round trip.

use gks_xml::{Document, Writer};
use proptest::prelude::*;

type Fingerprint = Vec<(String, Vec<(String, String)>, String)>;

/// A random tree description: element names from a tiny alphabet, text from
/// printable characters (including ones that need escaping).
#[derive(Debug, Clone)]
enum Tree {
    Element {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<Tree>,
    },
    Text(String),
}

fn arb_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "course", "x_y", "n.v"]).prop_map(str::to_string)
}

fn arb_text() -> impl Strategy<Value = String> {
    // Includes XML-significant characters; excludes control characters the
    // writer does not promise to preserve, and is trimmed because the
    // default reader trims insignificant edges.
    "[ -~]{1,20}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty after trim", |s| !s.is_empty())
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        arb_text().prop_map(Tree::Text),
        (arb_name(), prop::collection::vec((arb_name(), arb_text()), 0..3))
            .prop_map(|(name, attrs)| Tree::Element { name, attrs, children: vec![] }),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        (
            arb_name(),
            prop::collection::vec((arb_name(), arb_text()), 0..2),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| Tree::Element { name, attrs, children })
    })
}

fn write_tree(w: &mut Writer, t: &Tree) {
    match t {
        Tree::Text(s) => w.text(s).unwrap(),
        Tree::Element { name, attrs, children } => {
            let attr_refs: Vec<(&str, &str)> =
                attrs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            w.start(name, &attr_refs).unwrap();
            for c in children {
                write_tree(w, c);
            }
            w.end().unwrap();
        }
    }
}

/// Collects (element-name, attribute-pairs, own-direct-text) triples in
/// pre-order — a structural fingerprint that the round trip must preserve.
fn fingerprint(t: &Tree, out: &mut Fingerprint) {
    if let Tree::Element { name, attrs, children } = t {
        let own_text: String = children
            .iter()
            .filter_map(|c| match c {
                Tree::Text(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        out.push((name.clone(), attrs.clone(), own_text));
        for c in children {
            fingerprint(c, out);
        }
    }
}

fn fingerprint_node(n: &gks_xml::Node, out: &mut Fingerprint) {
    if n.is_element() {
        let own_text: String =
            n.children().iter().filter(|c| !c.is_element()).map(|c| c.text()).collect();
        out.push((n.name().to_string(), n.attributes().to_vec(), own_text));
        for c in n.children() {
            fingerprint_node(c, out);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn write_parse_round_trip(tree in arb_tree()) {
        // Ensure the root is an element.
        let root = match tree {
            Tree::Text(s) => Tree::Element {
                name: "root".into(),
                attrs: vec![],
                children: vec![Tree::Text(s)],
            },
            e => e,
        };
        let mut w = Writer::new();
        write_tree(&mut w, &root);
        let xml = w.finish().unwrap();
        let doc = Document::parse(&xml).unwrap();

        let mut expected = Vec::new();
        fingerprint(&root, &mut expected);
        let mut actual = Vec::new();
        fingerprint_node(doc.root(), &mut actual);
        // The reader trims text edges; adjacent generated text nodes may
        // differ by separator whitespace, so compare trimmed.
        let norm = |v: Fingerprint| {
            v.into_iter().map(|(n, a, t)| (n, a, t.trim().to_string())).collect::<Vec<_>>()
        };
        prop_assert_eq!(norm(actual), norm(expected));
    }
}
