//! Escaping XML writer used by the synthetic dataset generators.

use std::fmt;

use crate::escape::escape_into;

/// Error produced by misuse of the writer (unbalanced `end` calls, etc.).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriterError(String);

impl fmt::Display for WriterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML writer error: {}", self.0)
    }
}

impl std::error::Error for WriterError {}

/// Builds an XML string with correct escaping and optional pretty-printing.
///
/// ```
/// let mut w = gks_xml::Writer::new();
/// w.start("root", &[("id", "1")]).unwrap();
/// w.element_text("name", &[], "a & b").unwrap();
/// w.end().unwrap();
/// assert_eq!(
///     w.finish().unwrap(),
///     "<root id=\"1\"><name>a &amp; b</name></root>"
/// );
/// ```
#[derive(Debug)]
pub struct Writer {
    out: String,
    stack: Vec<String>,
    pretty: bool,
    /// Whether the current element has child markup (controls pretty-print
    /// placement of its end tag).
    had_children: Vec<bool>,
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer {
    /// A compact writer (no insignificant whitespace).
    pub fn new() -> Self {
        Writer { out: String::new(), stack: Vec::new(), pretty: false, had_children: Vec::new() }
    }

    /// A pretty-printing writer (two-space indentation, one element per
    /// line). Indentation whitespace is insignificant for the GKS reader,
    /// which trims it.
    pub fn pretty() -> Self {
        Writer { pretty: true, ..Self::new() }
    }

    /// Writes the `<?xml …?>` declaration; call before the root element.
    pub fn declaration(&mut self) -> Result<(), WriterError> {
        if !self.out.is_empty() {
            return Err(WriterError("declaration must come first".into()));
        }
        self.out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if self.pretty {
            self.out.push('\n');
        }
        Ok(())
    }

    fn indent(&mut self) {
        if self.pretty {
            if !self.out.is_empty() && !self.out.ends_with('\n') {
                self.out.push('\n');
            }
            for _ in 0..self.stack.len() {
                self.out.push_str("  ");
            }
        }
    }

    fn write_open(&mut self, name: &str, attributes: &[(&str, &str)]) {
        self.out.push('<');
        self.out.push_str(name);
        for (k, v) in attributes {
            self.out.push(' ');
            self.out.push_str(k);
            self.out.push_str("=\"");
            escape_into(v, &mut self.out);
            self.out.push('"');
        }
    }

    /// Opens an element.
    pub fn start(&mut self, name: &str, attributes: &[(&str, &str)]) -> Result<(), WriterError> {
        if let Some(last) = self.had_children.last_mut() {
            *last = true;
        }
        self.indent();
        self.write_open(name, attributes);
        self.out.push('>');
        self.stack.push(name.to_string());
        self.had_children.push(false);
        Ok(())
    }

    /// Closes the most recently opened element.
    pub fn end(&mut self) -> Result<(), WriterError> {
        let name = self
            .stack
            .pop()
            .ok_or_else(|| WriterError("end() with no open element".into()))?;
        let had_children = self.had_children.pop().unwrap_or(false);
        if self.pretty && had_children {
            self.indent();
        }
        self.out.push_str("</");
        self.out.push_str(&name);
        self.out.push('>');
        Ok(())
    }

    /// Writes character data inside the current element.
    pub fn text(&mut self, text: &str) -> Result<(), WriterError> {
        if self.stack.is_empty() {
            return Err(WriterError("text() outside the root element".into()));
        }
        escape_into(text, &mut self.out);
        Ok(())
    }

    /// Convenience: `<name attrs…>text</name>` in one call — the shape of
    /// every text node the dataset generators emit.
    pub fn element_text(
        &mut self,
        name: &str,
        attributes: &[(&str, &str)],
        text: &str,
    ) -> Result<(), WriterError> {
        if let Some(last) = self.had_children.last_mut() {
            *last = true;
        }
        self.indent();
        self.write_open(name, attributes);
        self.out.push('>');
        escape_into(text, &mut self.out);
        self.out.push_str("</");
        self.out.push_str(name);
        self.out.push('>');
        Ok(())
    }

    /// Convenience: an empty element `<name attrs…/>`.
    pub fn empty(&mut self, name: &str, attributes: &[(&str, &str)]) -> Result<(), WriterError> {
        if let Some(last) = self.had_children.last_mut() {
            *last = true;
        }
        self.indent();
        self.write_open(name, attributes);
        self.out.push_str("/>");
        Ok(())
    }

    /// Finishes the document, checking balance, and returns the XML string.
    pub fn finish(self) -> Result<String, WriterError> {
        if !self.stack.is_empty() {
            return Err(WriterError(format!("{} element(s) left open", self.stack.len())));
        }
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::{Event, Reader};

    #[test]
    fn compact_output() {
        let mut w = Writer::new();
        w.start("a", &[]).unwrap();
        w.element_text("b", &[("k", "v")], "x<y").unwrap();
        w.empty("c", &[]).unwrap();
        w.end().unwrap();
        assert_eq!(w.finish().unwrap(), "<a><b k=\"v\">x&lt;y</b><c/></a>");
    }

    #[test]
    fn pretty_output_parses_back() {
        let mut w = Writer::pretty();
        w.declaration().unwrap();
        w.start("root", &[]).unwrap();
        w.start("child", &[]).unwrap();
        w.element_text("leaf", &[], "text").unwrap();
        w.end().unwrap();
        w.end().unwrap();
        let xml = w.finish().unwrap();
        assert!(xml.contains("\n  <child>"));
        // Must be re-readable.
        let mut r = Reader::new(&xml);
        let mut texts = Vec::new();
        while let Some(ev) = r.next_event().unwrap() {
            if let Event::Text(t) = ev {
                texts.push(t.to_string());
            }
        }
        assert_eq!(texts, vec!["text"]);
    }

    #[test]
    fn unbalanced_usage_is_an_error() {
        let mut w = Writer::new();
        assert!(w.end().is_err());
        w.start("a", &[]).unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn text_outside_root_rejected() {
        let mut w = Writer::new();
        assert!(w.text("x").is_err());
    }

    #[test]
    fn attribute_values_escaped() {
        let mut w = Writer::new();
        w.empty("a", &[("q", "say \"hi\" & <go>")]).unwrap();
        assert_eq!(w.finish().unwrap(), "<a q=\"say &quot;hi&quot; &amp; &lt;go&gt;\"/>");
    }
}
