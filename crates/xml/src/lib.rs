//! Zero-dependency streaming XML for the GKS engine.
//!
//! The GKS indexing engine consumes XML "in a single pass over the data"
//! (paper §2.2/§2.4), relying on the pre-order arrival of nodes. This crate
//! provides exactly what that requires and nothing more:
//!
//! * [`Reader`] — a pull parser producing [`Event`]s (start/end element,
//!   text, …) with entity decoding, attribute parsing, and well-formedness
//!   checking (tag balance, single root);
//! * [`Writer`] — an escaping writer with optional pretty-printing, used by
//!   the synthetic dataset generators;
//! * [`escape`] / [`unescape`] — the text escaping primitives;
//! * [`Document`] — a lightweight DOM built on top of the reader, used by the
//!   naive baseline algorithms and as ground truth in property tests.
//!
//! The parser accepts the subset of XML 1.0 that data-oriented repositories
//! (DBLP, Mondial, SwissProt, …) exercise: elements, attributes, character
//! data, CDATA sections, comments, processing instructions and the XML
//! declaration, plus the five predefined entities and numeric character
//! references. DTD internal subsets are skipped, not validated.

mod dom;
mod escape;
mod reader;
mod writer;

pub use dom::{Document, Node, NodeKind};
pub use escape::{escape, escape_into, unescape, EscapeError};
pub use reader::{Attribute, Event, Reader, XmlError, XmlErrorKind};
pub use writer::{Writer, WriterError};

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: write a small document, parse it back, compare the DOM.
    #[test]
    fn writer_reader_round_trip() {
        let mut w = Writer::new();
        w.start("dblp", &[]).unwrap();
        w.start("article", &[("key", "a/1"), ("mdate", "2004-03-08")]).unwrap();
        w.element_text("title", &[], "On Keyword <Search> & \"Ranking\"").unwrap();
        w.element_text("author", &[], "Ada O'Hara").unwrap();
        w.end().unwrap();
        w.end().unwrap();
        let xml = w.finish().unwrap();

        let doc = Document::parse(&xml).unwrap();
        let root = doc.root();
        assert_eq!(root.name(), "dblp");
        let article = &root.element_children()[0];
        assert_eq!(article.attribute("key"), Some("a/1"));
        let title = &article.element_children()[0];
        assert_eq!(title.text(), "On Keyword <Search> & \"Ranking\"");
    }
}
