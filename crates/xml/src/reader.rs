//! The pull parser.

use std::borrow::Cow;
use std::fmt;

use crate::escape::{unescape, EscapeError};

/// One parsed attribute of a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute<'a> {
    /// Attribute name as written.
    pub name: &'a str,
    /// Attribute value with entities decoded.
    pub value: Cow<'a, str>,
}

/// A pull-parser event.
///
/// Self-closing tags (`<a/>`) are reported as a [`Event::Start`] immediately
/// followed by the matching [`Event::End`], so consumers never need a special
/// case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<'a> {
    /// `<name attr="v" …>`
    Start {
        name: &'a str,
        attributes: Vec<Attribute<'a>>,
    },
    /// `</name>`
    End { name: &'a str },
    /// Character data (entities decoded, CDATA passed through verbatim).
    Text(Cow<'a, str>),
    /// `<!-- … -->` (content without the delimiters).
    Comment(&'a str),
    /// `<?target …?>` — processing instruction, excluding the XML declaration.
    Pi(&'a str),
    /// `<?xml version=…?>`
    Declaration(&'a str),
    /// `<!DOCTYPE …>` (skipped, not validated).
    Doctype(&'a str),
}

/// Parse error with the 1-based line and column where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub kind: XmlErrorKind,
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column (in characters) of the error.
    pub column: usize,
}

/// The kinds of error the parser reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended inside a construct.
    UnexpectedEof(&'static str),
    /// `</b>` closed `<a>`.
    MismatchedTag { expected: String, found: String },
    /// An end tag with no matching open element.
    UnmatchedEndTag(String),
    /// Tags still open at end of input.
    UnclosedTags(usize),
    /// A second element at the top level.
    MultipleRoots,
    /// Non-whitespace character data outside the root element.
    TextOutsideRoot,
    /// No root element at all.
    EmptyDocument,
    /// A malformed construct (tag syntax, attribute syntax, bad name, …).
    Malformed(String),
    /// Bad entity/character reference in text or attribute value.
    Escape(EscapeError),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at {}:{}: ", self.line, self.column)?;
        match &self.kind {
            XmlErrorKind::UnexpectedEof(what) => write!(f, "unexpected end of input in {what}"),
            XmlErrorKind::MismatchedTag { expected, found } => {
                write!(f, "mismatched end tag: expected </{expected}>, found </{found}>")
            }
            XmlErrorKind::UnmatchedEndTag(name) => write!(f, "end tag </{name}> with no open tag"),
            XmlErrorKind::UnclosedTags(n) => write!(f, "{n} element(s) left open at end of input"),
            XmlErrorKind::MultipleRoots => write!(f, "more than one root element"),
            XmlErrorKind::TextOutsideRoot => write!(f, "character data outside the root element"),
            XmlErrorKind::EmptyDocument => write!(f, "no root element"),
            XmlErrorKind::Malformed(msg) => write!(f, "{msg}"),
            XmlErrorKind::Escape(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for XmlError {}

/// Streaming pull parser over an in-memory document.
///
/// ```
/// use gks_xml::{Event, Reader};
///
/// let mut r = Reader::new("<a><b>hi</b></a>");
/// assert!(matches!(r.next_event().unwrap(), Some(Event::Start { name: "a", .. })));
/// assert!(matches!(r.next_event().unwrap(), Some(Event::Start { name: "b", .. })));
/// assert!(matches!(r.next_event().unwrap(), Some(Event::Text(t)) if t == "hi"));
/// ```
#[derive(Debug)]
pub struct Reader<'a> {
    input: &'a str,
    pos: usize,
    /// Open-element stack for well-formedness checking.
    stack: Vec<&'a str>,
    /// Name of a self-closed element whose `End` is still owed.
    pending_end: Option<&'a str>,
    seen_root: bool,
    finished: bool,
    trim_text: bool,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `input`. Whitespace-only text nodes are skipped
    /// and other text is edge-trimmed by default (see [`Self::trim_text`]).
    pub fn new(input: &'a str) -> Self {
        Reader {
            input,
            pos: 0,
            stack: Vec::new(),
            pending_end: None,
            seen_root: false,
            finished: false,
            trim_text: true,
        }
    }

    /// Controls whitespace handling: when `true` (default), whitespace-only
    /// text events are suppressed and other text is trimmed at both ends —
    /// the right behaviour for data-oriented XML with pretty-printing
    /// indentation. When `false`, text is delivered verbatim.
    pub fn trim_text(mut self, trim: bool) -> Self {
        self.trim_text = trim;
        self
    }

    /// Current depth of open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Builds an [`XmlError`] of the given kind at the reader's current
    /// position — for callers layering structural checks on the event
    /// stream (e.g. the DOM builder).
    pub fn error_here(&self, kind: XmlErrorKind) -> XmlError {
        self.error(kind)
    }

    fn error(&self, kind: XmlErrorKind) -> XmlError {
        self.error_at(self.pos, kind)
    }

    fn error_at(&self, offset: usize, kind: XmlErrorKind) -> XmlError {
        let prefix = &self.input[..offset.min(self.input.len())];
        let line = prefix.bytes().filter(|&b| b == b'\n').count() + 1;
        let column = prefix.chars().rev().take_while(|&c| c != '\n').count() + 1;
        XmlError { kind, line, column }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    /// Pulls the next event, or `Ok(None)` at a well-formed end of input.
    #[allow(clippy::should_implement_trait)] // fallible, so not Iterator::next
    pub fn next_event(&mut self) -> Result<Option<Event<'a>>, XmlError> {
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            return Ok(Some(Event::End { name }));
        }
        loop {
            if self.pos >= self.input.len() {
                return self.at_eof();
            }
            if self.rest().starts_with('<') {
                return self.parse_markup().map(Some);
            }
            // Character data up to the next markup.
            let start = self.pos;
            let end = self.rest().find('<').map_or(self.input.len(), |i| self.pos + i);
            self.pos = end;
            let raw = &self.input[start..end];
            let slice = if self.trim_text { raw.trim() } else { raw };
            if slice.is_empty() {
                continue; // inter-element whitespace
            }
            if self.stack.is_empty() {
                return Err(self.error_at(start, XmlErrorKind::TextOutsideRoot));
            }
            let text =
                unescape(slice).map_err(|e| self.error_at(start, XmlErrorKind::Escape(e)))?;
            return Ok(Some(Event::Text(text)));
        }
    }

    fn at_eof(&mut self) -> Result<Option<Event<'a>>, XmlError> {
        if !self.stack.is_empty() {
            return Err(self.error(XmlErrorKind::UnclosedTags(self.stack.len())));
        }
        if !self.seen_root && !self.finished {
            return Err(self.error(XmlErrorKind::EmptyDocument));
        }
        self.finished = true;
        Ok(None)
    }

    fn parse_markup(&mut self) -> Result<Event<'a>, XmlError> {
        let rest = self.rest();
        if let Some(body) = rest.strip_prefix("<!--") {
            let end = body
                .find("-->")
                .ok_or_else(|| self.error(XmlErrorKind::UnexpectedEof("comment")))?;
            let content = &body[..end];
            self.pos += 4 + end + 3;
            return Ok(Event::Comment(content));
        }
        if let Some(body) = rest.strip_prefix("<![CDATA[") {
            let end = body
                .find("]]>")
                .ok_or_else(|| self.error(XmlErrorKind::UnexpectedEof("CDATA section")))?;
            let content = &body[..end];
            self.pos += 9 + end + 3;
            if self.stack.is_empty() {
                return Err(self.error(XmlErrorKind::TextOutsideRoot));
            }
            return Ok(Event::Text(Cow::Borrowed(content)));
        }
        if rest.starts_with("<!DOCTYPE") || rest.starts_with("<!doctype") {
            return self.parse_doctype();
        }
        if let Some(body) = rest.strip_prefix("<?") {
            let end = body
                .find("?>")
                .ok_or_else(|| self.error(XmlErrorKind::UnexpectedEof("processing instruction")))?;
            let content = &body[..end];
            self.pos += 2 + end + 2;
            return Ok(if content.starts_with("xml") {
                Event::Declaration(content)
            } else {
                Event::Pi(content)
            });
        }
        if rest.starts_with("</") {
            return self.parse_end_tag();
        }
        self.parse_start_tag()
    }

    /// Skips `<!DOCTYPE …>`, honouring a bracketed internal subset.
    fn parse_doctype(&mut self) -> Result<Event<'a>, XmlError> {
        let body_start = self.pos + "<!DOCTYPE".len();
        let mut depth = 0usize;
        let bytes = self.input.as_bytes();
        let mut i = body_start;
        while i < bytes.len() {
            match bytes[i] {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    let content = self.input[body_start..i].trim();
                    self.pos = i + 1;
                    return Ok(Event::Doctype(content));
                }
                _ => {}
            }
            i += 1;
        }
        Err(self.error(XmlErrorKind::UnexpectedEof("DOCTYPE")))
    }

    fn parse_end_tag(&mut self) -> Result<Event<'a>, XmlError> {
        let body = &self.rest()[2..];
        let end = body
            .find('>')
            .ok_or_else(|| self.error(XmlErrorKind::UnexpectedEof("end tag")))?;
        let name = body[..end].trim_end();
        if !is_valid_name(name) {
            return Err(self.error(XmlErrorKind::Malformed(format!("bad end-tag name {name:?}"))));
        }
        self.pos += 2 + end + 1;
        match self.stack.pop() {
            Some(open) if open == name => Ok(Event::End { name }),
            Some(open) => Err(self.error(XmlErrorKind::MismatchedTag {
                expected: open.to_string(),
                found: name.to_string(),
            })),
            None => Err(self.error(XmlErrorKind::UnmatchedEndTag(name.to_string()))),
        }
    }

    fn parse_start_tag(&mut self) -> Result<Event<'a>, XmlError> {
        let tag_start = self.pos;
        let body = &self.rest()[1..]; // past '<'
                                      // Find the closing '>' respecting quoted attribute values.
        let bytes = body.as_bytes();
        let mut i = 0;
        let mut quote: Option<u8> = None;
        let tag_len = loop {
            if i >= bytes.len() {
                return Err(self.error(XmlErrorKind::UnexpectedEof("start tag")));
            }
            match (quote, bytes[i]) {
                (None, b'>') => break i,
                (None, b'"') => quote = Some(b'"'),
                (None, b'\'') => quote = Some(b'\''),
                (Some(q), b) if b == q => quote = None,
                _ => {}
            }
            i += 1;
        };
        let mut tag = &body[..tag_len];
        let self_closing = tag.ends_with('/');
        if self_closing {
            tag = &tag[..tag.len() - 1];
        }
        // Element name: up to the first whitespace.
        let name_end = tag.find(|c: char| c.is_whitespace()).unwrap_or(tag.len());
        let name = &tag[..name_end];
        if !is_valid_name(name) {
            return Err(self.error_at(
                tag_start,
                XmlErrorKind::Malformed(format!("bad element name {name:?}")),
            ));
        }
        let attributes = self.parse_attributes(&tag[name_end..], tag_start)?;
        if self.stack.is_empty() {
            if self.seen_root {
                return Err(self.error_at(tag_start, XmlErrorKind::MultipleRoots));
            }
            self.seen_root = true;
        }
        self.pos += 1 + tag_len + 1;
        self.stack.push(name);
        if self_closing {
            self.pending_end = Some(name);
        }
        Ok(Event::Start { name, attributes })
    }

    fn parse_attributes(
        &self,
        mut rest: &'a str,
        tag_start: usize,
    ) -> Result<Vec<Attribute<'a>>, XmlError> {
        let mut attrs = Vec::new();
        loop {
            rest = rest.trim_start();
            if rest.is_empty() {
                return Ok(attrs);
            }
            let eq = rest.find('=').ok_or_else(|| {
                self.error_at(
                    tag_start,
                    XmlErrorKind::Malformed(format!("attribute without '=': {rest:?}")),
                )
            })?;
            let name = rest[..eq].trim();
            if !is_valid_name(name) {
                return Err(self.error_at(
                    tag_start,
                    XmlErrorKind::Malformed(format!("bad attribute name {name:?}")),
                ));
            }
            let after_eq = rest[eq + 1..].trim_start();
            let quote = after_eq.chars().next().ok_or_else(|| {
                self.error_at(tag_start, XmlErrorKind::UnexpectedEof("attribute value"))
            })?;
            if quote != '"' && quote != '\'' {
                return Err(self.error_at(
                    tag_start,
                    XmlErrorKind::Malformed("attribute value must be quoted".to_string()),
                ));
            }
            let value_body = &after_eq[1..];
            let close = value_body.find(quote).ok_or_else(|| {
                self.error_at(tag_start, XmlErrorKind::UnexpectedEof("attribute value"))
            })?;
            let raw = &value_body[..close];
            let value =
                unescape(raw).map_err(|e| self.error_at(tag_start, XmlErrorKind::Escape(e)))?;
            attrs.push(Attribute { name, value });
            rest = &value_body[close + 1..];
        }
    }
}

/// A permissive XML `Name` check: letters/`_`/`:` first, then letters,
/// digits, `_`, `-`, `.`, `:`.
fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(xml: &str) -> Result<Vec<Event<'_>>, XmlError> {
        let mut r = Reader::new(xml);
        let mut out = Vec::new();
        while let Some(ev) = r.next_event()? {
            out.push(ev);
        }
        Ok(out)
    }

    fn start(name: &str) -> Event<'_> {
        Event::Start { name, attributes: vec![] }
    }

    fn end(name: &str) -> Event<'_> {
        Event::End { name }
    }

    #[test]
    fn simple_document() {
        assert_eq!(
            events("<a><b>hi</b><c/></a>").unwrap(),
            vec![
                start("a"),
                start("b"),
                Event::Text("hi".into()),
                end("b"),
                start("c"),
                end("c"),
                end("a"),
            ]
        );
    }

    #[test]
    fn attributes_parsed_and_unescaped() {
        let evs = events(r#"<country car_code="AL" name='Alb &amp; ania'/>"#).unwrap();
        match &evs[0] {
            Event::Start { name, attributes } => {
                assert_eq!(*name, "country");
                assert_eq!(attributes[0].name, "car_code");
                assert_eq!(attributes[0].value, "AL");
                assert_eq!(attributes[1].name, "name");
                assert_eq!(attributes[1].value, "Alb & ania");
            }
            other => panic!("expected start, got {other:?}"),
        }
    }

    #[test]
    fn text_entities_decoded() {
        let evs = events("<t>a &lt; b &amp;&#x41;</t>").unwrap();
        assert_eq!(evs[1], Event::Text("a < b &A".into()));
    }

    #[test]
    fn whitespace_only_text_skipped_by_default() {
        let evs = events("<a>\n  <b>x</b>\n</a>").unwrap();
        assert_eq!(evs, vec![start("a"), start("b"), Event::Text("x".into()), end("b"), end("a")]);
    }

    #[test]
    fn verbatim_mode_preserves_whitespace() {
        let mut r = Reader::new("<a> x </a>").trim_text(false);
        r.next_event().unwrap();
        assert_eq!(r.next_event().unwrap(), Some(Event::Text(" x ".into())));
    }

    #[test]
    fn declaration_comment_doctype_pi() {
        let xml = "<?xml version=\"1.0\"?><!DOCTYPE dblp SYSTEM \"dblp.dtd\" [<!ENTITY x \"y\">]>\
                   <!-- hello --><a><?php echo ?></a>";
        let evs = events(xml).unwrap();
        assert!(matches!(evs[0], Event::Declaration(_)));
        assert!(matches!(evs[1], Event::Doctype(_)));
        assert_eq!(evs[2], Event::Comment(" hello "));
        assert!(matches!(&evs[4], Event::Pi(p) if p.starts_with("php")));
    }

    #[test]
    fn cdata_passes_verbatim() {
        let evs = events("<a><![CDATA[<not> & markup]]></a>").unwrap();
        assert_eq!(evs[1], Event::Text("<not> & markup".into()));
    }

    #[test]
    fn mismatched_tag_reported_with_position() {
        let err = events("<a>\n<b></a>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::MismatchedTag { .. }));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unclosed_tags_detected() {
        assert!(matches!(events("<a><b>").unwrap_err().kind, XmlErrorKind::UnclosedTags(2)));
    }

    #[test]
    fn unmatched_end_tag_detected() {
        assert!(matches!(
            events("<a></a></b>").unwrap_err().kind,
            XmlErrorKind::UnmatchedEndTag(_)
        ));
    }

    #[test]
    fn multiple_roots_rejected() {
        assert!(matches!(events("<a/><b/>").unwrap_err().kind, XmlErrorKind::MultipleRoots));
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(matches!(events("hello<a/>").unwrap_err().kind, XmlErrorKind::TextOutsideRoot));
        assert!(matches!(events("<a/>bye").unwrap_err().kind, XmlErrorKind::TextOutsideRoot));
    }

    #[test]
    fn empty_document_rejected() {
        assert!(matches!(events("").unwrap_err().kind, XmlErrorKind::EmptyDocument));
        assert!(matches!(events("<!-- only -->").unwrap_err().kind, XmlErrorKind::EmptyDocument));
    }

    #[test]
    fn bad_names_rejected() {
        assert!(matches!(events("<1a/>").unwrap_err().kind, XmlErrorKind::Malformed(_)));
        assert!(matches!(events("<a 1x=\"v\"/>").unwrap_err().kind, XmlErrorKind::Malformed(_)));
    }

    #[test]
    fn unquoted_attribute_rejected() {
        assert!(matches!(events("<a x=v/>").unwrap_err().kind, XmlErrorKind::Malformed(_)));
    }

    #[test]
    fn gt_inside_attribute_value_is_fine() {
        let evs = events(r#"<a x="1 > 0"/>"#).unwrap();
        match &evs[0] {
            Event::Start { attributes, .. } => assert_eq!(attributes[0].value, "1 > 0"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn depth_tracks_open_elements() {
        let mut r = Reader::new("<a><b/></a>");
        r.next_event().unwrap();
        assert_eq!(r.depth(), 1);
        r.next_event().unwrap(); // <b> (self-closing start)
        assert_eq!(r.depth(), 2);
        r.next_event().unwrap(); // </b>
        assert_eq!(r.depth(), 1);
    }
}
