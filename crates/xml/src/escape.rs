//! Escaping and entity decoding for character data and attribute values.

use std::borrow::Cow;
use std::fmt;

/// Error produced while decoding entity references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EscapeError {
    /// `&` not followed by a terminated entity reference.
    UnterminatedEntity,
    /// An entity name that is neither predefined nor a character reference.
    UnknownEntity(String),
    /// A numeric character reference that is not a valid Unicode scalar.
    InvalidCharRef(String),
}

impl fmt::Display for EscapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EscapeError::UnterminatedEntity => write!(f, "unterminated entity reference"),
            EscapeError::UnknownEntity(name) => write!(f, "unknown entity &{name};"),
            EscapeError::InvalidCharRef(s) => write!(f, "invalid character reference &#{s};"),
        }
    }
}

impl std::error::Error for EscapeError {}

/// Escapes `text` for use as character data or an attribute value, appending
/// to `out`. Escapes the five predefined entities; everything else passes
/// through verbatim.
pub fn escape_into(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

/// Escapes `text`, avoiding allocation when nothing needs escaping.
pub fn escape(text: &str) -> Cow<'_, str> {
    if text.bytes().any(|b| matches!(b, b'&' | b'<' | b'>' | b'"' | b'\'')) {
        let mut out = String::with_capacity(text.len() + 8);
        escape_into(text, &mut out);
        Cow::Owned(out)
    } else {
        Cow::Borrowed(text)
    }
}

/// Decodes entity and character references in `text`. Borrows when there is
/// nothing to decode.
pub fn unescape(text: &str) -> Result<Cow<'_, str>, EscapeError> {
    if !text.contains('&') {
        return Ok(Cow::Borrowed(text));
    }
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or(EscapeError::UnterminatedEntity)?;
        let name = &after[..semi];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with('#') => {
                let digits = &name[1..];
                let code = if let Some(hex) = digits.strip_prefix('x').or(digits.strip_prefix('X'))
                {
                    u32::from_str_radix(hex, 16)
                } else {
                    digits.parse::<u32>()
                }
                .map_err(|_| EscapeError::InvalidCharRef(digits.to_string()))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| EscapeError::InvalidCharRef(digits.to_string()))?,
                );
            }
            _ => return Err(EscapeError::UnknownEntity(name.to_string())),
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_all_five() {
        assert_eq!(escape(r#"<a & "b" 'c'>"#), "&lt;a &amp; &quot;b&quot; &apos;c&apos;&gt;");
    }

    #[test]
    fn escape_borrows_when_clean() {
        assert!(matches!(escape("plain text"), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_predefined_and_numeric() {
        assert_eq!(unescape("&lt;x&gt; &amp; &#65;&#x42;").unwrap(), "<x> & AB");
        assert_eq!(unescape("a &apos;quoted&apos; &quot;v&quot;").unwrap(), "a 'quoted' \"v\"");
    }

    #[test]
    fn unescape_borrows_when_clean() {
        assert!(matches!(unescape("nothing here").unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_rejects_bad_input() {
        assert_eq!(unescape("a & b"), Err(EscapeError::UnterminatedEntity));
        assert_eq!(unescape("&nbsp;"), Err(EscapeError::UnknownEntity("nbsp".into())));
        assert_eq!(unescape("&#xD800;"), Err(EscapeError::InvalidCharRef("xD800".into())));
        assert_eq!(unescape("&#zz;"), Err(EscapeError::InvalidCharRef("zz".into())));
    }

    #[test]
    fn round_trip() {
        let original = r#"Mixed <tags> & "quotes" with 'apostrophes' and ünïcode"#;
        assert_eq!(unescape(&escape(original)).unwrap(), original);
    }
}
