//! A lightweight DOM built on the pull parser.
//!
//! The GKS engine itself never materializes a DOM — it indexes in one
//! streaming pass — but the naive baseline algorithms and the property-test
//! oracles need a plain tree to walk, and examples are easier to read against
//! one.

use crate::reader::{Event, Reader, XmlError, XmlErrorKind};

/// What a [`Node`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with a tag name.
    Element,
    /// Character data.
    Text,
}

/// One node of the tree: an element (with attributes and children) or a text
/// node (with content).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    kind: NodeKind,
    /// Element name, or empty for text nodes.
    name: String,
    /// Text content for text nodes, empty for elements.
    content: String,
    attributes: Vec<(String, String)>,
    children: Vec<Node>,
}

impl Node {
    fn element(name: &str, attributes: Vec<(String, String)>) -> Self {
        Node {
            kind: NodeKind::Element,
            name: name.to_string(),
            content: String::new(),
            attributes,
            children: Vec::new(),
        }
    }

    fn text_node(content: String) -> Self {
        Node {
            kind: NodeKind::Text,
            name: String::new(),
            content,
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Element vs text.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// Tag name (empty for text nodes).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `true` for element nodes.
    pub fn is_element(&self) -> bool {
        self.kind == NodeKind::Element
    }

    /// All children in document order (elements and text nodes).
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// Only the element children, in order.
    pub fn element_children(&self) -> Vec<&Node> {
        self.children.iter().filter(|c| c.is_element()).collect()
    }

    /// XML attributes as (name, value) pairs, in document order.
    pub fn attributes(&self) -> &[(String, String)] {
        &self.attributes
    }

    /// The value of the named XML attribute, if present.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Concatenated text of this node's subtree (for a text node, its own
    /// content).
    pub fn text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        if self.kind == NodeKind::Text {
            out.push_str(&self.content);
        }
        for c in &self.children {
            c.collect_text(out);
        }
    }

    /// Pre-order iterator over this subtree, including `self`.
    pub fn descendants(&self) -> Descendants<'_> {
        Descendants { stack: vec![self] }
    }

    /// All descendant elements (including self) with the given tag name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Node> + 'a {
        self.descendants().filter(move |n| n.is_element() && n.name == name)
    }

    /// The first child element with the given tag name, if any.
    pub fn child_element(&self, name: &str) -> Option<&Node> {
        self.children.iter().find(|c| c.is_element() && c.name == name)
    }
}

/// Pre-order traversal. See [`Node::descendants`].
#[derive(Debug)]
pub struct Descendants<'a> {
    stack: Vec<&'a Node>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = &'a Node;

    fn next(&mut self) -> Option<&'a Node> {
        let node = self.stack.pop()?;
        self.stack.extend(node.children.iter().rev());
        Some(node)
    }
}

/// A parsed XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    root: Node,
}

impl Document {
    /// Parses a document, building the full tree in memory.
    pub fn parse(xml: &str) -> Result<Document, XmlError> {
        let mut reader = Reader::new(xml);
        let mut stack: Vec<Node> = Vec::new();
        let mut root: Option<Node> = None;
        while let Some(event) = reader.next_event()? {
            match event {
                Event::Start { name, attributes } => {
                    let attrs = attributes
                        .into_iter()
                        .map(|a| (a.name.to_string(), a.value.into_owned()))
                        .collect();
                    stack.push(Node::element(name, attrs));
                }
                Event::End { name } => {
                    // The reader enforces balance; surface a typed error
                    // instead of panicking if that ever regresses.
                    let Some(node) = stack.pop() else {
                        return Err(
                            reader.error_here(XmlErrorKind::UnmatchedEndTag(name.to_string()))
                        );
                    };
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None => root = Some(node),
                    }
                }
                Event::Text(t) => {
                    if let Some(parent) = stack.last_mut() {
                        parent.children.push(Node::text_node(t.into_owned()));
                    }
                }
                Event::Comment(_) | Event::Pi(_) | Event::Declaration(_) | Event::Doctype(_) => {}
            }
        }
        // The reader rejects input with no root element, so this error is
        // unreachable; report it as a parse error rather than panicking.
        let root = root.ok_or_else(|| reader.error_here(XmlErrorKind::EmptyDocument))?;
        Ok(Document { root })
    }

    /// The root element.
    pub fn root(&self) -> &Node {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const XML: &str = r#"<dept><area><name>Databases</name><courses>
        <course><name>Data Mining</name>
            <students><student>Karen</student><student>Mike</student></students>
        </course>
        <course><name>Algorithms</name>
            <students><student>John</student></students>
        </course>
    </courses></area></dept>"#;

    #[test]
    fn tree_shape() {
        let doc = Document::parse(XML).unwrap();
        let root = doc.root();
        assert_eq!(root.name(), "dept");
        let area = root.child_element("area").unwrap();
        assert_eq!(area.element_children().len(), 2);
        let courses = area.child_element("courses").unwrap();
        assert_eq!(courses.element_children().len(), 2);
    }

    #[test]
    fn find_all_and_text() {
        let doc = Document::parse(XML).unwrap();
        let students: Vec<String> = doc.root().find_all("student").map(|n| n.text()).collect();
        assert_eq!(students, vec!["Karen", "Mike", "John"]);
    }

    #[test]
    fn descendants_preorder() {
        let doc = Document::parse("<a><b><c/></b><d/></a>").unwrap();
        let names: Vec<&str> =
            doc.root().descendants().filter(|n| n.is_element()).map(|n| n.name()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn subtree_text_concatenation() {
        let doc = Document::parse("<a>x<b>y</b>z</a>").unwrap();
        assert_eq!(doc.root().text(), "xyz");
    }

    #[test]
    fn attributes_available() {
        let doc = Document::parse(r#"<m><country car_code="AL"/></m>"#).unwrap();
        let c = doc.root().child_element("country").unwrap();
        assert_eq!(c.attribute("car_code"), Some("AL"));
        assert_eq!(c.attribute("nope"), None);
    }

    #[test]
    fn malformed_input_propagates_error() {
        assert!(Document::parse("<a><b></a>").is_err());
    }
}
