//! Implementation of the `gks` command-line tool.
//!
//! Subcommands (see [`run`] and `gks --help`):
//!
//! * `index [--shards N] <out.gksix> <file.xml>…` — build and persist an
//!   index (`--shards N` partitions the corpus by document into N shard
//!   indexes plus a shard manifest). A single *directory* argument builds
//!   an updatable corpus-directory manifest (`gks_index::index_directory`)
//!   that `watch`/`compact` and the serve-side watcher can keep fresh;
//! * `search <index.gksix> [-s N] [--limit N] [--di] [--analytics] <kw>…` —
//!   query it (quote phrases: `'"Peter Buneman"'`);
//! * `suggest <index.gksix> <kw>…` — refinement suggestions for a query;
//! * `census <file.xml>…` — the §7.2 node-category census (`--schema` adds
//!   the schema-harmonized view);
//! * `info <index.gksix>` — index statistics;
//! * `doctor <index.gksix|manifest>…` — audit persisted indexes against the
//!   structural invariants of paper §2.1/§2.4 (sorted postings, parent
//!   closure, census consistency, attribute-store resolvability); shard
//!   manifests are additionally checked for update-path invariants
//!   (duplicate ids, doc-table referential integrity, orphaned shard
//!   files) and every shard file they reference is audited too;
//! * `watch <manifest> [--interval-ms N] [--compact-threshold N] [--once]`
//!   — poll the manifest's corpus directory and commit a delta shard for
//!   every batch of changes (the standalone form of `serve --watch`);
//! * `compact <manifest>` — fold the delta backlog into fresh base shards;
//! * `generate <dataset> <scale> <out.xml>` — write a synthetic corpus;
//! * `serve [<index.gksix>] [--index NAME=PATH]…` — run the resident HTTP
//!   query service (`gks-server`: a catalog of indexes routed by
//!   `/ix/<name>/` prefix, worker pool, admission control, per-index result
//!   caches, /metrics). SIGHUP or `POST /admin/reload` hot-swaps an index
//!   without dropping in-flight requests; `--watch` runs the incremental
//!   update loop in-process so corpus mutations become searchable live,
//!   and `--compact-threshold N` folds the delta backlog once it reaches
//!   N shards (`POST /admin/compact` forces a fold);
//! * `loadgen <host:port> <workload.txt>` — load generator against a
//!   running `serve` (closed-loop by default, `--open-loop --rate` for a
//!   paced schedule, `--index NAME[=WEIGHT]` for a multi-index traffic
//!   mix), reporting QPS and latency percentiles.
//!
//! `search` and `suggest` accept `--json`, emitting exactly the wire format
//! the serve endpoints return (`gks_core::wire`), so scripts can switch
//! between one-shot CLI calls and the service without reparsing.
//!
//! Exit codes: `0` success, `1` runtime error (missing file, failed search,
//! unhealthy index), `2` usage error.
//!
//! The library form exists so the behaviour is unit-testable; `main` just
//! forwards `std::env::args` and prints.

use std::fmt::Write as _;

use gks_core::analytics::AnalyticsOptions;
use gks_core::di::DiOptions;
use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::{SearchOptions, Threshold};
use gks_core::wire;
use gks_datagen::Dataset;
use gks_index::{
    commit_delta, compact, index_directory, split_corpus, validate_manifest,
    validate_manifest_files, Corpus, GksIndex, IndexFormat, IndexOptions, SchemaSummary,
    ShardManifest,
};
use gks_server::catalog::{IndexSpec, DEFAULT_INDEX_NAME};
use gks_server::{loadgen, signal, ServeConfig};

/// CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError { message: message.into(), code: 2 }
    }

    fn runtime(message: impl Into<String>) -> CliError {
        CliError { message: message.into(), code: 1 }
    }
}

/// Top-level usage text. Every subcommand is listed here; `run` rejects
/// anything else with exit code 2.
pub const USAGE: &str = "\
gks — Generic Keyword Search over XML data (EDBT 2016)

USAGE:
  gks index [--shards N] [--format v2|v3] <out.gksix> <file.xml>...|<corpus-dir>
  gks search <index.gksix> [-s N|all|half] [--limit N] [--json]
             [--di] [--analytics] [--trace] [--explain] <keyword>...
  gks suggest <index.gksix> [--json] <keyword>...
  gks census [--schema] <file.xml>...
  gks schema <index.gksix>
  gks info <index.gksix>
  gks doctor <index.gksix|manifest>...
  gks watch <manifest> [--interval-ms N] [--compact-threshold N] [--once]
  gks compact <manifest>
  gks generate <dataset> <scale> <out.xml>
  gks repl <index.gksix>
  gks serve [<index.gksix>] [--index NAME=PATH[,PATH...]]...
            [--default-index NAME] [--addr HOST:PORT] [--workers N]
            [--queue N] [--deadline-ms N] [--cache-mb N] [--cache-admission]
            [--query-log FILE] [--slow-log FILE] [--slow-ms N]
            [--trace-ring N] [--trace-sample N|1/N] [--no-trace]
            [--watch] [--watch-interval-ms N] [--compact-threshold N]
            [--max-connections N] [--idle-timeout-ms N] [--shard-workers N]
  gks loadgen <host:port> <workload.txt> [--clients N] [--requests N]
            [--zipf S] [--seed N] [--timeout-ms N] [--open-loop --rate QPS]
            [--index NAME[=WEIGHT]]... [--explain] [--keep-alive]
            [--connections N] [--slow-clients N]

`--json` emits the same wire format the serve endpoints return.
`--trace` prints the span tree (per-phase timings) after the results.
`--explain` reports the cost ledger (work counters, not timings): the
CLI prints it after the hits, `--json` splices it into the wire body,
and `loadgen --explain` sends explain=1 so its report can summarize
work per query (postings p50/p99) next to QPS.
`index --shards N` partitions the corpus by document into N shard
indexes next to <out> plus a shard manifest at <out> itself.
`index --format` selects the on-disk layout: v3 (default) stores
block-compressed postings behind a term dictionary and opens via mmap
without decoding them; v2 is the eager single-stream format.
`index <out> <corpus-dir>` builds an updatable manifest that records the
corpus directory and per-document content hashes; `gks watch` (or
`serve --watch`) then commits delta shards as the directory changes, and
`gks compact` folds the backlog into fresh base shards.
`serve` hosts a catalog: the positional index registers as \"default\",
each --index NAME=PATH adds another, reachable under /ix/NAME/search.
An index source may be a comma-separated shard list (NAME=p1,p2) or a
shard manifest path; `/search` then scatters over the shards in
parallel and gathers a lossless merge. --cache-admission gates result
cache fills through a TinyLFU frequency sketch.
SIGHUP (or POST /admin/reload?index=NAME&shard=I) hot-swaps an index —
or one shard of it — in place;
--trace-sample 1/N keeps one in N request traces. `serve` drains
in-flight requests and exits 0 on SIGTERM/ctrl-c; its query/slow logs
are JSONL, one object per request.
`loadgen --open-loop` paces requests on a fixed schedule (no coordinated
omission); latencies are then measured from the scheduled send time.
`loadgen --index NAME=WEIGHT` (repeatable) spreads traffic over catalog
indexes proportional to the weights.
`loadgen --keep-alive` reuses one connection per client; --connections N
holds N extra idle sockets open for the whole run and --slow-clients N
adds stalled partial-request connections — together they exercise the
server's event-driven connection layer at high connection counts.

DATASETS (for generate):
  sigmod mondial plays treebank swissprot protein dblp nasa interpro

EXIT CODES:
  0  success
  1  runtime error (missing file, failed search, unhealthy index)
  2  usage error (unknown command or bad flags)
";

/// Runs the CLI on pre-split arguments (without the program name),
/// returning the text to print on success.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::usage(USAGE));
    };
    match cmd.as_str() {
        "index" => cmd_index(rest),
        "search" => cmd_search(rest),
        "suggest" => cmd_suggest(rest),
        "census" => cmd_census(rest),
        "schema" => cmd_schema(rest),
        "info" => cmd_info(rest),
        "doctor" => cmd_doctor(rest),
        "watch" => cmd_watch(rest),
        "compact" => cmd_compact(rest),
        "generate" => cmd_generate(rest),
        "repl" => cmd_repl(rest),
        "serve" => cmd_serve(rest),
        "loadgen" => cmd_loadgen(rest),
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(CliError::usage(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

fn load_engine(path: &str) -> Result<Engine, CliError> {
    let index = GksIndex::load(path)
        .map_err(|e| CliError::runtime(format!("cannot load index {path:?}: {e}")))?;
    Ok(Engine::from_index(index))
}

fn parse_query(words: &[String]) -> Result<Query, CliError> {
    if words.is_empty() {
        return Err(CliError::usage("no query keywords given"));
    }
    Query::from_keywords(words.iter().cloned())
        .map_err(|e| CliError::usage(format!("bad query: {e}")))
}

fn cmd_index(args: &[String]) -> Result<String, CliError> {
    const INDEX_USAGE: &str =
        "usage: gks index [--shards N] [--format v2|v3] <out.gksix> <file.xml>...";
    let mut shards = 1usize;
    let mut format = IndexFormat::V3;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => {
                shards = parse_value(take_value(&mut it, "--shards")?, "--shards")?;
                if shards == 0 {
                    return Err(CliError::usage("--shards must be >= 1"));
                }
            }
            "--format" => {
                let value = take_value(&mut it, "--format")?;
                format = IndexFormat::parse(value).ok_or_else(|| {
                    CliError::usage(format!("--format must be v2 or v3, got {value:?}"))
                })?;
            }
            _ => positional.push(arg),
        }
    }
    let [out, files @ ..] = positional.as_slice() else {
        return Err(CliError::usage(INDEX_USAGE));
    };
    if files.is_empty() {
        return Err(CliError::usage(INDEX_USAGE));
    }
    // A single directory argument builds an updatable corpus-directory
    // manifest instead of a one-shot index: it records the directory and
    // per-document content hashes so `gks watch` / `serve --watch` can
    // commit delta shards as the corpus changes.
    if let [dir] = files {
        if std::path::Path::new(dir.as_str()).is_dir() {
            let manifest = index_directory(
                std::path::Path::new(dir.as_str()),
                std::path::Path::new(out.as_str()),
                shards,
                IndexOptions::default(),
            )
            .map_err(|e| CliError::runtime(format!("cannot index directory {dir:?}: {e}")))?;
            return Ok(format!(
                "indexed corpus directory {dir}: {} document(s) across {} shard(s), epoch {}\n\
                 wrote manifest to {out} — keep it fresh with `gks watch {out}`\n",
                manifest.docs.len(),
                manifest.shards.len(),
                manifest.epoch
            ));
        }
    }
    let corpus = Corpus::from_paths(files.iter().copied())
        .map_err(|e| CliError::runtime(format!("cannot read corpus: {e}")))?;
    if shards > 1 {
        return cmd_index_sharded(out, &corpus, shards, format);
    }
    let index = GksIndex::build(&corpus, IndexOptions::default())
        .map_err(|e| CliError::runtime(format!("indexing failed: {e}")))?;
    let written = index
        .save_as(out, format)
        .map_err(|e| CliError::runtime(format!("cannot write {out:?}: {e}")))?;
    let s = index.stats();
    Ok(format!(
        "indexed {} document(s): {} nodes, {} entities, {} terms, {} postings\n\
         wrote {written} bytes to {out} in {} ms\n",
        s.doc_count,
        s.total_nodes,
        s.census.entity,
        s.distinct_terms,
        s.total_postings,
        s.build_millis
    ))
}

/// `gks index --shards N`: partition the corpus by document into N
/// self-contained shard indexes (written next to `out`) plus the shard
/// manifest at `out` itself. Shard paths are stored relative to the
/// manifest, so the whole set can be moved as a directory.
fn cmd_index_sharded(
    out: &str,
    corpus: &Corpus,
    shards: usize,
    format: IndexFormat,
) -> Result<String, CliError> {
    let out_path = std::path::Path::new(out);
    let stem = out_path
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| CliError::usage(format!("bad output path {out:?}")))?
        .to_string();
    let parts = split_corpus(corpus, shards);
    let mut manifest = ShardManifest::default();
    let mut report = String::new();
    let mut base = 0u32;
    for (i, part) in parts.iter().enumerate() {
        let index = GksIndex::build(part, IndexOptions::default())
            .map_err(|e| CliError::runtime(format!("indexing shard {i} failed: {e}")))?;
        let file = format!("{stem}.shard{i}.gksix");
        let path = out_path.with_file_name(&file);
        let written = index
            .save_as(&path, format)
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", path.display())))?;
        let s = index.stats();
        let _ = writeln!(
            report,
            "shard {i}: {} document(s), {} nodes, {} terms -> {} ({written} bytes)",
            s.doc_count,
            s.total_nodes,
            s.distinct_terms,
            path.display()
        );
        let mut entry = ShardManifest::entry_for(&index, &file, base);
        entry.id = u64::try_from(i).unwrap_or(u64::MAX);
        manifest.shards.push(entry);
        base = base.saturating_add(u32::try_from(part.len()).unwrap_or(u32::MAX));
    }
    manifest
        .save(out_path)
        .map_err(|e| CliError::runtime(format!("cannot write manifest {out:?}: {e}")))?;
    let _ = writeln!(
        report,
        "wrote shard manifest ({} shard(s), {} document(s)) to {out}",
        parts.len(),
        corpus.len()
    );
    Ok(report)
}

fn cmd_search(args: &[String]) -> Result<String, CliError> {
    let Some((index_path, rest)) = args.split_first() else {
        return Err(CliError::usage("usage: gks search <index.gksix> [options] <keyword>..."));
    };
    let mut s = Threshold::Fixed(1);
    let mut limit = 20usize;
    let mut want_di = false;
    let mut want_analytics = false;
    let mut want_json = false;
    let mut want_trace = false;
    let mut want_explain = false;
    let mut keywords: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-s" => {
                let v = it.next().ok_or_else(|| CliError::usage("-s needs a value"))?;
                s = Threshold::parse(v)
                    .ok_or_else(|| CliError::usage(format!("bad -s value {v:?}")))?;
            }
            "--limit" => {
                let v = it.next().ok_or_else(|| CliError::usage("--limit needs a value"))?;
                limit =
                    v.parse().map_err(|_| CliError::usage(format!("bad --limit value {v:?}")))?;
            }
            "--di" => want_di = true,
            "--analytics" => want_analytics = true,
            "--json" => want_json = true,
            "--trace" => want_trace = true,
            "--explain" => want_explain = true,
            _ => keywords.push(arg.clone()),
        }
    }
    if want_json && (want_di || want_analytics || want_trace) {
        return Err(CliError::usage(
            "--json cannot be combined with --di/--analytics/--trace (use `gks suggest --json` for insights)",
        ));
    }
    if want_trace {
        gks_trace::set_enabled(true);
    }
    let engine = load_engine(index_path)?;
    // The index-open span completes during `load_engine`; grab its trace
    // before the search opens a new root span and displaces it.
    let open_trace = if want_trace {
        gks_trace::take_last_trace()
    } else {
        None
    };
    let query = parse_query(&keywords)?;
    let resp = engine
        .search(&query, SearchOptions { s, limit })
        .map_err(|e| CliError::runtime(format!("search failed: {e}")))?;
    // Taken now because a later `--di` pass opens its own root span, which
    // would displace the search trace from the last-trace slot.
    let search_trace = if want_trace {
        gks_trace::take_last_trace()
    } else {
        None
    };
    if want_json {
        let mut body = if want_explain {
            wire::search_response_json_explained(&engine, &resp)
        } else {
            wire::search_response_json(&engine, &resp)
        };
        body.push('\n');
        return Ok(body);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "query: {query}  (s = {}, |SL| = {}, {} µs)",
        resp.s(),
        resp.sl_len(),
        resp.elapsed_micros()
    );
    let _ = writeln!(out, "{} hit(s):", resp.hits().len());
    for hit in resp.hits() {
        let _ = writeln!(out, "  {}", engine.render_hit(hit, &resp));
    }
    if !resp.missing_keyword_indices().is_empty() {
        let missing: Vec<&str> = resp
            .missing_keyword_indices()
            .iter()
            .map(|&i| resp.keywords()[i].raw())
            .collect();
        let _ = writeln!(out, "keywords matching nothing: {missing:?}");
    }
    if want_di {
        let di = engine.discover_di(&resp, &DiOptions::default());
        let _ = writeln!(out, "\ndeeper analytical insights:");
        for i in &di {
            let _ =
                writeln!(out, "  {}  weight={:.2} support={}", i.display(), i.weight, i.support);
        }
    }
    if want_analytics {
        let a = engine.analyze(&resp, &AnalyticsOptions::default());
        let _ = writeln!(out, "\nhits by entity type:");
        for g in &a.by_type {
            let _ = writeln!(out, "  {}: {} hit(s), rank mass {:.2}", g.label, g.hits, g.rank_mass);
        }
        let _ = writeln!(out, "facets:");
        for f in &a.facets {
            let values: Vec<String> =
                f.values.iter().map(|v| format!("{}×{}", v.value, v.count)).collect();
            let _ = writeln!(out, "  {}: {}", f.path.join("/"), values.join(", "));
        }
    }
    if want_explain {
        let cost = resp.cost();
        let _ = writeln!(out, "\ncost (work, not time):");
        let _ = writeln!(
            out,
            "  postings scanned: {}  (masked: {})",
            cost.postings_scanned, cost.tombstone_masked
        );
        for (i, kw) in resp.keywords().iter().enumerate() {
            let postings = cost.per_keyword.get(i).copied().unwrap_or(0);
            let _ = writeln!(out, "    {:>12}: {postings}", kw.raw());
        }
        let _ = writeln!(out, "  heap ops: {}", cost.heap_ops);
        let _ = writeln!(out, "  sweep advances: {}", cost.sweep_advances);
        let _ = writeln!(out, "  rank candidates: {}", cost.rank_candidates);
        let _ = writeln!(out, "  total work: {}", cost.total_work());
    }
    if want_trace {
        let _ = writeln!(out, "\nspans:");
        for trace in [open_trace, search_trace, gks_trace::take_last_trace()].into_iter().flatten()
        {
            out.push_str(&trace.render_text());
        }
    }
    Ok(out)
}

fn cmd_suggest(args: &[String]) -> Result<String, CliError> {
    let Some((index_path, rest)) = args.split_first() else {
        return Err(CliError::usage("usage: gks suggest <index.gksix> [--json] <keyword>..."));
    };
    let want_json = rest.iter().any(|a| a == "--json");
    let keywords: Vec<String> = rest.iter().filter(|a| *a != "--json").cloned().collect();
    let engine = load_engine(index_path)?;
    let query = parse_query(&keywords)?;
    let resp = engine
        .search(&query, SearchOptions::with_s(1))
        .map_err(|e| CliError::runtime(format!("search failed: {e}")))?;
    let di = engine.discover_di(&resp, &DiOptions::default());
    let refinement = engine.refine(&resp, &di);
    if want_json {
        let mut body = wire::suggest_response_json(&resp, &refinement, &di);
        body.push('\n');
        return Ok(body);
    }
    let mut out = String::new();
    let _ = writeln!(out, "query: {query}");
    let _ = writeln!(out, "sub-queries found in the data:");
    for sq in &refinement.sub_queries {
        let _ = writeln!(out, "  {sq:?}");
    }
    if !refinement.unmatched.is_empty() {
        let _ = writeln!(out, "unmatched keywords: {:?}", refinement.unmatched);
    }
    if !refinement.morphs.is_empty() {
        let _ = writeln!(out, "suggested morphs (with discovered keywords):");
        for m in &refinement.morphs {
            let _ = writeln!(out, "  {m:?}");
        }
    }
    Ok(out)
}

fn cmd_census(args: &[String]) -> Result<String, CliError> {
    let schema = args.iter().any(|a| a == "--schema");
    let files: Vec<&String> = args.iter().filter(|a| *a != "--schema").collect();
    if files.is_empty() {
        return Err(CliError::usage("usage: gks census [--schema] <file.xml>..."));
    }
    let corpus = Corpus::from_paths(files.iter())
        .map_err(|e| CliError::runtime(format!("cannot read corpus: {e}")))?;
    let index = GksIndex::build(&corpus, IndexOptions::default())
        .map_err(|e| CliError::runtime(format!("indexing failed: {e}")))?;
    let c = index.stats().census;
    let mut out = format!(
        "instance-level census: AN={} EN={} RN={} CN={} total={}\n",
        c.attribute,
        c.entity,
        c.repeating,
        c.connecting,
        c.total()
    );
    if schema {
        let summary = SchemaSummary::from_index(&index);
        let h = summary.harmonized_census();
        let _ = writeln!(
            out,
            "schema-level census:   AN={} EN={} RN={} CN={} total={}",
            h.attribute,
            h.entity,
            h.repeating,
            h.connecting,
            h.total()
        );
        let _ = writeln!(out, "entity types:");
        for path in summary.entity_paths() {
            let _ = writeln!(out, "  /{}", path.join("/"));
        }
    }
    Ok(out)
}

fn cmd_schema(args: &[String]) -> Result<String, CliError> {
    let [path] = args else {
        return Err(CliError::usage("usage: gks schema <index.gksix>"));
    };
    let engine = load_engine(path)?;
    let summary = SchemaSummary::from_index(engine.index());
    let mut out = format!("{} distinct label path(s):\n", summary.len());
    for (path, stats) in summary.iter_sorted() {
        let _ = writeln!(
            out,
            "  /{:<48} {:>7} × {}  avg fan-out {:.1}",
            path.join("/"),
            stats.instances,
            stats.dominant_category().abbrev(),
            stats.avg_children()
        );
    }
    let _ = writeln!(out, "\nentity types:");
    for path in summary.entity_paths() {
        let _ = writeln!(out, "  /{}", path.join("/"));
    }
    Ok(out)
}

/// Runs the interactive loop over any `BufRead`/`Write` pair (testable; the
/// binary passes stdin/stdout).
pub fn repl_loop(
    engine: &Engine,
    input: &mut dyn std::io::BufRead,
    output: &mut dyn std::io::Write,
) -> std::io::Result<()> {
    let mut s_threshold = Threshold::Fixed(1);
    writeln!(output, "gks repl — enter keywords; :s N sets the threshold; :q quits")?;
    let mut line = String::new();
    loop {
        write!(output, "gks> ")?;
        output.flush()?;
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(()); // EOF
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix(':') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("q") | Some("quit") => return Ok(()),
                Some("s") => match parts.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(v) if v > 0 => {
                        s_threshold = Threshold::Fixed(v);
                        writeln!(output, "s = {v}")?;
                    }
                    _ => writeln!(output, "usage: :s <positive integer>")?,
                },
                Some(other) => writeln!(output, "unknown command :{other} (try :s, :q)")?,
                None => writeln!(output, "empty command")?,
            }
            continue;
        }
        let query = match Query::parse(trimmed) {
            Ok(q) => q,
            Err(e) => {
                writeln!(output, "bad query: {e}")?;
                continue;
            }
        };
        match engine.search(&query, SearchOptions { s: s_threshold, limit: 10 }) {
            Ok(resp) => {
                writeln!(
                    output,
                    "{} hit(s) (s = {}, {} µs):",
                    resp.hits().len(),
                    resp.s(),
                    resp.elapsed_micros()
                )?;
                for hit in resp.hits() {
                    writeln!(output, "  {}", engine.render_hit(hit, &resp))?;
                }
                let di = engine.discover_di(&resp, &DiOptions { top_m: 3, ..Default::default() });
                if !di.is_empty() {
                    let shown: Vec<String> = di.iter().map(|i| i.display()).collect();
                    writeln!(output, "  DI: {}", shown.join(", "))?;
                }
            }
            Err(e) => writeln!(output, "search failed: {e}")?,
        }
    }
}

fn cmd_repl(args: &[String]) -> Result<String, CliError> {
    let [path] = args else {
        return Err(CliError::usage("usage: gks repl <index.gksix>"));
    };
    let engine = load_engine(path)?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    repl_loop(&engine, &mut stdin.lock(), &mut stdout.lock())
        .map_err(|e| CliError::runtime(format!("repl I/O error: {e}")))?;
    Ok(String::new())
}

fn cmd_info(args: &[String]) -> Result<String, CliError> {
    let [path] = args else {
        return Err(CliError::usage("usage: gks info <index.gksix>"));
    };
    let engine = load_engine(path)?;
    let s = engine.index().stats();
    Ok(format!(
        "documents: {}\nnodes: {} (AN={} EN={} RN={} CN={})\nmax depth: {}\n\
         distinct terms: {}\npostings: {}\nraw bytes indexed: {}\nbuild time: {} ms\n",
        s.doc_count,
        s.total_nodes,
        s.census.attribute,
        s.census.entity,
        s.census.repeating,
        s.census.connecting,
        s.max_depth,
        s.distinct_terms,
        s.total_postings,
        s.raw_bytes,
        s.build_millis
    ))
}

/// True when `path` holds a shard manifest (either header version) rather
/// than a single persisted index.
fn is_manifest_file(path: &str) -> bool {
    std::fs::read(path).is_ok_and(|bytes| bytes.starts_with(gks_index::MANIFEST_MAGIC.as_bytes()))
}

/// Audits one shard manifest: structural invariants of the update path
/// (duplicate ids, doc-table referential integrity, tombstone sanity),
/// disk-level state (missing/orphaned shard files, name mismatches), and
/// the index-level doctor for every shard file that loads. Returns the
/// report plus whether anything was sick.
/// Appends the per-section byte breakdown of one index file (`gks doctor`):
/// term dictionary, postings, node table and attribute store, for both the
/// eager v2 stream and the blocked v3 layout.
fn section_report(path: &std::path::Path, indent: &str, out: &mut String) {
    let Ok(s) = gks_index::section_sizes(path) else {
        return;
    };
    let pct = |n: u64| {
        if s.total == 0 {
            0.0
        } else {
            n as f64 * 100.0 / s.total as f64
        }
    };
    let other = s.header + s.doc_names + s.labels + s.stats + s.footer;
    let _ = writeln!(
        out,
        "{indent}format v{}, {} bytes: term dict {} ({:.1}%), postings {} ({:.1}%), \
         node table {} ({:.1}%), attr store {} ({:.1}%), other {} ({:.1}%)",
        s.version,
        s.total,
        s.term_dict,
        pct(s.term_dict),
        s.postings,
        pct(s.postings),
        s.node_table,
        pct(s.node_table),
        s.attr_store,
        pct(s.attr_store),
        other,
        pct(other),
    );
}

fn doctor_manifest(path: &str, out: &mut String) -> Result<bool, CliError> {
    let manifest = ShardManifest::load(path)
        .map_err(|e| CliError::runtime(format!("cannot load shard manifest {path:?}: {e}")))?;
    let mut violations = validate_manifest(&manifest);
    violations.extend(validate_manifest_files(&manifest, std::path::Path::new(path)));
    let mut sick = !violations.is_empty();
    if violations.is_empty() {
        let _ = writeln!(
            out,
            "{path}: manifest is healthy — epoch {}, {} shard(s) ({} delta), {} document(s), {} tombstone(s)",
            manifest.epoch,
            manifest.shards.len(),
            manifest.delta_shard_count(),
            manifest.docs.len(),
            manifest.tombstones.len()
        );
    } else {
        let _ = writeln!(out, "{path}: {} manifest violation(s) found", violations.len());
        for v in &violations {
            let _ = writeln!(out, "  {v}");
        }
    }
    let dir = std::path::Path::new(path)
        .parent()
        .map(std::path::Path::to_path_buf)
        .unwrap_or_default();
    for entry in &manifest.shards {
        let full = dir.join(&entry.path);
        let shown = full.display();
        let Ok(index) = GksIndex::load(&full) else {
            // Already reported as MissingShardFile by validate_manifest_files.
            continue;
        };
        let shard_violations = index.doctor();
        if shard_violations.is_empty() {
            let _ = writeln!(out, "  shard {}: healthy ({})", entry.id, shown);
            section_report(&full, "    ", out);
        } else {
            sick = true;
            let _ = writeln!(
                out,
                "  shard {}: {} violation(s) found ({shown})",
                entry.id,
                shard_violations.len()
            );
            for v in &shard_violations {
                let _ = writeln!(out, "    {v}");
            }
        }
    }
    Ok(sick)
}

fn cmd_doctor(args: &[String]) -> Result<String, CliError> {
    if args.is_empty() {
        return Err(CliError::usage("usage: gks doctor <index.gksix|manifest>..."));
    }
    // Audit every index (mirroring the server's catalog-wide GET /doctor);
    // the run fails if any one of them is sick, but all are still reported.
    let mut out = String::new();
    let mut sick = 0usize;
    for path in args {
        if is_manifest_file(path) {
            if doctor_manifest(path, &mut out)? {
                sick += 1;
            }
            continue;
        }
        let index = GksIndex::load(path)
            .map_err(|e| CliError::runtime(format!("cannot load index {path:?}: {e}")))?;
        let violations = index.doctor();
        if violations.is_empty() {
            let s = index.stats();
            let _ = writeln!(
                out,
                "{path}: index is healthy — 0 violation(s) across {} node(s), {} term(s), {} posting(s)",
                s.total_nodes, s.distinct_terms, s.total_postings
            );
            section_report(std::path::Path::new(path), "  ", &mut out);
        } else {
            sick += 1;
            let _ = writeln!(out, "{path}: {} violation(s) found", violations.len());
            for v in &violations {
                let _ = writeln!(out, "  {v}");
            }
        }
    }
    if sick > 0 {
        return Err(CliError::runtime(out));
    }
    Ok(out)
}

fn take_value<'a>(
    it: &mut std::slice::Iter<'a, String>,
    flag: &str,
) -> Result<&'a String, CliError> {
    it.next().ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
}

fn parse_value<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, CliError> {
    value
        .parse()
        .map_err(|_| CliError::usage(format!("bad {flag} value {value:?}")))
}

/// Parses a `--trace-sample` spelling: `N` or `1/N`, N ≥ 1.
fn parse_trace_sample(value: &str) -> Option<u64> {
    let n = value.strip_prefix("1/").unwrap_or(value);
    n.parse::<u64>().ok().filter(|&n| n >= 1)
}

/// Builds the catalog spec for one index source spelling:
/// `p1,p2,…` registers the comma-separated paths as shards, a path whose
/// file starts with the shard-manifest header loads the manifest, and
/// anything else is a plain single-index path.
fn index_spec_for(name: &str, spec: &str) -> Result<IndexSpec, CliError> {
    if spec.contains(',') {
        return Ok(IndexSpec::with_shard_paths(name, spec.split(',')));
    }
    if is_manifest_file(spec) {
        return IndexSpec::with_manifest(name, spec)
            .map_err(|e| CliError::runtime(format!("cannot load shard manifest {spec:?}: {e}")));
    }
    Ok(IndexSpec::with_source(name, spec))
}

fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    const SERVE_USAGE: &str = "usage: gks serve [<index.gksix>] [--index NAME=PATH[,PATH...]]... \
        [--default-index NAME] [--addr HOST:PORT] [--workers N] [--queue N] \
        [--deadline-ms N] [--cache-mb N] [--cache-admission] [--query-log FILE] \
        [--slow-log FILE] [--slow-ms N] [--trace-ring N] [--trace-sample N|1/N] \
        [--no-trace] [--watch] [--watch-interval-ms N] [--compact-threshold N] \
        [--max-connections N] [--idle-timeout-ms N] [--shard-workers N]";
    // The positional path (registered as the "default" index) is optional
    // when --index flags supply the catalog.
    let (positional, rest) = match args.split_first() {
        Some((first, rest)) if !first.starts_with("--") => (Some(first), rest),
        _ => (None, args),
    };
    let mut config = ServeConfig::default();
    let mut specs: Vec<IndexSpec> = Vec::new();
    if let Some(path) = positional {
        specs.push(index_spec_for(DEFAULT_INDEX_NAME, path)?);
    }
    let mut default_index: Option<String> = None;
    let mut watch = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--watch" => watch = true,
            "--watch-interval-ms" => {
                let ms: u64 = parse_value(
                    take_value(&mut it, "--watch-interval-ms")?,
                    "--watch-interval-ms",
                )?;
                if ms == 0 {
                    return Err(CliError::usage("--watch-interval-ms must be >= 1"));
                }
                config.watch_interval = Some(std::time::Duration::from_millis(ms));
            }
            "--compact-threshold" => {
                config.compact_threshold = Some(parse_value(
                    take_value(&mut it, "--compact-threshold")?,
                    "--compact-threshold",
                )?);
            }
            "--index" => {
                let v = take_value(&mut it, "--index")?;
                let Some((name, path)) = v.split_once('=') else {
                    return Err(CliError::usage(format!("--index wants NAME=PATH, got {v:?}")));
                };
                specs.push(index_spec_for(name, path)?);
            }
            "--default-index" => {
                default_index = Some(take_value(&mut it, "--default-index")?.clone());
            }
            "--trace-sample" => {
                let v = take_value(&mut it, "--trace-sample")?;
                config.trace_sample = parse_trace_sample(v).ok_or_else(|| {
                    CliError::usage(format!("bad --trace-sample value {v:?} (want N or 1/N)"))
                })?;
            }
            "--addr" => config.addr = take_value(&mut it, "--addr")?.clone(),
            "--workers" => {
                config.workers = parse_value(take_value(&mut it, "--workers")?, "--workers")?;
            }
            "--queue" => {
                config.queue_depth = parse_value(take_value(&mut it, "--queue")?, "--queue")?;
            }
            "--deadline-ms" => {
                let ms: u64 = parse_value(take_value(&mut it, "--deadline-ms")?, "--deadline-ms")?;
                config.deadline = std::time::Duration::from_millis(ms);
            }
            "--cache-mb" => {
                let mb: usize = parse_value(take_value(&mut it, "--cache-mb")?, "--cache-mb")?;
                config.cache_bytes = mb * 1024 * 1024;
            }
            "--cache-admission" => config.cache_admission = true,
            "--query-log" => {
                config.query_log =
                    Some(std::path::PathBuf::from(take_value(&mut it, "--query-log")?));
            }
            "--slow-log" => {
                config.slow_log =
                    Some(std::path::PathBuf::from(take_value(&mut it, "--slow-log")?));
            }
            "--slow-ms" => {
                let ms: u64 = parse_value(take_value(&mut it, "--slow-ms")?, "--slow-ms")?;
                config.slow_threshold = std::time::Duration::from_millis(ms);
            }
            "--trace-ring" => {
                config.trace_ring =
                    parse_value(take_value(&mut it, "--trace-ring")?, "--trace-ring")?;
            }
            "--no-trace" => config.trace = false,
            "--max-connections" => {
                config.max_connections =
                    parse_value(take_value(&mut it, "--max-connections")?, "--max-connections")?;
            }
            "--idle-timeout-ms" => {
                let ms: u64 =
                    parse_value(take_value(&mut it, "--idle-timeout-ms")?, "--idle-timeout-ms")?;
                config.idle_timeout = std::time::Duration::from_millis(ms);
            }
            "--shard-workers" => {
                config.shard_workers =
                    parse_value(take_value(&mut it, "--shard-workers")?, "--shard-workers")?;
            }
            other => return Err(CliError::usage(format!("unknown serve flag {other:?}"))),
        }
    }
    if specs.is_empty() {
        return Err(CliError::usage(SERVE_USAGE));
    }
    // Bare `--watch` picks the default cadence; an explicit interval
    // implies watching.
    if watch && config.watch_interval.is_none() {
        config.watch_interval = Some(std::time::Duration::from_millis(2000));
    }
    let index_names: Vec<String> = specs.iter().map(|s| s.name().to_string()).collect();
    let server = gks_server::serve_catalog(specs, default_index.as_deref(), config.clone())
        .map_err(|e| CliError::runtime(format!("cannot start server: {e}")))?;
    // Clear any stale flags (e.g. a prior run in the same test process),
    // then hook SIGTERM/ctrl-c so `kill` triggers a drain instead of a hard
    // stop, and SIGHUP so it hot-swaps the default index.
    signal::request_shutdown(false);
    signal::request_reload(false);
    let have_signals = signal::install_shutdown_handler();
    println!(
        "gks-serve: listening on {} ({} worker(s), queue {}, deadline {} ms, cache {} MiB)",
        server.local_addr(),
        config.workers,
        config.queue_depth,
        config.deadline.as_millis(),
        config.cache_bytes / (1024 * 1024)
    );
    println!(
        "gks-serve: catalog [{}], default index {:?}",
        index_names.join(", "),
        server.state().catalog().default_index().name()
    );
    if let Some(interval) = config.watch_interval {
        println!(
            "gks-serve: watching manifest corpus directories every {} ms{}",
            interval.as_millis(),
            config
                .compact_threshold
                .map(|t| format!(", compacting at {t} delta shard(s)"))
                .unwrap_or_default()
        );
    }
    if let Some(path) = &config.query_log {
        println!("gks-serve: query log -> {}", path.display());
    }
    if let Some(path) = &config.slow_log {
        println!(
            "gks-serve: slow log -> {} (threshold {} ms)",
            path.display(),
            config.slow_threshold.as_millis()
        );
    }
    if !have_signals {
        println!("gks-serve: no signal support on this platform; stop by killing the process");
    }
    let _ = std::io::Write::flush(&mut std::io::stdout());
    while !signal::shutdown_requested() {
        if signal::take_reload_request() {
            // SIGHUP: hot-swap the default index off the signal path (the
            // handler only sets a flag; this loop does the actual work).
            match server.state().reload_default() {
                Ok((before, after)) => println!(
                    "gks-serve: reloaded default index (identity {before:#x} -> {after:#x})"
                ),
                Err(e) => println!("gks-serve: reload failed: {e}"),
            }
            let _ = std::io::Write::flush(&mut std::io::stdout());
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let report = server.shutdown();
    Ok(format!(
        "gks-serve: drained — accepted {} connection(s), served {}, rejected {}\n",
        report.accepted, report.served, report.rejected
    ))
}

fn cmd_loadgen(args: &[String]) -> Result<String, CliError> {
    const LOADGEN_USAGE: &str = "usage: gks loadgen <host:port> <workload.txt> \
        [--clients N] [--requests N] [--zipf S] [--seed N] [--timeout-ms N] \
        [--open-loop --rate QPS] [--index NAME[=WEIGHT]]... [--explain] \
        [--keep-alive] [--connections N] [--slow-clients N]";
    let [addr_raw, workload_path, rest @ ..] = args else {
        return Err(CliError::usage(LOADGEN_USAGE));
    };
    let addr = {
        use std::net::ToSocketAddrs as _;
        addr_raw
            .to_socket_addrs()
            .ok()
            .and_then(|mut addrs| addrs.next())
            .ok_or_else(|| CliError::usage(format!("bad address {addr_raw:?}")))?
    };
    let mut config = loadgen::LoadgenConfig { addr, ..loadgen::LoadgenConfig::default() };
    let mut open_loop = false;
    let mut rate_qps: Option<f64> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--clients" => {
                config.clients = parse_value(take_value(&mut it, "--clients")?, "--clients")?;
            }
            "--requests" => {
                config.requests_per_client =
                    parse_value(take_value(&mut it, "--requests")?, "--requests")?;
            }
            "--zipf" => config.zipf_s = parse_value(take_value(&mut it, "--zipf")?, "--zipf")?,
            "--seed" => config.seed = parse_value(take_value(&mut it, "--seed")?, "--seed")?,
            "--timeout-ms" => {
                let ms: u64 = parse_value(take_value(&mut it, "--timeout-ms")?, "--timeout-ms")?;
                config.timeout = std::time::Duration::from_millis(ms);
            }
            "--open-loop" => open_loop = true,
            "--explain" => config.explain = true,
            "--keep-alive" => config.keep_alive = true,
            "--connections" => {
                config.connections =
                    parse_value(take_value(&mut it, "--connections")?, "--connections")?;
            }
            "--slow-clients" => {
                config.slow_clients =
                    parse_value(take_value(&mut it, "--slow-clients")?, "--slow-clients")?;
            }
            "--rate" => {
                rate_qps = Some(parse_value(take_value(&mut it, "--rate")?, "--rate")?);
            }
            "--index" => {
                let v = take_value(&mut it, "--index")?;
                let target = loadgen::parse_index_target(v).ok_or_else(|| {
                    CliError::usage(format!("bad --index value {v:?} (want NAME or NAME=WEIGHT)"))
                })?;
                config.targets.push(target);
            }
            other => return Err(CliError::usage(format!("unknown loadgen flag {other:?}"))),
        }
    }
    config.pacing = match (open_loop, rate_qps) {
        (true, Some(rate_qps)) if rate_qps > 0.0 => loadgen::Pacing::Open { rate_qps },
        (true, Some(rate_qps)) => {
            return Err(CliError::usage(format!("--rate must be > 0, got {rate_qps}")));
        }
        (true, None) => return Err(CliError::usage("--open-loop needs --rate QPS")),
        (false, Some(_)) => {
            return Err(CliError::usage("--rate only applies with --open-loop"));
        }
        (false, None) => loadgen::Pacing::Closed,
    };
    let text = std::fs::read_to_string(workload_path)
        .map_err(|e| CliError::runtime(format!("cannot read workload {workload_path:?}: {e}")))?;
    let workload = loadgen::parse_workload(&text);
    if workload.is_empty() {
        return Err(CliError::runtime(format!("workload {workload_path:?} has no queries")));
    }
    let report = loadgen::run(&config, &workload);
    Ok(report.render())
}

/// One watcher tick: commit a delta for whatever changed in the corpus
/// directory, then fold the backlog when it reaches the threshold. Appends
/// a line per event to `out` and returns whether anything happened.
fn watch_tick(
    manifest_path: &std::path::Path,
    threshold: Option<u64>,
    out: &mut String,
) -> Result<bool, CliError> {
    let mut acted = false;
    match commit_delta(manifest_path) {
        Ok(Some(stats)) => {
            acted = true;
            let _ = writeln!(
                out,
                "committed epoch {}: +{} added, ~{} changed, -{} deleted",
                stats.epoch, stats.added, stats.changed, stats.deleted
            );
        }
        Ok(None) => {}
        Err(e) => {
            // Non-fatal: a mid-mutation scan or transient I/O failure is
            // retried on the next tick; the manifest on disk is untouched.
            let _ = writeln!(out, "delta commit failed (will retry): {e}");
        }
    }
    if let Some(threshold) = threshold {
        let backlog = ShardManifest::load(manifest_path)
            .map(|m| u64::try_from(m.delta_shard_count()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        if backlog >= threshold.max(1) {
            match compact(manifest_path) {
                Ok(Some(stats)) => {
                    acted = true;
                    let _ = writeln!(
                        out,
                        "compacted to epoch {}: {} base shard(s), {} document(s), {} old file(s) removed",
                        stats.epoch, stats.base_shards, stats.docs, stats.removed_files
                    );
                }
                Ok(None) => {}
                Err(e) => {
                    let _ = writeln!(out, "compaction failed (will retry): {e}");
                }
            }
        }
    }
    Ok(acted)
}

fn cmd_watch(args: &[String]) -> Result<String, CliError> {
    const WATCH_USAGE: &str =
        "usage: gks watch <manifest> [--interval-ms N] [--compact-threshold N] [--once]";
    let mut interval_ms = 2000u64;
    let mut threshold: Option<u64> = None;
    let mut once = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval-ms" => {
                interval_ms = parse_value(take_value(&mut it, "--interval-ms")?, "--interval-ms")?;
                if interval_ms == 0 {
                    return Err(CliError::usage("--interval-ms must be >= 1"));
                }
            }
            "--compact-threshold" => {
                threshold = Some(parse_value(
                    take_value(&mut it, "--compact-threshold")?,
                    "--compact-threshold",
                )?);
            }
            "--once" => once = true,
            other if other.starts_with("--") => {
                return Err(CliError::usage(format!("unknown watch flag {other:?}")));
            }
            _ => positional.push(arg),
        }
    }
    let [manifest_arg] = positional.as_slice() else {
        return Err(CliError::usage(WATCH_USAGE));
    };
    let manifest_path = std::path::PathBuf::from(manifest_arg.as_str());
    // Fail fast on a path that is not an updatable manifest at all.
    let manifest = ShardManifest::load(&manifest_path).map_err(|e| {
        CliError::runtime(format!("cannot load shard manifest {manifest_arg:?}: {e}"))
    })?;
    if gks_index::delta::corpus_dir_of(&manifest, &manifest_path).is_none() {
        return Err(CliError::runtime(format!(
            "manifest {manifest_arg:?} records no corpus directory — rebuild it with \
             `gks index <manifest> <corpus-dir>` to enable the update path"
        )));
    }
    if once {
        let mut out = String::new();
        if !watch_tick(&manifest_path, threshold, &mut out)? {
            let _ = writeln!(out, "corpus unchanged — nothing to commit");
        }
        return Ok(out);
    }
    signal::request_shutdown(false);
    let have_signals = signal::install_shutdown_handler();
    println!(
        "gks-watch: polling {} every {interval_ms} ms{}",
        manifest_arg,
        threshold
            .map(|t| format!(", compacting at {t} delta shard(s)"))
            .unwrap_or_default()
    );
    if !have_signals {
        println!("gks-watch: no signal support on this platform; stop by killing the process");
    }
    let _ = std::io::Write::flush(&mut std::io::stdout());
    while !signal::shutdown_requested() {
        let mut events = String::new();
        let _ = watch_tick(&manifest_path, threshold, &mut events)?;
        if !events.is_empty() {
            print!("gks-watch: {events}");
            let _ = std::io::Write::flush(&mut std::io::stdout());
        }
        // Sleep in short slices so SIGTERM/ctrl-c stays prompt.
        let mut remaining = interval_ms;
        while remaining > 0 && !signal::shutdown_requested() {
            let slice = remaining.min(50);
            std::thread::sleep(std::time::Duration::from_millis(slice));
            remaining -= slice;
        }
    }
    Ok("gks-watch: stopped\n".to_string())
}

fn cmd_compact(args: &[String]) -> Result<String, CliError> {
    let [path] = args else {
        return Err(CliError::usage("usage: gks compact <manifest>"));
    };
    let manifest_path = std::path::Path::new(path.as_str());
    match compact(manifest_path) {
        Ok(Some(stats)) => Ok(format!(
            "compacted {path}: epoch {}, {} base shard(s), {} document(s), {} old file(s) removed\n",
            stats.epoch, stats.base_shards, stats.docs, stats.removed_files
        )),
        Ok(None) => Ok(format!("{path}: no delta backlog — nothing to compact\n")),
        Err(e) => Err(CliError::runtime(format!("cannot compact {path:?}: {e}"))),
    }
}

fn cmd_generate(args: &[String]) -> Result<String, CliError> {
    let [dataset, scale, out_path] = args else {
        return Err(CliError::usage("usage: gks generate <dataset> <scale> <out.xml>"));
    };
    let ds = match dataset.to_lowercase().as_str() {
        "sigmod" => Dataset::SigmodRecord,
        "mondial" => Dataset::Mondial,
        "plays" => Dataset::Plays,
        "treebank" => Dataset::TreeBank,
        "swissprot" => Dataset::SwissProt,
        "protein" => Dataset::ProteinSequence,
        "dblp" => Dataset::Dblp,
        "nasa" => Dataset::Nasa,
        "interpro" => Dataset::InterPro,
        other => return Err(CliError::usage(format!("unknown dataset {other:?}"))),
    };
    let scale: usize =
        scale.parse().map_err(|_| CliError::usage(format!("bad scale {scale:?}")))?;
    let xml = ds.generate(scale, 2016);
    let bytes = xml.len();
    std::fs::write(out_path, xml)
        .map_err(|e| CliError::runtime(format!("cannot write {out_path:?}: {e}")))?;
    Ok(format!("wrote {bytes} bytes of synthetic {} to {out_path}\n", ds.name()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gks-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&args(&["--help"])).unwrap().contains("USAGE"));
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("unknown command"));
        assert_eq!(run(&[]).unwrap_err().code, 2);
    }

    #[test]
    fn full_workflow_generate_index_search_suggest_info() {
        let dir = tmpdir();
        let xml = dir.join("dblp.xml");
        let ix = dir.join("dblp.gksix");
        let xml_s = xml.to_str().unwrap();
        let ix_s = ix.to_str().unwrap();

        let out = run(&args(&["generate", "dblp", "200", xml_s])).unwrap();
        assert!(out.contains("synthetic DBLP"), "{out}");

        let out = run(&args(&["index", ix_s, xml_s])).unwrap();
        assert!(out.contains("indexed 1 document(s)"), "{out}");

        let out = run(&args(&["search", ix_s, "-s", "1", "--di", "keyword", "search"])).unwrap();
        assert!(out.contains("hit(s):"), "{out}");
        assert!(out.contains("deeper analytical insights"), "{out}");

        let out = run(&args(&["search", ix_s, "--trace", "keyword", "search"])).unwrap();
        assert!(out.contains("spans:"), "{out}");
        assert!(out.contains("trace #"), "{out}");
        for label in ["index_open", "search", "parse", "postings", "sweep", "rank"] {
            assert!(out.contains(label), "span tree missing {label}:\n{out}");
        }

        let out = run(&args(&["search", ix_s, "--analytics", "xml"])).unwrap();
        assert!(out.contains("hits by entity type"), "{out}");

        let out = run(&args(&["search", ix_s, "--explain", "keyword", "search"])).unwrap();
        assert!(out.contains("cost (work, not time):"), "{out}");
        assert!(out.contains("postings scanned:"), "{out}");
        assert!(out.contains("total work:"), "{out}");

        let out =
            run(&args(&["search", ix_s, "--json", "--explain", "keyword", "search"])).unwrap();
        assert!(out.contains("\"cost\":{\"postings_scanned\":"), "{out}");
        assert!(out.contains("\"cost_keywords\":[{\"keyword\":"), "{out}");

        let out = run(&args(&["suggest", ix_s, "keyword", "zzznothing"])).unwrap();
        assert!(out.contains("unmatched keywords"), "{out}");

        let out = run(&args(&["info", ix_s])).unwrap();
        assert!(out.contains("documents: 1"), "{out}");

        // Acceptance bar: a freshly built synthetic-DBLP index is healthy.
        let out = run(&args(&["doctor", ix_s])).unwrap();
        assert!(out.contains("0 violation(s)"), "{out}");

        let out = run(&args(&["census", "--schema", xml_s])).unwrap();
        assert!(out.contains("instance-level census"), "{out}");
        assert!(out.contains("schema-level census"), "{out}");
        assert!(out.contains("/dblp/"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_and_repl_over_a_real_index() {
        let dir = tmpdir().join("schema-repl");
        std::fs::create_dir_all(&dir).unwrap();
        let xml = dir.join("m.xml");
        let ix = dir.join("m.gksix");
        run(&args(&["generate", "mondial", "10", xml.to_str().unwrap()])).unwrap();
        run(&args(&["index", ix.to_str().unwrap(), xml.to_str().unwrap()])).unwrap();

        let out = run(&args(&["schema", ix.to_str().unwrap()])).unwrap();
        assert!(out.contains("/mondial/country"), "{out}");
        assert!(out.contains("entity types:"), "{out}");

        // Drive the REPL through an in-memory session.
        let engine = Engine::from_index(GksIndex::load(ix.to_str().unwrap()).unwrap());
        let session = b":s 2\ncountry name\n:nope\n:q\n" as &[u8];
        let mut input = std::io::BufReader::new(session);
        let mut output = Vec::new();
        repl_loop(&engine, &mut input, &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("s = 2"), "{text}");
        assert!(text.contains("hit(s) (s = 2"), "{text}");
        assert!(text.contains("unknown command :nope"), "{text}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_output_matches_wire_format() {
        let dir = tmpdir().join("json-out");
        std::fs::create_dir_all(&dir).unwrap();
        let xml = dir.join("d.xml");
        let ix = dir.join("d.gksix");
        run(&args(&["generate", "dblp", "100", xml.to_str().unwrap()])).unwrap();
        run(&args(&["index", ix.to_str().unwrap(), xml.to_str().unwrap()])).unwrap();
        let ix_s = ix.to_str().unwrap();

        let out = run(&args(&["search", ix_s, "--json", "-s", "1", "keyword", "search"])).unwrap();
        assert!(out.starts_with("{\"query\":[\"keyword\",\"search\"],\"s\":"), "{out}");
        assert!(out.ends_with("}\n"), "newline-terminated JSON document");

        let out = run(&args(&["suggest", ix_s, "--json", "keyword"])).unwrap();
        assert!(out.starts_with("{\"query\":[\"keyword\"]"), "{out}");
        assert!(out.contains("\"sub_queries\""), "{out}");

        // --json is the machine format; the human-only flags conflict.
        let err = run(&args(&["search", ix_s, "--json", "--di", "x"])).unwrap_err();
        assert_eq!(err.code, 2);
        let err = run(&args(&["search", ix_s, "--json", "--trace", "x"])).unwrap_err();
        assert_eq!(err.code, 2);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_index_builds_manifest_and_shard_files() {
        let dir = tmpdir().join("sharded-index");
        std::fs::create_dir_all(&dir).unwrap();
        let xml = dir.join("d.xml");
        run(&args(&["generate", "dblp", "120", xml.to_str().unwrap()])).unwrap();
        // Two documents so a 2-way document split is possible.
        let xml2 = dir.join("d2.xml");
        std::fs::copy(&xml, &xml2).unwrap();
        let manifest_path = dir.join("corpus.shards");
        let out = run(&args(&[
            "index",
            "--shards",
            "2",
            manifest_path.to_str().unwrap(),
            xml.to_str().unwrap(),
            xml2.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote shard manifest (2 shard(s), 2 document(s))"), "{out}");
        let manifest = ShardManifest::load(&manifest_path).unwrap();
        assert_eq!(manifest.shards.len(), 2);
        assert_eq!(manifest.doc_count(), 2);
        // Every shard file exists, is a healthy index, and the serve-side
        // spec sniffing recognizes both spellings.
        let mut shard_paths = Vec::new();
        for entry in &manifest.shards {
            let path = dir.join(&entry.path);
            assert!(path.exists(), "missing shard file {}", path.display());
            run(&args(&["doctor", path.to_str().unwrap()])).unwrap();
            shard_paths.push(path.to_str().unwrap().to_string());
        }
        assert!(index_spec_for("m", manifest_path.to_str().unwrap()).is_ok(), "manifest sniffed");
        assert!(index_spec_for("m", &shard_paths.join(",")).is_ok(), "comma list accepted");

        // Shard flag validation.
        assert_eq!(run(&args(&["index", "--shards"])).unwrap_err().code, 2, "missing value");
        let err = run(&args(&["index", "--shards", "0", "/tmp/x", "/tmp/y.xml"])).unwrap_err();
        assert_eq!(err.code, 2, "zero shards");
        let err = run(&args(&["index", "--shards", "x", "/tmp/x", "/tmp/y.xml"])).unwrap_err();
        assert_eq!(err.code, 2, "non-numeric shards");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn directory_index_watch_and_compact_round_trip() {
        let dir = tmpdir().join("watch-compact");
        let corpus = dir.join("corpus");
        std::fs::create_dir_all(&corpus).unwrap();
        std::fs::write(corpus.join("a.xml"), "<r><x>alpha</x></r>").unwrap();
        std::fs::write(corpus.join("b.xml"), "<r><x>beta</x></r>").unwrap();
        let manifest = dir.join("corpus.shards");
        let manifest_s = manifest.to_str().unwrap().to_string();

        // A directory argument builds an updatable manifest.
        let out = run(&args(&["index", &manifest_s, corpus.to_str().unwrap()])).unwrap();
        assert!(out.contains("2 document(s)"), "{out}");
        assert!(out.contains("gks watch"), "{out}");

        // The fresh manifest and its shards pass the manifest-aware doctor.
        let out = run(&args(&["doctor", &manifest_s])).unwrap();
        assert!(out.contains("manifest is healthy"), "{out}");
        assert!(out.contains("shard 0: healthy"), "{out}");

        // A clean poll commits nothing.
        let out = run(&args(&["watch", &manifest_s, "--once"])).unwrap();
        assert!(out.contains("nothing to commit"), "{out}");

        // Mutate the corpus; one watch tick commits a delta.
        std::fs::write(corpus.join("c.xml"), "<r><x>gamma</x></r>").unwrap();
        let out = run(&args(&["watch", &manifest_s, "--once"])).unwrap();
        assert!(out.contains("+1 added"), "{out}");
        let loaded = ShardManifest::load(&manifest).unwrap();
        assert_eq!(loaded.delta_shard_count(), 1);

        // Searching via a serve-side spec sees the delta-committed doc.
        assert!(index_spec_for("m", &manifest_s).is_ok());

        // Compact folds the backlog; a second compact is a no-op.
        let out = run(&args(&["compact", &manifest_s])).unwrap();
        assert!(out.contains("compacted"), "{out}");
        let out = run(&args(&["compact", &manifest_s])).unwrap();
        assert!(out.contains("nothing to compact"), "{out}");
        let loaded = ShardManifest::load(&manifest).unwrap();
        assert_eq!(loaded.delta_shard_count(), 0);
        assert_eq!(loaded.doc_count(), 3);

        // A --once tick with a threshold of 1 commits and compacts in one go.
        std::fs::write(corpus.join("d.xml"), "<r><x>delta</x></r>").unwrap();
        let out =
            run(&args(&["watch", &manifest_s, "--once", "--compact-threshold", "1"])).unwrap();
        assert!(out.contains("+1 added"), "{out}");
        assert!(out.contains("compacted to epoch"), "{out}");

        // Doctor still passes after the full update cycle.
        let out = run(&args(&["doctor", &manifest_s])).unwrap();
        assert!(out.contains("manifest is healthy"), "{out}");

        // Watch flag validation.
        assert_eq!(run(&args(&["watch"])).unwrap_err().code, 2, "manifest required");
        assert_eq!(
            run(&args(&["watch", &manifest_s, "--interval-ms", "0"])).unwrap_err().code,
            2,
            "zero interval"
        );
        assert_eq!(
            run(&args(&["watch", &manifest_s, "--bogus"])).unwrap_err().code,
            2,
            "unknown watch flag"
        );
        assert_eq!(
            run(&args(&["watch", "/no/such.shards", "--once"])).unwrap_err().code,
            1,
            "missing manifest is a runtime error"
        );
        assert_eq!(run(&args(&["compact"])).unwrap_err().code, 2, "compact wants one path");
        assert_eq!(
            run(&args(&["compact", "/no/such.shards"])).unwrap_err().code,
            1,
            "missing manifest is a runtime error"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watch_rejects_manifest_without_corpus_dir() {
        // A file-list manifest (classic `index --shards N` over .xml files)
        // records no corpus directory, so the update path refuses it.
        let dir = tmpdir().join("watch-no-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let xml = dir.join("d.xml");
        run(&args(&["generate", "dblp", "60", xml.to_str().unwrap()])).unwrap();
        let xml2 = dir.join("d2.xml");
        std::fs::copy(&xml, &xml2).unwrap();
        let manifest = dir.join("legacy.shards");
        run(&args(&[
            "index",
            "--shards",
            "2",
            manifest.to_str().unwrap(),
            xml.to_str().unwrap(),
            xml2.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run(&args(&["watch", manifest.to_str().unwrap(), "--once"])).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("no corpus directory"), "{}", err.message);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_loadgen_flag_validation() {
        assert_eq!(run(&args(&["serve"])).unwrap_err().code, 2, "no index at all");
        let err = run(&args(&["serve", "/tmp/x.gksix", "--bogus"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("unknown serve flag"));
        let err = run(&args(&["serve", "/tmp/x.gksix", "--workers"])).unwrap_err();
        assert_eq!(err.code, 2, "missing flag value");
        let err = run(&args(&["serve", "/tmp/x.gksix", "--deadline-ms", "soon"])).unwrap_err();
        assert_eq!(err.code, 2, "non-numeric flag value");
        let err = run(&args(&["serve", "/tmp/x.gksix", "--slow-ms", "soon"])).unwrap_err();
        assert_eq!(err.code, 2, "non-numeric slow threshold");
        let err = run(&args(&["serve", "/tmp/x.gksix", "--query-log"])).unwrap_err();
        assert_eq!(err.code, 2, "missing log path");
        let err = run(&args(&["serve", "/tmp/x.gksix", "--index", "noequals"])).unwrap_err();
        assert_eq!(err.code, 2, "--index wants NAME=PATH");
        let err = run(&args(&["serve", "/tmp/x.gksix", "--trace-sample", "0"])).unwrap_err();
        assert_eq!(err.code, 2, "sample rate must be >= 1");
        let err = run(&args(&["serve", "/tmp/x.gksix", "--trace-sample", "1/x"])).unwrap_err();
        assert_eq!(err.code, 2, "non-numeric 1/N sample rate");
        let err = run(&args(&["serve", "/tmp/x.gksix", "--watch-interval-ms", "0"])).unwrap_err();
        assert_eq!(err.code, 2, "zero watch interval");
        let err = run(&args(&["serve", "/tmp/x.gksix", "--compact-threshold"])).unwrap_err();
        assert_eq!(err.code, 2, "missing compact threshold");
        let err =
            run(&args(&["serve", "/tmp/x.gksix", "--compact-threshold", "soon"])).unwrap_err();
        assert_eq!(err.code, 2, "non-numeric compact threshold");
        // A catalog made only of --index flags (no positional) is accepted
        // at parse time; a missing file is then a runtime (load) error.
        let err = run(&args(&["serve", "--index", "a=/no/such.gksix"])).unwrap_err();
        assert_eq!(err.code, 1, "parse passed, load failed");
        // Same for a comma-separated shard list: spec parses, load fails.
        let err = run(&args(&["serve", "--index", "a=/no/1.gksix,/no/2.gksix"])).unwrap_err();
        assert_eq!(err.code, 1, "shard list parsed, load failed");

        assert_eq!(parse_trace_sample("1"), Some(1));
        assert_eq!(parse_trace_sample("16"), Some(16));
        assert_eq!(parse_trace_sample("1/8"), Some(8));
        assert_eq!(parse_trace_sample("1/0"), None);
        assert_eq!(parse_trace_sample("0"), None);
        assert_eq!(parse_trace_sample("2/3"), None);

        assert_eq!(run(&args(&["loadgen"])).unwrap_err().code, 2);
        let err = run(&args(&["loadgen", "not-an-addr", "/tmp/w.txt"])).unwrap_err();
        assert_eq!(err.code, 2);
        let err = run(&args(&["loadgen", "127.0.0.1:1", "/no/such/workload.txt"])).unwrap_err();
        assert_eq!(err.code, 1, "unreadable workload is a runtime error");
        // Open-loop pacing needs both halves of the flag pair and a
        // positive rate; these all fail before touching the network.
        let err = run(&args(&["loadgen", "127.0.0.1:1", "/tmp/w.txt", "--open-loop"])).unwrap_err();
        assert_eq!(err.code, 2, "--open-loop without --rate");
        let err =
            run(&args(&["loadgen", "127.0.0.1:1", "/tmp/w.txt", "--rate", "50"])).unwrap_err();
        assert_eq!(err.code, 2, "--rate without --open-loop");
        let err =
            run(&args(&["loadgen", "127.0.0.1:1", "/tmp/w.txt", "--open-loop", "--rate", "0"]))
                .unwrap_err();
        assert_eq!(err.code, 2, "zero rate");
        let err = run(&args(&[
            "loadgen",
            "127.0.0.1:1",
            "/tmp/w.txt",
            "--open-loop",
            "--rate",
            "fast",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 2, "non-numeric rate");
        let err =
            run(&args(&["loadgen", "127.0.0.1:1", "/tmp/w.txt", "--index", "a=0"])).unwrap_err();
        assert_eq!(err.code, 2, "zero traffic weight");

        // The usage text must list every subcommand (satellite: docs drift).
        for sub in [
            "index", "search", "suggest", "census", "schema", "info", "doctor", "watch", "compact",
            "generate", "repl", "serve", "loadgen",
        ] {
            assert!(USAGE.contains(&format!("gks {sub} ")), "USAGE missing {sub}");
        }
        for flag in [
            "--trace",
            "--query-log",
            "--slow-log",
            "--slow-ms",
            "--trace-ring",
            "--trace-sample",
            "--no-trace",
            "--open-loop",
            "--rate",
            "--index",
            "--default-index",
            "--shards",
            "--cache-admission",
            "--watch",
            "--watch-interval-ms",
            "--compact-threshold",
            "--interval-ms",
            "--once",
            "--max-connections",
            "--idle-timeout-ms",
            "--shard-workers",
            "--keep-alive",
            "--connections",
            "--slow-clients",
        ] {
            assert!(USAGE.contains(flag), "USAGE missing {flag}");
        }
        assert!(USAGE.contains("EXIT CODES"));
    }

    #[test]
    fn missing_files_produce_runtime_errors() {
        let err = run(&args(&["info", "/no/such/file.gksix"])).unwrap_err();
        assert_eq!(err.code, 1);
        let err = run(&args(&["index", "/tmp/x.gksix", "/no/such.xml"])).unwrap_err();
        assert_eq!(err.code, 1);
    }

    #[test]
    fn bad_options_produce_usage_errors() {
        assert_eq!(run(&args(&["search"])).unwrap_err().code, 2);
        assert_eq!(run(&args(&["generate", "bogus", "5", "/tmp/x"])).unwrap_err().code, 2);
        assert_eq!(run(&args(&["generate", "dblp", "NaN", "/tmp/x"])).unwrap_err().code, 2);
        assert_eq!(run(&args(&["census"])).unwrap_err().code, 2);
    }
}
