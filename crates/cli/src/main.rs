//! The `gks` binary. All logic lives in the library so it can be tested;
//! see [`gks_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gks_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("{}", e.message);
            std::process::exit(e.code);
        }
    }
}
