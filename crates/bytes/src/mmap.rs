//! Read-only memory mapping for zero-copy index opens.
//!
//! This module is a deliberate extension over the real `bytes` crate: the
//! workspace vendors its `bytes` subset (no crates.io in the build
//! container), and the format-v3 index tier needs `mmap(2)` without pulling
//! in `libc` or `memmap2`. The pattern matches the reactor's `poll(2)`
//! wrapper: a minimal `extern "C"` declaration of the libc symbol on unix,
//! and a read-the-whole-file fallback behind `cfg(not(unix))` so the crate
//! still builds (without the zero-copy win) elsewhere.
//!
//! Mappings are always `PROT_READ` + `MAP_PRIVATE`: the index open path
//! never writes through the map, so the region can be shared freely across
//! threads (`Send + Sync`).

use std::fs::File;
use std::io;
use std::path::Path;

/// A read-only view of a file: a real `mmap(2)` region on unix, a heap copy
/// of the file contents otherwise (and for empty files, which `mmap` rejects
/// with `EINVAL`).
pub struct Mmap {
    inner: Inner,
}

enum Inner {
    #[cfg(unix)]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Heap(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never mutated or unmapped
// while borrowed (`munmap` only runs in `Drop`, which requires exclusive
// ownership), so sharing the region across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl Mmap {
    /// Maps `path` read-only. Falls back to reading the file into memory on
    /// non-unix targets and for zero-length files.
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap { inner: Inner::Heap(Vec::new()) });
        }
        Mmap::map_file(&file, len)
    }

    #[cfg(unix)]
    fn map_file(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: fd is a valid open file descriptor for the duration of the
        // call; addr=null lets the kernel choose the placement; len > 0 was
        // checked by the caller. The resulting region is only ever read.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { inner: Inner::Mapped { ptr: ptr as *const u8, len } })
    }

    #[cfg(not(unix))]
    fn map_file(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut file = file;
        file.read_to_end(&mut buf)?;
        Ok(Mmap { inner: Inner::Heap(buf) })
    }

    /// The mapped (or copied) file contents.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            // SAFETY: ptr/len come from a successful mmap that lives until
            // Drop; the region is never written through or remapped.
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Heap(v) => v,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { len, .. } => *len,
            Inner::Heap(v) => v.len(),
        }
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this view is a real kernel mapping (as opposed to the heap
    /// fallback) — feeds the `gks_index_bytes_mapped` metric.
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
            Inner::Heap(_) => false,
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => {
                // SAFETY: exactly the region returned by mmap, unmapped once.
                unsafe {
                    sys::munmap(*ptr as *mut std::ffi::c_void, *len);
                }
            }
            Inner::Heap(_) => {}
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mmap({} bytes, mapped={})", self.len(), self.is_mapped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join(format!("gks-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        std::fs::write(&path, b"hello mapping").unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.as_slice(), b"hello mapping");
        assert_eq!(map.len(), 13);
        #[cfg(unix)]
        assert!(map.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_uses_heap_fallback() {
        let dir = std::env::temp_dir().join(format!("gks-mmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(Mmap::open(Path::new("/nonexistent/gks/file.bin")).is_err());
    }

    #[test]
    fn shared_across_threads() {
        let dir = std::env::temp_dir().join(format!("gks-mmap-thr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("thr.bin");
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let map = std::sync::Arc::new(Mmap::open(&path).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&map);
                std::thread::spawn(move || m.as_slice().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * 4096);
        }
        std::fs::remove_file(&path).ok();
    }
}
