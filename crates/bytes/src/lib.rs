//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! subset of `bytes` that the Dewey codec (`gks-dewey::codec`) and index
//! persistence (`gks-index::persist`) actually use: the [`Buf`] / [`BufMut`]
//! traits, a cheaply-cloneable immutable [`Bytes`], and a growable
//! [`BytesMut`]. Multi-byte integers use big-endian order, matching the real
//! crate, so on-disk artifacts stay compatible if the real `bytes` is ever
//! swapped back in.
//!
//! One deliberate extension beyond the real crate's API: [`mmap::Mmap`], a
//! std-only read-only memory map used by the format-v3 zero-copy index open
//! (see that module's docs for why it lives here).

use std::sync::Arc;

pub mod mmap;

pub use mmap::Mmap;

/// Read-side cursor over a contiguous byte region (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next byte.
    ///
    /// # Panics
    /// Panics if the buffer is empty, matching the real crate.
    fn get_u8(&mut self) -> u8;

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Borrows the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes four bytes as a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Consumes eight bytes as a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Fills `dst` from the buffer, consuming `dst.len()` bytes.
    ///
    /// # Panics
    /// Panics if the buffer holds fewer than `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice out of bounds: {} > {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consumes `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }
}

/// Write-side sink for bytes (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u32` in big-endian order.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a `u64` in big-endian order.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable, cheaply-cloneable byte buffer that consumes from the front as
/// it is read (subset of `bytes::Bytes`).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether all bytes have been consumed (or the buffer was empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new buffer over the given sub-range of the unconsumed bytes,
    /// sharing the underlying allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo }.truncated_to(hi - lo)
    }

    fn truncated_to(self, len: usize) -> Bytes {
        if len == self.len() {
            self
        } else {
            Bytes::from(self.as_slice()[..len].to_vec())
        }
    }

    /// Copies the unconsumed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Borrows the unconsumed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into(), start: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.start < self.data.len(), "get_u8 on empty Bytes");
        let b = self.data[self.start];
        self.start += 1;
        b
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance out of bounds");
        self.start += cnt;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("get_u8 on empty slice");
        *self = rest;
        *first
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Discards the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_ints() {
        let mut out = BytesMut::new();
        out.put_u8(7);
        out.put_u32(0xdead_beef);
        out.put_u64(42);
        out.put_slice(b"xyz");
        let mut b = out.freeze();
        assert_eq!(b.len(), 1 + 4 + 8 + 3);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xdead_beef);
        assert_eq!(b.get_u64(), 42);
        let mut rest = [0u8; 3];
        b.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_buf_consumes() {
        let data = [1u8, 2, 3];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.remaining(), 2);
        s.advance(1);
        assert_eq!(s.chunk(), &[3]);
    }
}
