//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p gks-bench --bin experiments -- all
//! cargo run --release -p gks-bench --bin experiments -- table7 table8
//! cargo run --release -p gks-bench --bin experiments -- --list
//! ```
//!
//! Before measuring, the driver preflights `cargo xtask lint` (pass
//! `--no-preflight` to skip), and every benchmark index is validated with the
//! index doctor as it is built.

use std::process::ExitCode;

use gks_bench::experiments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments [--list] <id>... | all");
        eprintln!("available: {}", experiments::ALL.join(" "));
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).filter(|a| !a.starts_with("--")).collect()
    };
    // Preflight: refuse to publish numbers from a tree that fails its own
    // audit. Skipped (with a note) when cargo is unavailable, e.g. when the
    // compiled binary is run outside the workspace. Every benchmark index is
    // additionally doctor-validated at build time (see workloads::build_engine).
    if !args.iter().any(|a| a == "--no-preflight") {
        // Anchor to the workspace root so the alias in .cargo/config.toml
        // resolves regardless of the invoking directory.
        let workspace = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        if workspace.join("Cargo.toml").exists() {
            match std::process::Command::new("cargo")
                .args(["xtask", "lint"])
                .current_dir(&workspace)
                .status()
            {
                Ok(status) if !status.success() => {
                    eprintln!("preflight failed: `cargo xtask lint` reported violations");
                    eprintln!("(run with --no-preflight to measure anyway)");
                    return ExitCode::from(2);
                }
                Ok(_) => {}
                Err(e) => eprintln!("preflight skipped: cannot run `cargo xtask lint`: {e}"),
            }
        } else {
            eprintln!("preflight skipped: workspace sources not present");
        }
    }
    for id in ids {
        match experiments::run(id) {
            Some(output) => println!("{output}"),
            None => {
                eprintln!("unknown experiment {id:?}; available: {}", experiments::ALL.join(" "));
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}
