//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p gks-bench --bin experiments -- all
//! cargo run --release -p gks-bench --bin experiments -- table7 table8
//! cargo run --release -p gks-bench --bin experiments -- --list
//! ```

use gks_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments [--list] <id>... | all");
        eprintln!("available: {}", experiments::ALL.join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match experiments::run(id) {
            Some(output) => println!("{output}"),
            None => {
                eprintln!("unknown experiment {id:?}; available: {}", experiments::ALL.join(" "));
                std::process::exit(2);
            }
        }
    }
}
