//! Minimal aligned-column table printer for experiment output.

/// Builds a text table with a header row and aligned columns.
#[derive(Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Convenience for `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row_str(&["x", "1"]);
        t.row_str(&["longer-name", "22"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("x"));
        // Columns align: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][col..col + 2], "22");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row_str(&["only"]);
        assert!(t.render().contains("only"));
    }
}
