//! Experiment harness for the GKS paper's evaluation (§7).
//!
//! Every table and figure of the paper has a corresponding experiment module
//! that regenerates it over the synthetic corpora (see DESIGN.md §4 for the
//! per-experiment index):
//!
//! | paper artifact | module |
//! |---|---|
//! | Table 1 (+Example 5)        | [`experiments::table1`] |
//! | Table 4 (index size/time)   | [`experiments::table4`] |
//! | Table 5 (node census)       | [`experiments::table5`] |
//! | Figure 8 (RT vs \|SL\|)     | [`experiments::fig8`] |
//! | Figure 9 (RT vs n)          | [`experiments::fig9`] |
//! | Figure 10 (RT vs data size) | [`experiments::fig10`] |
//! | Table 7 (GKS vs SLCA)       | [`experiments::table7`] |
//! | Table 8 (DI)                | [`experiments::table8`] |
//! | §7.5 (crowd feedback)       | [`experiments::feedback`] |
//! | §7.6 (hybrid queries)       | [`experiments::hybrid`] |
//! | Lemma 3 (naive blow-up)     | [`experiments::lemma3`] |
//!
//! Beyond the paper: [`experiments::pipeline`] (per-stage breakdown),
//! [`experiments::ablation`] (ranking models incl. the §3 XRank/TF-IDF
//! baselines), [`experiments::quality`] (precision/recall vs generator
//! ground truth), [`experiments::analyzer`] (stemming/stop-word ablation),
//! [`experiments::di_quality`] (DI vs true co-author ranking).
//!
//! Run them with `cargo run --release -p gks-bench --bin experiments -- all`.

// Not an engine library crate: unwrap/expect on deterministic, known-good
// data is acceptable here. The hard panic-free rule is scoped to the
// engine crates and enforced by `cargo xtask lint` (see docs/ANALYSIS.md).
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod assessor;
pub mod experiments;
pub mod rankscore;
pub mod table;
pub mod workloads;

use std::time::Instant;

use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::{Response, SearchOptions};

/// Runs a search `reps` times and returns (median wall-clock µs, response).
/// The response's own `elapsed_micros` covers a single run; the median over
/// repetitions is what the RT experiments report.
pub fn timed_search(
    engine: &Engine,
    query: &Query,
    options: SearchOptions,
    reps: usize,
) -> (u64, Response) {
    let mut times: Vec<u64> = Vec::with_capacity(reps.max(1));
    let mut response = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = engine.search(query, options).expect("search");
        times.push(start.elapsed().as_micros() as u64);
        response = Some(r);
    }
    times.sort_unstable();
    (times[times.len() / 2], response.expect("at least one rep"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_index::{Corpus, IndexOptions};

    #[test]
    fn timed_search_returns_median_and_response() {
        let corpus = Corpus::from_named_strs([("t", "<r><a>xray</a></r>")]).unwrap();
        let e = Engine::build(&corpus, IndexOptions::default()).unwrap();
        let q = Query::parse("xray").unwrap();
        let (us, resp) = timed_search(&e, &q, SearchOptions::with_s(1), 5);
        assert!(us < 1_000_000);
        assert_eq!(resp.hits().len(), 1);
    }
}
