//! Corpora and query workloads analogous to the paper's Table 6.
//!
//! The paper's QS/QD/QM/QI queries are concrete author names and geographic
//! terms from the real datasets; here they are rebuilt from the synthetic
//! generators' manifests with the same *shapes*: |Q| ∈ {2,4,6,8}, mixing
//! keywords that co-occur in one record, keywords split across records, and
//! keywords that are absent — the situations Table 7 contrasts.

use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_datagen::{bio, dblp, mondial, nasa, sigmod};
use gks_index::{Corpus, IndexOptions};

/// One named query of a workload.
#[derive(Debug)]
pub struct NamedQuery {
    /// Paper-style id, e.g. `QS2`.
    pub id: String,
    /// The parsed query.
    pub query: Query,
}

/// A dataset with its engine and query set.
#[derive(Debug)]
pub struct Workload {
    /// Dataset display name.
    pub name: &'static str,
    /// Engine over the synthetic corpus.
    pub engine: Engine,
    /// Table-6-analogous queries.
    pub queries: Vec<NamedQuery>,
}

fn build_engine(name: &str, xml: String) -> Engine {
    let corpus = Corpus::from_named_strs([(name, xml)]).expect("corpus");
    let engine = Engine::build(&corpus, IndexOptions::default()).expect("index");
    // Every benchmark index is doctor-validated before experiments run: a
    // structurally broken index (unsorted postings, orphan Dewey ids,
    // inconsistent census) would silently skew all downstream measurements.
    let violations = engine.index().doctor();
    assert!(
        violations.is_empty(),
        "{name}: benchmark index failed its audit: {violations:?}"
    );
    engine
}

fn nq(id: &str, keywords: Vec<String>) -> NamedQuery {
    NamedQuery { id: id.to_string(), query: Query::from_keywords(keywords).expect("query") }
}

/// SIGMOD Record workload: QS1–QS4 (|Q| = 2, 4, 6, 8 author names).
pub fn sigmod_workload(scale: usize, seed: u64) -> Workload {
    let out =
        sigmod::generate(&sigmod::Config { issues: scale.max(4), ..Default::default() }, seed);
    let mut freq: std::collections::HashMap<&str, usize> = Default::default();
    for authors in &out.article_authors {
        for a in authors {
            *freq.entry(a.as_str()).or_default() += 1;
        }
    }
    // Prefer articles whose authors also publish elsewhere, so s=1 responses
    // are wider than the single co-authored article (as in the paper, where
    // QS1 returns 8 nodes).
    let mut multi: Vec<&Vec<String>> =
        out.article_authors.iter().filter(|a| a.len() >= 2).collect();
    multi.sort_by_key(|authors| {
        std::cmp::Reverse(authors.iter().map(|a| freq[a.as_str()]).sum::<usize>())
    });
    assert!(multi.len() >= 4, "need multi-author articles");
    let queries = vec![
        // QS1: two co-authors of one article.
        nq("QS1", multi[0][..2].to_vec()),
        // QS2: two co-author pairs from different articles.
        nq("QS2", [&multi[0][..2], &multi[1][..2]].concat()),
        // QS3: six authors over three articles.
        nq("QS3", [&multi[0][..2], &multi[1][..2], &multi[2][..2]].concat()),
        // QS4: eight authors, including one full author list so one article
        // matches everything it can.
        nq("QS4", {
            let mut v = multi[3].clone();
            let mut i = 0;
            while v.len() < 8 {
                let a = &multi[i % multi.len()][i / multi.len() % 2];
                if !v.contains(a) {
                    v.push(a.clone());
                }
                i += 1;
            }
            v.truncate(8);
            v
        }),
    ];
    Workload { name: "SIGMOD Records", engine: build_engine("sigmod", out.xml), queries }
}

/// DBLP workload: QD1–QD4.
pub fn dblp_workload(scale: usize, seed: u64) -> Workload {
    let out =
        dblp::generate(&dblp::Config { articles: scale.max(200), ..Default::default() }, seed);
    let c0 = &out.clusters[0];
    let c1 = &out.clusters[1];
    let c2 = &out.clusters[2];
    let queries = vec![
        // QD1: a co-publishing pair.
        nq("QD1", vec![c0[0].clone(), c0[1].clone()]),
        // QD2: the Example-2 shape — three cluster members + one outsider.
        nq("QD2", vec![c0[0].clone(), c0[1].clone(), c0[2].clone(), c1[0].clone()]),
        // QD3: six authors from two clusters.
        nq(
            "QD3",
            vec![
                c0[0].clone(),
                c0[1].clone(),
                c1[0].clone(),
                c1[1].clone(),
                c2[0].clone(),
                c2[1].clone(),
            ],
        ),
        // QD4: eight authors across three clusters.
        nq(
            "QD4",
            vec![
                c0[0].clone(),
                c0[1].clone(),
                c0[2].clone(),
                c1[0].clone(),
                c1[1].clone(),
                c1[2].clone(),
                c2[0].clone(),
                c2[1].clone(),
            ],
        ),
    ];
    Workload { name: "DBLP", engine: build_engine("dblp", out.xml), queries }
}

/// Mondial workload: QM1–QM4 (tag names + text keywords).
pub fn mondial_workload(scale: usize, seed: u64) -> Workload {
    let out = mondial::generate(
        &mondial::Config { countries: scale.max(10), ..Default::default() },
        seed,
    );
    let (_, religion) = out.religions[0].clone();
    let country_name = out.countries[1].clone();
    let queries = vec![
        // QM1: {country, Muslim}-shaped.
        nq("QM1", vec!["country".into(), religion.clone()]),
        // QM2: {Laos, country, name}-shaped.
        nq("QM2", vec![country_name, "country".into(), "name".into()]),
        // QM3: six mixed demographic keywords (some likely co-occur nowhere).
        nq(
            "QM3",
            vec![
                "Polish".into(),
                "Spanish".into(),
                "German".into(),
                out.countries[2].clone(),
                out.cities[0].clone(),
                "Catholic".into(),
            ],
        ),
        // QM4: eight religions/languages.
        nq(
            "QM4",
            vec![
                "Chinese".into(),
                "Thai".into(),
                "Muslim".into(),
                "Buddhism".into(),
                "Christianity".into(),
                "Hinduism".into(),
                "Orthodox".into(),
                "Catholic".into(),
            ],
        ),
    ];
    Workload { name: "Mondial", engine: build_engine("mondial", out.xml), queries }
}

/// InterPro workload: QI1–QI2.
pub fn interpro_workload(scale: usize, seed: u64) -> Workload {
    let out = bio::generate_interpro(&bio::InterProConfig { entries: scale.max(20) }, seed);
    let stem = out.names[0].split(' ').next().expect("name stem").to_string();
    // QI2 uses a year that really co-occurs with a 'Science' publication, as
    // the paper's {Publication 2002 Science} did on the real data.
    let science_year = out.science_years.first().cloned().unwrap_or_else(|| "2005".to_string());
    let queries = vec![
        // QI1: {Kringle, Domain}-shaped — a family stem plus the word that
        // names the entity type.
        nq("QI1", vec![stem, "domain".into()]),
        // QI2: {Publication, <year>, Science}-shaped.
        nq("QI2", vec!["publication".into(), science_year, "Science".into()]),
    ];
    Workload { name: "InterPro", engine: build_engine("interpro", out.xml), queries }
}

/// All four Table-6 workloads.
pub fn table6_workloads(seed: u64) -> Vec<Workload> {
    vec![
        sigmod_workload(30, seed),
        dblp_workload(1500, seed + 1),
        mondial_workload(25, seed + 2),
        interpro_workload(60, seed + 3),
    ]
}

/// The NASA-like engine used by the response-time experiments (§7.1.2),
/// returning the engine plus author surnames to build queries from.
pub fn nasa_engine(scale: usize, seed: u64) -> (Engine, Vec<String>) {
    let out = nasa::generate(&nasa::Config { datasets: scale }, seed);
    let engine = build_engine("nasa", out.xml);
    (engine, out.last_names)
}

/// The SwissProt-like engine for §7.1.2/§7.1.3, plus reference author
/// *surnames*. Single-term keywords keep |SL| equal to the summed posting
/// volume, as in the paper's response-time model (a phrase keyword would
/// pre-filter its postings by intersection and hide the fetch cost).
pub fn swissprot_corpus(scale: usize, seed: u64) -> (Corpus, Vec<String>) {
    let out = bio::generate_swissprot(&bio::SwissProtConfig { entries: scale }, seed);
    let corpus = Corpus::from_named_strs([("swissprot", out.xml)]).expect("corpus");
    let surnames: Vec<String> = out
        .authors
        .iter()
        .filter_map(|full| full.rsplit(' ').next().map(str::to_string))
        .collect();
    (corpus, surnames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_core::search::SearchOptions;

    #[test]
    fn table6_workloads_have_expected_shapes() {
        let ws = table6_workloads(99);
        assert_eq!(ws.len(), 4);
        let sizes: Vec<Vec<usize>> =
            ws.iter().map(|w| w.queries.iter().map(|q| q.query.len()).collect()).collect();
        assert_eq!(sizes[0], vec![2, 4, 6, 8], "QS sizes");
        assert_eq!(sizes[1], vec![2, 4, 6, 8], "QD sizes");
        assert_eq!(sizes[2], vec![2, 3, 6, 8], "QM sizes");
        assert_eq!(sizes[3], vec![2, 3], "QI sizes");
    }

    #[test]
    fn workload_queries_return_hits_at_s1() {
        for w in table6_workloads(7) {
            for q in &w.queries {
                let r = w.engine.search(&q.query, SearchOptions::with_s(1)).unwrap();
                assert!(!r.hits().is_empty(), "{} {} returned nothing", w.name, q.id);
            }
        }
    }
}
