//! Figure 8: response time vs merged-list size |SL| with n = 8 keywords, on
//! the NASA-like and SwissProt-like corpora. §4.2's analysis says RT is
//! O(d·|SL|·log n), so for fixed d and n the plot should be linear in |SL|.

use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::SearchOptions;

use crate::table::TextTable;
use crate::timed_search;
use crate::workloads::{nasa_engine, swissprot_corpus};

/// Builds 8-keyword queries with increasing posting volume by repeating the
/// most frequent names more often.
fn queries_by_volume(names: &[String], count: usize) -> Vec<Query> {
    // Frequency-rank the names.
    let mut freq: std::collections::HashMap<&str, usize> = Default::default();
    for n in names {
        *freq.entry(n.as_str()).or_default() += 1;
    }
    let mut ranked: Vec<(&str, usize)> = freq.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

    // Query i mixes (8−i) of the most frequent names with i of the rarest:
    // query 0 maximizes |SL|, later queries shrink it.
    (0..count)
        .map(|i| {
            let frequent = 8usize.saturating_sub(i);
            let mut kws: Vec<String> =
                ranked[..frequent].iter().map(|(n, _)| n.to_string()).collect();
            for (n, _) in ranked.iter().rev() {
                if kws.len() == 8 {
                    break;
                }
                if !kws.iter().any(|k| k == n) {
                    kws.push(n.to_string());
                }
            }
            Query::from_keywords(kws).expect("query")
        })
        .collect()
}

fn run_on(label: &str, engine: &Engine, names: &[String], out: &mut String) {
    let avg_d = engine.index().stats().avg_keyword_depth();
    let mut rows: Vec<(usize, u64, usize)> = Vec::new();
    for q in queries_by_volume(names, 6) {
        let (us, resp) = timed_search(engine, &q, SearchOptions::with_s(1), 7);
        rows.push((resp.sl_len(), us, resp.hits().len()));
    }
    rows.sort_unstable();
    rows.dedup_by_key(|r| r.0);
    let mut t = TextTable::new(&["|SL|", "RT (µs)", "hits", "RT/|SL| (µs)"]);
    for (sl, us, hits) in &rows {
        t.row(&[
            sl.to_string(),
            us.to_string(),
            hits.to_string(),
            format!("{:.2}", *us as f64 / (*sl).max(1) as f64),
        ]);
    }
    out.push_str(&format!(
        "{label} (n = 8, s = 1, avg keyword depth {avg_d:.1}):\n{}\n",
        t.render()
    ));
}

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("== Figure 8: response time vs merged list size |SL| ==\n");
    let (nasa, nasa_names) = nasa_engine(4000, 2016);
    run_on("NASA-like", &nasa, &nasa_names, &mut out);
    let (corpus, sp_names) = swissprot_corpus(4000, 2017);
    let sp = Engine::build(&corpus, gks_index::IndexOptions::default()).expect("index");
    run_on("SwissProt-like", &sp, &sp_names, &mut out);
    out.push_str(
        "expected shape: RT grows roughly linearly with |SL| (constant RT/|SL|), per §4.2's \
         O(d·|SL|·log n) bound.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_queries_span_a_range_of_sl() {
        let (engine, names) = nasa_engine(800, 5);
        let qs = queries_by_volume(&names, 4);
        let sls: Vec<usize> = qs
            .iter()
            .map(|q| engine.search(q, SearchOptions::with_s(1)).unwrap().sl_len())
            .collect();
        let min = *sls.iter().min().unwrap();
        let max = *sls.iter().max().unwrap();
        assert!(max > min, "expected spread, got {sls:?}");
    }
}
