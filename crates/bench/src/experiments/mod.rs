//! One module per paper table/figure. Each `run()` returns the rendered
//! experiment output; the `experiments` binary prints them.

pub mod ablation;
pub mod analyzer;
pub mod connections;
pub mod di_quality;
pub mod feedback;
pub mod fig10;
pub mod fig8;
pub mod fig9;
pub mod hybrid;
pub mod index_tier;
pub mod lemma3;
pub mod pipeline;
pub mod quality;
pub mod serving;
pub mod table1;
pub mod table4;
pub mod table5;
pub mod table7;
pub mod table8;

/// All experiment ids in paper order.
pub const ALL: &[&str] = &[
    "table1",
    "table4",
    "fig8",
    "fig9",
    "fig10",
    "table5",
    "table7",
    "table8",
    "feedback",
    "hybrid",
    "lemma3",
    "pipeline",
    "ablation",
    "quality",
    "analyzer",
    "di_quality",
    "serving",
    "connections",
    "index-tier",
];

/// Runs one experiment by id.
pub fn run(id: &str) -> Option<String> {
    Some(match id {
        "table1" => table1::run(),
        "table4" => table4::run(),
        "table5" => table5::run(),
        "fig8" => fig8::run(),
        "fig9" => fig9::run(),
        "fig10" => fig10::run(),
        "table7" => table7::run(),
        "table8" => table8::run(),
        "feedback" => feedback::run(),
        "hybrid" => hybrid::run(),
        "lemma3" => lemma3::run(),
        "pipeline" => pipeline::run(),
        "ablation" => ablation::run(),
        "quality" => quality::run(),
        "analyzer" => analyzer::run(),
        "di_quality" => di_quality::run(),
        "serving" => serving::run(),
        "connections" => connections::run(),
        "index-tier" => index_tier::run(),
        _ => return None,
    })
}
