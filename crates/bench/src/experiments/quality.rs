//! Precision / recall against generator ground truth (beyond the paper's
//! Table 7, which reports only counts and rank scores — the paper *argues*
//! "high precision and recall" in §1.2; this experiment measures them).
//!
//! Ground truth for an author query over synthetic DBLP comes from the
//! generator manifest: the target records are exactly those containing at
//! least `s` of the queried authors. A GKS hit counts as relevant when it is
//! one of those records (or a node inside one). SLCA is scored the same way.

use gks_baselines::{query_posting_lists, slca::slca_ca_map};
use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::SearchOptions;
use gks_datagen::dblp;
use gks_dewey::{DeweyId, DocId};
use gks_index::{Corpus, IndexOptions};

use crate::table::TextTable;

/// Precision/recall/F1 of a node list against target record ordinals.
fn score(nodes: &[DeweyId], targets: &[usize]) -> (f64, f64, f64) {
    if nodes.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    // A node is relevant when its top-level record ordinal is a target
    // (records are the root's children: the first Dewey step).
    let relevant =
        |n: &DeweyId| n.steps().first().is_some_and(|&r| targets.contains(&(r as usize)));
    let tp = nodes.iter().filter(|n| relevant(n)).count();
    // Recall counts distinct covered targets.
    let covered = targets
        .iter()
        .filter(|&&t| nodes.iter().any(|n| n.steps().first() == Some(&(t as u32))))
        .count();
    let precision = tp as f64 / nodes.len() as f64;
    let recall = if targets.is_empty() {
        1.0
    } else {
        covered as f64 / targets.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

/// Runs the experiment.
pub fn run() -> String {
    let out = dblp::generate(&dblp::Config { articles: 1200, ..Default::default() }, 2016);
    let corpus = Corpus::from_named_strs([("dblp", out.xml.clone())]).expect("corpus");
    let engine = Engine::build(&corpus, IndexOptions::default()).expect("index");

    let mut t =
        TextTable::new(&["query", "s", "targets", "GKS P", "GKS R", "GKS F1", "SLCA P", "SLCA R"]);
    for (qi, cluster) in out.clusters.iter().take(4).enumerate() {
        let authors: Vec<String> = cluster.iter().take(3).cloned().collect();
        let query = Query::from_keywords(authors.clone()).expect("query");
        for s in [1usize, 2] {
            // Ground truth from the manifest.
            let targets: Vec<usize> = out
                .records
                .iter()
                .enumerate()
                .filter(|(_, r)| authors.iter().filter(|a| r.authors.contains(a)).count() >= s)
                .map(|(i, _)| i)
                .collect();
            let resp = engine.search(&query, SearchOptions::with_s(s)).expect("search");
            let gks_nodes: Vec<DeweyId> = resp.hits().iter().map(|h| h.node.clone()).collect();
            let (gp, gr, gf) = score(&gks_nodes, &targets);
            let slca = slca_ca_map(&query_posting_lists(engine.index(), &query));
            let slca_in_doc: Vec<DeweyId> =
                slca.into_iter().filter(|n| n.doc() == DocId(0)).collect();
            let (sp, sr, _) = score(&slca_in_doc, &targets);
            t.row(&[
                format!("Q{}", qi + 1),
                s.to_string(),
                targets.len().to_string(),
                format!("{gp:.2}"),
                format!("{gr:.2}"),
                format!("{gf:.2}"),
                format!("{sp:.2}"),
                format!("{sr:.2}"),
            ]);
        }
    }
    format!(
        "== Precision / recall vs generator ground truth (3-author DBLP queries) ==\n{}\n\
         expected shape: GKS recall ≈ 1.0 at both thresholds (every target record is \
         returned); SLCA recall collapses once no single record holds all keywords. GKS \
         precision stays high because hits are the records themselves, not ancestors.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gks_recall_is_perfect_on_manifest_targets() {
        let out = dblp::generate(&dblp::Config { articles: 400, ..Default::default() }, 3);
        let corpus = Corpus::from_named_strs([("dblp", out.xml.clone())]).unwrap();
        let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();
        let authors: Vec<String> = out.clusters[0].iter().take(3).cloned().collect();
        let query = Query::from_keywords(authors.clone()).unwrap();
        for s in [1usize, 2] {
            let targets: Vec<usize> = out
                .records
                .iter()
                .enumerate()
                .filter(|(_, r)| authors.iter().filter(|a| r.authors.contains(a)).count() >= s)
                .map(|(i, _)| i)
                .collect();
            let resp = engine.search(&query, SearchOptions::with_s(s)).unwrap();
            let nodes: Vec<DeweyId> = resp.hits().iter().map(|h| h.node.clone()).collect();
            let (_, recall, _) = score(&nodes, &targets);
            assert!(
                (recall - 1.0).abs() < 1e-9,
                "s={s}: recall {recall} over {} targets",
                targets.len()
            );
        }
    }

    #[test]
    fn score_arithmetic() {
        let d = |r: u32| DeweyId::new(DocId(0), vec![r, 0]);
        // 2 of 3 returned nodes relevant; 2 of 4 targets covered.
        let nodes = vec![d(0), d(1), d(9)];
        let (p, r, f1) = score(&nodes, &[0, 1, 2, 3]);
        assert!((p - 2.0 / 3.0).abs() < 1e-9);
        assert!((r - 0.5).abs() < 1e-9);
        assert!(f1 > 0.0 && f1 < 1.0);
        assert_eq!(score(&[], &[1]), (0.0, 0.0, 0.0));
    }
}
