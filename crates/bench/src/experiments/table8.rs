//! Table 8: the top DI discovered for each workload query at s=1 and
//! s=|Q|/2, plus the §7.4 QD1 refinement walk-through.

use gks_core::di::DiOptions;
use gks_core::query::Query;
use gks_core::search::{SearchOptions, Threshold};

use crate::table::TextTable;
use crate::workloads::table6_workloads;

/// Runs the experiment.
pub fn run() -> String {
    let di_opts = DiOptions { top_m: 2, ..Default::default() };
    let mut t = TextTable::new(&["Query", "DI, s=1", "DI, s=|Q|/2"]);
    let mut qd1_walkthrough = String::new();

    for w in table6_workloads(2016) {
        for q in &w.queries {
            let r1 = w.engine.search(&q.query, SearchOptions::with_s(1)).expect("search");
            let d1 = w.engine.discover_di(&r1, &di_opts);
            let rh = w
                .engine
                .search(&q.query, SearchOptions { s: Threshold::HalfQuery, ..Default::default() })
                .expect("search");
            let dh = w.engine.discover_di(&rh, &di_opts);
            let fmt = |ins: &[gks_core::Insight]| {
                if ins.is_empty() {
                    "NA".to_string()
                } else {
                    ins.iter().map(|i| i.display()).collect::<Vec<_>>().join(", ")
                }
            };
            t.row(&[q.id.clone(), fmt(&d1), fmt(&dh)]);

            // §7.4 walk-through on QD1: refine the pair query with the top
            // co-author insight and compare joint-article counts.
            if q.id == "QD1" {
                if let Some(co) =
                    d1.iter().find(|i| i.path.last().map(String::as_str) == Some("author"))
                {
                    let author0 = q.query.keywords()[0].raw().to_string();
                    let refined =
                        Query::from_keywords([author0.clone(), co.value.clone()]).expect("query");
                    let joint = w
                        .engine
                        .search(&refined, SearchOptions { s: Threshold::All, ..Default::default() })
                        .expect("search");
                    qd1_walkthrough = format!(
                        "QD1 refinement walk-through (§7.4): DI suggests co-author {:?}; \
                         refined query {{{author0:?}, {:?}}} finds {} joint article(s).\n",
                        co.value,
                        co.value,
                        joint.hits().len()
                    );
                }
            }
        }
    }
    format!("== Table 8: DI discovered per query ==\n{}\n{}", t.render(), qd1_walkthrough)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn di_produced_for_most_queries_and_excludes_query_terms() {
        let mut with_di = 0usize;
        let mut total = 0usize;
        for w in table6_workloads(8) {
            for q in &w.queries {
                let r1 = w.engine.search(&q.query, SearchOptions::with_s(1)).unwrap();
                let di = w.engine.discover_di(&r1, &DiOptions::default());
                total += 1;
                if !di.is_empty() {
                    with_di += 1;
                }
                for insight in &di {
                    for kw in q.query.keywords() {
                        assert_ne!(
                            insight.value.to_lowercase(),
                            kw.raw().to_lowercase(),
                            "{} {}: DI restates a query keyword",
                            w.name,
                            q.id
                        );
                    }
                }
            }
        }
        assert!(with_di * 10 >= total * 7, "DI for {with_di}/{total} queries");
    }

    #[test]
    fn di_paths_start_at_an_entity_label() {
        for w in table6_workloads(9) {
            for q in &w.queries {
                let r1 = w.engine.search(&q.query, SearchOptions::with_s(1)).unwrap();
                for i in w.engine.discover_di(&r1, &DiOptions::default()) {
                    assert!(i.path.len() >= 2, "{}: path {:?}", q.id, i.path);
                    assert!(i.weight > 0.0);
                    assert!(i.support >= 1);
                }
            }
        }
    }
}
