//! Table 5: distribution of XML elements over the four node categories, per
//! dataset, plus the paper's SIGMOD Record drill-down (§7.2).

use gks_datagen::Dataset;
use gks_index::{Corpus, GksIndex, IndexOptions, SchemaSummary};

use crate::table::TextTable;

/// Runs the experiment.
pub fn run() -> String {
    let mut t = TextTable::new(&["Data Set", "AN", "EN", "RN", "CN", "Total"]);
    let sets = [
        (Dataset::SigmodRecord, 60usize),
        (Dataset::Dblp, 8000),
        (Dataset::Mondial, 120),
        (Dataset::InterPro, 400),
        (Dataset::SwissProt, 600),
    ];
    let mut drill = String::new();
    for (ds, scale) in sets {
        let xml = ds.generate(scale, 2016);
        let corpus = Corpus::from_named_strs([(ds.name(), xml)]).expect("corpus");
        let index = GksIndex::build(&corpus, IndexOptions::default()).expect("index");
        let s = index.stats();
        t.row(&[
            ds.name().to_string(),
            s.census.attribute.to_string(),
            s.census.entity.to_string(),
            s.census.repeating.to_string(),
            s.census.connecting.to_string(),
            s.total_nodes.to_string(),
        ]);
        if ds == Dataset::SigmodRecord {
            // The paper's ground-truth comparison: <articles> and <authors>
            // are CN by schema; single-author <article>s land in CN too.
            let authors_cn = s.per_label.get("authors").map_or(0, |c| c.connecting);
            let articles_cn = s.per_label.get("articles").map_or(0, |c| c.connecting);
            let article = s.per_label.get("article").copied().unwrap_or_default();
            // The paper's future-work extension: schema-level categorization
            // re-counts irregular instances by their type's dominant
            // category.
            let summary = SchemaSummary::from_index(&index);
            let h = summary.harmonized_census();
            drill = format!(
                "SIGMOD Record drill-down (paper §7.2): <authors> CN = {authors_cn}, \
                 <articles> CN = {articles_cn};\n<article>: EN = {} (multi-author), \
                 CN = {} (single-author, \"marked CN due to presence of a single author\")\n\n\
                 schema-level categorization (the paper's §2.2 future work): \
                 AN={} EN={} RN={} CN={}\n(single-author articles move from CN to EN \
                 because the <article> *type* is dominantly an entity)\n",
                article.entity,
                article.connecting,
                h.attribute,
                h.entity,
                h.repeating,
                h.connecting
            );
        }
    }
    format!("== Table 5: node-category census ==\n{}\n{}", t.render(), drill)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmod_census_shape_matches_paper_discussion() {
        let xml = Dataset::SigmodRecord.generate(40, 5);
        let corpus = Corpus::from_named_strs([("s", xml)]).unwrap();
        let index = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let s = index.stats();
        // ANs dominate (titles, pages, volumes …), as in the paper.
        assert!(s.census.attribute > s.census.entity);
        // Articles split EN vs CN.
        let article = s.per_label["article"];
        assert!(article.entity > 0, "multi-author articles are EN");
        assert!(article.connecting > 0, "single-author articles are CN");
        // The containers are CN.
        assert_eq!(s.per_label["authors"].connecting, s.per_label["authors"].total());
        // Authors are repeating text nodes (multi-author lists) or ANs.
        let author = s.per_label["author"];
        assert!(author.repeating > 0);
        assert_eq!(author.entity, 0);
    }

    #[test]
    fn schema_harmonization_promotes_single_author_articles() {
        let xml = Dataset::SigmodRecord.generate(40, 5);
        let corpus = Corpus::from_named_strs([("s", xml)]).unwrap();
        let index = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let instance = index.stats().census;
        let harmonized = SchemaSummary::from_index(&index).harmonized_census();
        assert!(
            harmonized.entity > instance.entity,
            "schema view has more entities ({} vs {})",
            harmonized.entity,
            instance.entity
        );
        assert_eq!(harmonized.total(), instance.total(), "same node population");
    }

    #[test]
    fn census_totals_are_consistent() {
        for (ds, scale) in [(Dataset::Mondial, 20usize), (Dataset::SwissProt, 30)] {
            let xml = ds.generate(scale, 5);
            let corpus = Corpus::from_named_strs([("x", xml)]).unwrap();
            let index = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
            let s = index.stats();
            assert_eq!(s.census.total(), s.total_nodes);
            let per_label_total: u64 = s.per_label.values().map(|c| c.total()).sum();
            assert_eq!(per_label_total, s.total_nodes);
        }
    }
}
