//! Ablation: how much does the potential-flow ranking (§5) buy over simpler
//! orderings? DESIGN.md calls the ranking model out as the paper's key
//! design choice beyond candidate generation; this experiment scores three
//! orderings of the *same* hit sets with the paper's rank-score measure
//! (§7.3) plus a finer-grained measure (mean reciprocal rank of the best
//! hit), across the Table-6 workloads.
//!
//! * `potential-flow` — the paper's model (structure-weighted);
//! * `count-only` — order by number of matched keywords only (what a naive
//!   implementation would do);
//! * `tf-idf` — XSEarch-style summed idf of the matched terms (§3's IR
//!   family baseline);
//! * `xrank` — XRank-style decayed ElemRank of the best occurrence per
//!   keyword (§3's link-analysis family baseline);
//! * `document-order` — no ranking at all.

use gks_baselines::xrank::{rank_results, ElemRank, ElemRankParams};
use gks_baselines::{query_posting_lists, tfidf};
use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::{Hit, Response, SearchOptions};
use gks_dewey::DeweyId;

use crate::rankscore::rank_score_of_counts;
use crate::table::TextTable;
use crate::workloads::table6_workloads;

fn score(counts: &[u32]) -> f64 {
    rank_score_of_counts(counts)
}

/// Mean reciprocal rank of the first hit with the maximum keyword count.
fn mrr(counts: &[u32]) -> f64 {
    let Some(&max) = counts.iter().max() else {
        return 1.0;
    };
    match counts.iter().position(|&c| c == max) {
        Some(pos) => 1.0 / (pos + 1) as f64,
        None => 1.0,
    }
}

/// Reorders a response's hits under one ranking mode, returning the
/// keyword-count sequence the measures score.
fn reordered(engine: &Engine, query: &Query, response: &Response, mode: &str) -> Vec<u32> {
    let hits = response.hits();
    let mut order: Vec<usize> = (0..hits.len()).collect();
    let by_scores = |order: &mut Vec<usize>, scores: Vec<f64>, hits: &[Hit]| {
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| hits[a].node.cmp(&hits[b].node))
        });
    };
    match mode {
        // The engine already returns potential-flow order.
        "potential-flow" => {}
        "count-only" => order.sort_by(|&a, &b| {
            hits[b]
                .keyword_count
                .cmp(&hits[a].keyword_count)
                .then_with(|| hits[a].node.cmp(&hits[b].node))
        }),
        "tf-idf" => {
            let scores = tfidf::score_response(engine.index(), response);
            by_scores(&mut order, scores, hits);
        }
        "xrank" => {
            let er = ElemRank::compute(engine.index(), ElemRankParams::default());
            let lists = query_posting_lists(engine.index(), query);
            let nodes: Vec<DeweyId> = hits.iter().map(|h| h.node.clone()).collect();
            let scores = rank_results(&er, &nodes, &lists, 0.8);
            by_scores(&mut order, scores, hits);
        }
        "document-order" => order.sort_by(|&a, &b| hits[a].node.cmp(&hits[b].node)),
        other => panic!("unknown mode {other}"),
    }
    order.iter().map(|&i| hits[i].keyword_count).collect()
}

/// Runs the experiment.
pub fn run() -> String {
    const MODES: [&str; 5] = ["potential-flow", "count-only", "tf-idf", "xrank", "document-order"];
    let mut sums = [0.0f64; 5];
    let mut mrrs = [0.0f64; 5];
    let mut count = 0usize;
    let mut t = TextTable::new(&["Query", "flow", "count-only", "tf-idf", "xrank", "doc-order"]);
    for w in table6_workloads(2016) {
        for q in &w.queries {
            let r = w.engine.search(&q.query, SearchOptions::with_s(1)).expect("search");
            if r.hits().len() < 2 {
                continue;
            }
            count += 1;
            let mut cells = vec![q.id.clone()];
            for (i, mode) in MODES.iter().enumerate() {
                let counts = reordered(&w.engine, &q.query, &r, mode);
                let s = score(&counts);
                sums[i] += s;
                mrrs[i] += mrr(&counts);
                cells.push(format!("{s:.3}"));
            }
            t.row(&cells);
        }
    }
    let avg = |v: f64| v / count.max(1) as f64;
    format!(
        "== Ablation: ranking model (rank score per ordering) ==\n{}\n\
         means over {count} queries:\n\
         rank score  flow={:.3} count-only={:.3} tf-idf={:.3} xrank={:.3} doc-order={:.3}\n\
         MRR         flow={:.3} count-only={:.3} tf-idf={:.3} xrank={:.3} doc-order={:.3}\n\
         reading: the measure only sees keyword counts, so any count-monotone ranker \
         (count-only; tf-idf when keyword rarities are similar) scores 1. XRank's \
         occurrence-centric score is *not* count-monotone and degrades on several queries; \
         document order collapses. Potential flow trades a little count-purity for \
         structure — the tie-breaking Table 7's QS4 and §7.6 rely on.\n",
        t.render(),
        avg(sums[0]),
        avg(sums[1]),
        avg(sums[2]),
        avg(sums[3]),
        avg(sums[4]),
        avg(mrrs[0]),
        avg(mrrs[1]),
        avg(mrrs[2]),
        avg(mrrs[3]),
        avg(mrrs[4]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_ranking_never_loses_to_document_order_on_average() {
        let mut flow_sum = 0.0;
        let mut doc_sum = 0.0;
        for w in table6_workloads(3) {
            for q in &w.queries {
                let r = w.engine.search(&q.query, SearchOptions::with_s(1)).unwrap();
                if r.hits().len() < 2 {
                    continue;
                }
                flow_sum += score(&reordered(&w.engine, &q.query, &r, "potential-flow"));
                doc_sum += score(&reordered(&w.engine, &q.query, &r, "document-order"));
            }
        }
        assert!(flow_sum >= doc_sum, "flow {flow_sum} vs doc {doc_sum}");
    }

    #[test]
    fn mrr_is_one_when_best_is_first() {
        assert_eq!(mrr(&[3, 1, 1]), 1.0);
        assert_eq!(mrr(&[1, 3, 1]), 0.5);
        assert_eq!(mrr(&[]), 1.0);
    }
}
