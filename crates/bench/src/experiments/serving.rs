//! Serving-layer throughput: the paper's interactivity claim, measured
//! end-to-end. An in-process `gks-serve` instance (real sockets, worker
//! pool, result cache) is driven by the closed-loop load generator at
//! growing client counts over a Zipf-skewed workload — the regime the
//! refinement loop of §6 creates, where a few hot queries repeat. Reported:
//! sustained QPS, latency percentiles, the cache hit rate that makes the
//! repeats cheap, and the server-side per-phase p50s from the `gks-trace`
//! span histograms.
//!
//! Two observability sections follow the scaling table:
//!
//! * **tracing overhead** — the same fixed workload with the tracer
//!   disabled (control) and enabled; the acceptance bar is an enabled QPS
//!   within 2% of the control.
//! * **cost-ledger / explain overhead** — the same interleaved A/B with
//!   `explain=1` on the B leg (ledger counters are live on both sides);
//!   same ≤ 2% bar, plus the work-per-query summary the explain leg's
//!   `x-gks-cost` headers carry.
//! * **per-phase breakdown** — the Table-6-style DBLP queries run directly
//!   against the engine with tracing on, reporting where each query's time
//!   goes (parse / postings / sweep / rank / di). This is the measured
//!   table DESIGN.md's observability section and docs/ANALYSIS.md cite.
//!
//! A final **sharded serving** section splits one multi-document corpus
//! into 1/2/4 document-granular shards behind the scatter/gather path and
//! reports the p50 speedup at 4 shards vs 1 plus the gather barrier's
//! straggler overhead (server-side `gks_shard_straggler_micros` p50).

use std::sync::Arc;
use std::time::Duration;

use gks_core::engine::Engine;
use gks_datagen::nasa;
use gks_index::{split_corpus, Corpus, IndexOptions};
use gks_server::catalog::IndexSpec;
use gks_server::client::http_get;
use gks_server::loadgen::{self, IndexTarget, LoadgenConfig, Pacing, WorkloadEntry};
use gks_server::metrics::metric_value;
use gks_server::{serve, serve_catalog, ServeConfig};
use gks_trace::SpanKind;

use crate::table::TextTable;
use crate::workloads::{dblp_workload, nasa_engine};

/// Per-phase p50 out of the process-global span histograms, `-` when the
/// phase recorded no samples (e.g. every request was a cache hit).
fn phase_p50(kind: SpanKind) -> String {
    match gks_trace::histogram(kind).quantile(0.5) {
        Some(v) => v.to_string(),
        None => "-".to_string(),
    }
}

/// Builds the hot-names workload the serving rows share.
fn hot_names_workload(names: &[String]) -> Vec<WorkloadEntry> {
    let mut freq: std::collections::HashMap<&str, usize> = Default::default();
    for n in names {
        *freq.entry(n.as_str()).or_default() += 1;
    }
    let mut ranked: Vec<(&str, usize)> = freq.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let top: Vec<&str> = ranked.iter().take(16).map(|(w, _)| *w).collect();
    let mut workload: Vec<WorkloadEntry> = top
        .iter()
        .map(|w| WorkloadEntry { query: (*w).to_string(), s: "1".to_string() })
        .collect();
    for pair in top.windows(2) {
        workload
            .push(WorkloadEntry { query: format!("{} {}", pair[0], pair[1]), s: "2".to_string() });
    }
    workload
}

/// One closed-loop run against a fresh server; returns the loadgen report.
fn drive(
    engine: &Arc<gks_core::engine::Engine>,
    workload: &[WorkloadEntry],
    clients: usize,
    requests_per_client: usize,
    trace: bool,
    explain: bool,
) -> Result<loadgen::LoadReport, String> {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        trace,
        ..ServeConfig::default()
    };
    let server =
        serve(Arc::clone(engine), config).map_err(|e| format!("server failed to start: {e}"))?;
    let load = LoadgenConfig {
        addr: server.local_addr(),
        clients,
        requests_per_client,
        zipf_s: 1.0,
        seed: 2016,
        timeout: Duration::from_secs(10),
        pacing: Pacing::Closed,
        targets: Vec::new(),
        explain,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&load, workload);
    server.shutdown();
    Ok(report)
}

/// Peak QPS over `runs` independent runs — the scheduler-noise-resistant
/// statistic for an A/B throughput comparison on a shared machine. The
/// global tracer flag is forced to match `trace` before every run (a
/// `ServeState` only ever turns tracing on, never off), so A and B legs can
/// interleave.
fn best_qps(
    engine: &Arc<gks_core::engine::Engine>,
    workload: &[WorkloadEntry],
    trace: bool,
    explain: bool,
    runs: usize,
) -> Result<loadgen::LoadReport, String> {
    let mut best: Option<loadgen::LoadReport> = None;
    for _ in 0..runs {
        gks_trace::set_enabled(trace);
        let report = drive(engine, workload, 8, 2_000, trace, explain)?;
        if best.as_ref().is_none_or(|b| report.qps() > b.qps()) {
            best = Some(report);
        }
    }
    best.ok_or_else(|| "no runs".to_string())
}

/// Runs the experiment.
pub fn run() -> String {
    let (engine, names) = nasa_engine(2000, 2016);
    let engine = Arc::new(engine);
    let workload = hot_names_workload(&names);
    let mut out = String::new();

    // -- Tracing overhead, measured first: `ServeState` only ever enables
    // the process-global tracer, so the disabled control must run before
    // any `trace: true` server exists in this process. A discarded warm-up
    // run pays the one-time costs (page cache, allocator, socket setup) so
    // they do not land on the control side of the comparison.
    gks_trace::set_enabled(false);
    if let Err(e) = drive(&engine, &workload, 8, 500, false, false) {
        return format!("== Serving throughput ==\n{e}\n");
    }
    // Interleave the legs (A B A B A B A B) so drift in the shared
    // machine's load lands on both sides of the comparison.
    let mut control: Option<loadgen::LoadReport> = None;
    let mut traced: Option<loadgen::LoadReport> = None;
    for _ in 0..4 {
        match best_qps(&engine, &workload, false, false, 1) {
            Ok(r) if control.as_ref().is_none_or(|b| r.qps() > b.qps()) => control = Some(r),
            Ok(_) => {}
            Err(e) => return format!("== Serving throughput ==\n{e}\n"),
        }
        match best_qps(&engine, &workload, true, false, 1) {
            Ok(r) if traced.as_ref().is_none_or(|b| r.qps() > b.qps()) => traced = Some(r),
            Ok(_) => {}
            Err(e) => return format!("== Serving throughput ==\n{e}\n"),
        }
    }
    let (Some(control), Some(traced)) = (control, traced) else {
        return "== Serving throughput ==\nno runs\n".to_string();
    };
    let delta_pct = (control.qps() - traced.qps()) / control.qps() * 100.0;
    out.push_str(&format!(
        "== Tracing overhead (8 clients, 16000 requests, best of 4 interleaved, Zipf s=1.0) ==\n\
         trace disabled: {:.0} qps (p99 {} µs)\n\
         trace enabled:  {:.0} qps (p99 {} µs)\n\
         enabled-vs-disabled QPS delta: {delta_pct:+.1}% (acceptance bar: <= 2%)\n\n",
        control.qps(),
        control.percentile(0.99),
        traced.qps(),
        traced.percentile(0.99),
    ));

    // -- Cost-ledger / explain overhead. The ledger's counters are plain
    // integer adds threaded through the search path and are live in BOTH
    // legs (there is no off switch to measure against); what `explain=1`
    // adds on top is the x-gks-cost header, the JSON cost splice, and the
    // loadgen's client-side header parse. Same interleaved best-of-4
    // policy as the tracing A/B, tracer enabled on both sides.
    let mut plain: Option<loadgen::LoadReport> = None;
    let mut explained: Option<loadgen::LoadReport> = None;
    for _ in 0..4 {
        match best_qps(&engine, &workload, true, false, 1) {
            Ok(r) if plain.as_ref().is_none_or(|b| r.qps() > b.qps()) => plain = Some(r),
            Ok(_) => {}
            Err(e) => return format!("== Serving throughput ==\n{e}\n"),
        }
        match best_qps(&engine, &workload, true, true, 1) {
            Ok(r) if explained.as_ref().is_none_or(|b| r.qps() > b.qps()) => explained = Some(r),
            Ok(_) => {}
            Err(e) => return format!("== Serving throughput ==\n{e}\n"),
        }
    }
    let (Some(plain), Some(explained)) = (plain, explained) else {
        return "== Serving throughput ==\nno runs\n".to_string();
    };
    let explain_delta_pct = (plain.qps() - explained.qps()) / plain.qps() * 100.0;
    out.push_str(&format!(
        "== Cost-ledger / explain overhead (8 clients, 16000 requests, best of 4 interleaved) ==\n\
         explain off: {:.0} qps (p99 {} µs)\n\
         explain on:  {:.0} qps (p99 {} µs)\n\
         explain-vs-plain QPS delta: {explain_delta_pct:+.1}% (acceptance bar: <= 2%)\n\
         work per engine run (explain leg): p50 {} / p99 {} postings scanned over {} sample(s)\n\n",
        plain.qps(),
        plain.percentile(0.99),
        explained.qps(),
        explained.percentile(0.99),
        explained.work_percentile(0.5),
        explained.work_percentile(0.99),
        explained.work_postings.len(),
    ));

    // -- Scaling table, now with server-side per-phase p50s. The histograms
    // are process-global, so they are reset per row.
    let mut t = TextTable::new(&[
        "clients", "qps", "p50 µs", "p95 µs", "p99 µs", "hit rate", "5xx", "parse", "postings",
        "sweep", "rank",
    ]);
    for clients in [1usize, 4, 8, 16] {
        gks_trace::reset();
        let report = match drive(&engine, &workload, clients, 200, true, false) {
            Ok(r) => r,
            Err(e) => return format!("== Serving throughput ==\n{e}\n"),
        };
        t.row(&[
            clients.to_string(),
            format!("{:.0}", report.qps()),
            report.percentile(0.5).to_string(),
            report.percentile(0.95).to_string(),
            report.percentile(0.99).to_string(),
            format!("{:.0}%", report.hit_rate() * 100.0),
            (report.server_errors + report.transport_errors).to_string(),
            phase_p50(SpanKind::Parse),
            phase_p50(SpanKind::Postings),
            phase_p50(SpanKind::Sweep),
            phase_p50(SpanKind::Rank),
        ]);
    }
    out.push_str(&format!(
        "== Serving throughput (NASA-like, 4 workers, Zipf s=1.0, 200 req/client) ==\n{}\n\
         expected shape: QPS scales with clients until the worker pool saturates; \
         the hit rate climbs past 50% as the Zipf head warms the cache, pulling \
         p50 far below p99 (which pays for cold tails); the 5xx column stays 0 — \
         admission control is not triggered at these depths. Phase columns are \
         server-side span p50s in µs; hits bypass the engine, so they reflect \
         misses only.\n\n",
        t.render()
    ));

    // -- Per-phase breakdown over the DBLP workload, engine-direct (no
    // sockets or cache in the way), the measured table for docs/ANALYSIS.md.
    let wl = dblp_workload(400, 2016);
    let mut bt = TextTable::new(&[
        "query",
        "|Q|",
        "reps",
        "parse",
        "postings",
        "sweep",
        "rank",
        "di",
        "total µs",
    ]);
    const REPS: usize = 32;
    for named in &wl.queries {
        gks_trace::reset();
        let options = gks_core::search::SearchOptions::with_s(2);
        let mut resp = None;
        for _ in 0..REPS {
            resp = wl.engine.search(&named.query, options).ok();
        }
        let Some(resp) = resp else {
            return format!("== Serving throughput ==\n{}: search failed\n", named.id);
        };
        let di_opts = gks_core::di::DiOptions::default();
        for _ in 0..REPS {
            wl.engine.discover_di(&resp, &di_opts);
        }
        bt.row(&[
            named.id.clone(),
            named.query.keywords().len().to_string(),
            REPS.to_string(),
            phase_p50(SpanKind::Parse),
            phase_p50(SpanKind::Postings),
            phase_p50(SpanKind::Sweep),
            phase_p50(SpanKind::Rank),
            phase_p50(SpanKind::Di),
            gks_trace::histogram(SpanKind::Search).quantile(0.5).unwrap_or(0).to_string(),
        ]);
    }
    out.push_str(&format!(
        "== Per-phase breakdown (DBLP scale 400, s=2, span p50s in µs) ==\n{}\n\
         expected shape: postings + sweep dominate and grow with |Q|; parse is \
         noise; rank is proportional to |SL|; di (mining over the result set) \
         is the priciest single phase but runs once per refinement round, not \
         per keystroke.\n\n",
        bt.render()
    ));

    // -- Two-index catalog serving: one process hosting NASA + DBLP, the
    // loadgen spreading a weighted 3:1 traffic mix over the /ix/ prefixes,
    // verified against the server's own per-index /metrics counters.
    let dblp_engine = Arc::new(wl.engine);
    let catalog_config =
        ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 4, ..ServeConfig::default() };
    let specs = vec![
        IndexSpec::with_engine("nasa", Arc::clone(&engine)),
        IndexSpec::with_engine("dblp", dblp_engine),
    ];
    let server = match serve_catalog(specs, Some("nasa"), catalog_config) {
        Ok(s) => s,
        Err(e) => return format!("{out}== Two-index serving ==\ncatalog failed to start: {e}\n"),
    };
    let load = LoadgenConfig {
        addr: server.local_addr(),
        clients: 4,
        requests_per_client: 400,
        zipf_s: 1.0,
        seed: 2016,
        timeout: Duration::from_secs(10),
        pacing: Pacing::Closed,
        targets: vec![
            IndexTarget { name: "nasa".to_string(), weight: 3 },
            IndexTarget { name: "dblp".to_string(), weight: 1 },
        ],
        explain: false,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&load, &workload);
    let exposition = http_get(server.local_addr(), "/metrics", Duration::from_secs(5))
        .map(|r| r.body_text())
        .unwrap_or_default();
    server.shutdown();
    let per_index = |name: &str, metric: &str| {
        metric_value(&exposition, &format!("{metric}{{index=\"{name}\"}}")).unwrap_or(-1)
    };
    out.push_str(&format!(
        "== Two-index serving (nasa:dblp traffic 3:1, 4 clients, 1600 requests) ==\n\
         loadgen: {:.0} qps, {} 2xx, {} 5xx, hit rate {:.0}%\n\
         server:  nasa {} request(s) ({} cache hit(s)), dblp {} request(s) ({} cache hit(s))\n\
         expected shape: the per-index request split tracks the 3:1 weights; \
         both indexes serve from their own cache, so neither mix member \
         starves the other's hit rate.\n",
        report.qps(),
        report.ok,
        report.server_errors,
        report.hit_rate() * 100.0,
        per_index("nasa", "gks_index_requests_total"),
        per_index("nasa", "gks_index_cache_hits_total"),
        per_index("dblp", "gks_index_requests_total"),
        per_index("dblp", "gks_index_cache_hits_total"),
    ));

    // -- Sharded scatter/gather: the same multi-document corpus served
    // behind 1, 2, and 4 document-granular shards. The cache is off so
    // every request pays the full scatter; the straggler column is the
    // server-side p50 of (slowest − fastest) shard time per scatter, the
    // price of the gather barrier.
    let shard_corpus = {
        let mut docs: Vec<(String, String)> = Vec::new();
        for i in 0..8u64 {
            let gen = nasa::generate(&nasa::Config { datasets: 200 }, 3000 + i);
            docs.push((format!("nasa{i}"), gen.xml));
        }
        match Corpus::from_named_strs(docs) {
            Ok(c) => c,
            Err(e) => return format!("{out}== Sharded serving ==\ncorpus failed: {e}\n"),
        }
    };
    let mut st = TextTable::new(&[
        "shards",
        "qps",
        "p50 µs",
        "p99 µs",
        "straggler p50 µs",
        "fan-out",
        "5xx",
    ]);
    let mut p50_by_shards: Vec<(usize, u64)> = Vec::new();
    let mut straggler_at_4 = 0i64;
    for shards in [1usize, 2, 4] {
        let engines: Vec<Arc<Engine>> = match split_corpus(&shard_corpus, shards)
            .iter()
            .map(|part| Engine::build(part, IndexOptions::default()).map(Arc::new))
            .collect()
        {
            Ok(engines) => engines,
            Err(e) => return format!("{out}== Sharded serving ==\nshard build failed: {e}\n"),
        };
        // Best-of-2 runs per width, keeping the lower p50 (shared-machine
        // noise resistance, same policy as the tracing A/B above).
        let mut best: Option<(loadgen::LoadReport, i64)> = None;
        for _ in 0..2 {
            let specs = vec![IndexSpec::with_shard_engines("default", engines.iter().cloned())];
            let config = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 4,
                cache_bytes: 0,
                ..ServeConfig::default()
            };
            let server = match serve_catalog(specs, None, config) {
                Ok(s) => s,
                Err(e) => return format!("{out}== Sharded serving ==\nserver failed: {e}\n"),
            };
            let load = LoadgenConfig {
                addr: server.local_addr(),
                clients: 2,
                requests_per_client: 150,
                zipf_s: 1.0,
                seed: 2016,
                timeout: Duration::from_secs(10),
                pacing: Pacing::Closed,
                targets: Vec::new(),
                explain: false,
                ..LoadgenConfig::default()
            };
            let report = loadgen::run(&load, &workload);
            let exposition = http_get(server.local_addr(), "/metrics", Duration::from_secs(5))
                .map(|r| r.body_text())
                .unwrap_or_default();
            server.shutdown();
            let straggler =
                metric_value(&exposition, "gks_shard_straggler_micros{quantile=\"0.5\"}")
                    .unwrap_or(-1);
            if best.as_ref().is_none_or(|(b, _)| report.percentile(0.5) < b.percentile(0.5)) {
                best = Some((report, straggler));
            }
        }
        let Some((report, straggler)) = best else {
            return format!("{out}== Sharded serving ==\nno runs\n");
        };
        p50_by_shards.push((shards, report.percentile(0.5)));
        if shards == 4 {
            straggler_at_4 = straggler;
        }
        st.row(&[
            shards.to_string(),
            format!("{:.0}", report.qps()),
            report.percentile(0.5).to_string(),
            report.percentile(0.99).to_string(),
            if straggler >= 0 {
                straggler.to_string()
            } else {
                "-".to_string()
            },
            if report.fanout_max > 0 {
                report.fanout_max.to_string()
            } else {
                "-".to_string()
            },
            (report.server_errors + report.transport_errors).to_string(),
        ]);
    }
    let p50_1 = p50_by_shards.first().map_or(0, |&(_, p)| p);
    let p50_4 = p50_by_shards.last().map_or(0, |&(_, p)| p);
    let speedup = if p50_4 > 0 {
        p50_1 as f64 / p50_4 as f64
    } else {
        0.0
    };
    let straggler_pct = if p50_4 > 0 && straggler_at_4 >= 0 {
        straggler_at_4 as f64 / p50_4 as f64 * 100.0
    } else {
        0.0
    };
    out.push_str(&format!(
        "== Sharded serving (8-document NASA-like corpus, cache off, 2 clients, best of 2) ==\n{}\n\
         p50 speedup at 4 shards vs 1: {speedup:.2}x \
         (straggler overhead at 4 shards: {straggler_at_4} µs, {straggler_pct:.0}% of p50)\n\
         expected shape: with cores >= shards the scatter parallelizes the per-request \
         sweep and the speedup approaches min(shards, cores) — about 2x at 2 shards and \
         >= 1.5x at 4 on a 4-core host; on fewer cores the shards serialize and the \
         speedup decays toward 1x while the gather barrier's straggler overhead grows \
         with the fan-out. This host has {} core(s).\n",
        st.render(),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    ));
    out
}
