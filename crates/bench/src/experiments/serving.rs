//! Serving-layer throughput: the paper's interactivity claim, measured
//! end-to-end. An in-process `gks-serve` instance (real sockets, worker
//! pool, result cache) is driven by the closed-loop load generator at
//! growing client counts over a Zipf-skewed workload — the regime the
//! refinement loop of §6 creates, where a few hot queries repeat. Reported:
//! sustained QPS, latency percentiles, and the cache hit rate that makes
//! the repeats cheap.

use std::sync::Arc;
use std::time::Duration;

use gks_server::loadgen::{self, LoadgenConfig, WorkloadEntry};
use gks_server::{serve, ServeConfig};

use crate::table::TextTable;
use crate::workloads::nasa_engine;

/// Runs the experiment.
pub fn run() -> String {
    let (engine, names) = nasa_engine(2000, 2016);
    let engine = Arc::new(engine);

    // Workload: the 16 most frequent last names, singly and in pairs.
    let mut freq: std::collections::HashMap<&str, usize> = Default::default();
    for n in &names {
        *freq.entry(n.as_str()).or_default() += 1;
    }
    let mut ranked: Vec<(&str, usize)> = freq.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let top: Vec<&str> = ranked.iter().take(16).map(|(w, _)| *w).collect();
    let mut workload: Vec<WorkloadEntry> = top
        .iter()
        .map(|w| WorkloadEntry { query: (*w).to_string(), s: "1".to_string() })
        .collect();
    for pair in top.windows(2) {
        workload
            .push(WorkloadEntry { query: format!("{} {}", pair[0], pair[1]), s: "2".to_string() });
    }

    let mut t = TextTable::new(&[
        "clients", "requests", "qps", "p50 µs", "p95 µs", "p99 µs", "hit rate", "5xx",
    ]);
    for clients in [1usize, 4, 8, 16] {
        let config =
            ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 4, ..ServeConfig::default() };
        let server = match serve(Arc::clone(&engine), config) {
            Ok(s) => s,
            Err(e) => return format!("== Serving throughput ==\nserver failed to start: {e}\n"),
        };
        let load = LoadgenConfig {
            addr: server.local_addr(),
            clients,
            requests_per_client: 200,
            zipf_s: 1.0,
            seed: 2016,
            timeout: Duration::from_secs(10),
        };
        let report = loadgen::run(&load, &workload);
        server.shutdown();
        t.row(&[
            clients.to_string(),
            report.total.to_string(),
            format!("{:.0}", report.qps()),
            report.percentile(0.5).to_string(),
            report.percentile(0.95).to_string(),
            report.percentile(0.99).to_string(),
            format!("{:.0}%", report.hit_rate() * 100.0),
            (report.server_errors + report.transport_errors).to_string(),
        ]);
    }
    format!(
        "== Serving throughput (NASA-like, 4 workers, Zipf s=1.0) ==\n{}\n\
         expected shape: QPS scales with clients until the worker pool saturates; \
         the hit rate climbs past 50% as the Zipf head warms the cache, pulling \
         p50 far below p99 (which pays for cold tails); the 5xx column stays 0 — \
         admission control is not triggered at these depths.\n",
        t.render()
    )
}
