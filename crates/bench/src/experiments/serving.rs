//! Serving-layer throughput: the paper's interactivity claim, measured
//! end-to-end. An in-process `gks-serve` instance (real sockets, worker
//! pool, result cache) is driven by the closed-loop load generator at
//! growing client counts over a Zipf-skewed workload — the regime the
//! refinement loop of §6 creates, where a few hot queries repeat. Reported:
//! sustained QPS, latency percentiles, the cache hit rate that makes the
//! repeats cheap, and the server-side per-phase p50s from the `gks-trace`
//! span histograms.
//!
//! Two observability sections follow the scaling table:
//!
//! * **tracing overhead** — the same fixed workload with the tracer
//!   disabled (control) and enabled; the acceptance bar is an enabled QPS
//!   within 2% of the control.
//! * **per-phase breakdown** — the Table-6-style DBLP queries run directly
//!   against the engine with tracing on, reporting where each query's time
//!   goes (parse / postings / sweep / rank / di). This is the measured
//!   table DESIGN.md's observability section and docs/ANALYSIS.md cite.

use std::sync::Arc;
use std::time::Duration;

use gks_server::catalog::IndexSpec;
use gks_server::client::http_get;
use gks_server::loadgen::{self, IndexTarget, LoadgenConfig, Pacing, WorkloadEntry};
use gks_server::metrics::metric_value;
use gks_server::{serve, serve_catalog, ServeConfig};
use gks_trace::SpanKind;

use crate::table::TextTable;
use crate::workloads::{dblp_workload, nasa_engine};

/// Per-phase p50 out of the process-global span histograms, `-` when the
/// phase recorded no samples (e.g. every request was a cache hit).
fn phase_p50(kind: SpanKind) -> String {
    match gks_trace::histogram(kind).quantile(0.5) {
        Some(v) => v.to_string(),
        None => "-".to_string(),
    }
}

/// Builds the hot-names workload the serving rows share.
fn hot_names_workload(names: &[String]) -> Vec<WorkloadEntry> {
    let mut freq: std::collections::HashMap<&str, usize> = Default::default();
    for n in names {
        *freq.entry(n.as_str()).or_default() += 1;
    }
    let mut ranked: Vec<(&str, usize)> = freq.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let top: Vec<&str> = ranked.iter().take(16).map(|(w, _)| *w).collect();
    let mut workload: Vec<WorkloadEntry> = top
        .iter()
        .map(|w| WorkloadEntry { query: (*w).to_string(), s: "1".to_string() })
        .collect();
    for pair in top.windows(2) {
        workload
            .push(WorkloadEntry { query: format!("{} {}", pair[0], pair[1]), s: "2".to_string() });
    }
    workload
}

/// One closed-loop run against a fresh server; returns the loadgen report.
fn drive(
    engine: &Arc<gks_core::engine::Engine>,
    workload: &[WorkloadEntry],
    clients: usize,
    requests_per_client: usize,
    trace: bool,
) -> Result<loadgen::LoadReport, String> {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        trace,
        ..ServeConfig::default()
    };
    let server =
        serve(Arc::clone(engine), config).map_err(|e| format!("server failed to start: {e}"))?;
    let load = LoadgenConfig {
        addr: server.local_addr(),
        clients,
        requests_per_client,
        zipf_s: 1.0,
        seed: 2016,
        timeout: Duration::from_secs(10),
        pacing: Pacing::Closed,
        targets: Vec::new(),
    };
    let report = loadgen::run(&load, workload);
    server.shutdown();
    Ok(report)
}

/// Peak QPS over `runs` independent runs — the scheduler-noise-resistant
/// statistic for an A/B throughput comparison on a shared machine. The
/// global tracer flag is forced to match `trace` before every run (a
/// `ServeState` only ever turns tracing on, never off), so A and B legs can
/// interleave.
fn best_qps(
    engine: &Arc<gks_core::engine::Engine>,
    workload: &[WorkloadEntry],
    trace: bool,
    runs: usize,
) -> Result<loadgen::LoadReport, String> {
    let mut best: Option<loadgen::LoadReport> = None;
    for _ in 0..runs {
        gks_trace::set_enabled(trace);
        let report = drive(engine, workload, 8, 2_000, trace)?;
        if best.as_ref().is_none_or(|b| report.qps() > b.qps()) {
            best = Some(report);
        }
    }
    best.ok_or_else(|| "no runs".to_string())
}

/// Runs the experiment.
pub fn run() -> String {
    let (engine, names) = nasa_engine(2000, 2016);
    let engine = Arc::new(engine);
    let workload = hot_names_workload(&names);
    let mut out = String::new();

    // -- Tracing overhead, measured first: `ServeState` only ever enables
    // the process-global tracer, so the disabled control must run before
    // any `trace: true` server exists in this process. A discarded warm-up
    // run pays the one-time costs (page cache, allocator, socket setup) so
    // they do not land on the control side of the comparison.
    gks_trace::set_enabled(false);
    if let Err(e) = drive(&engine, &workload, 8, 500, false) {
        return format!("== Serving throughput ==\n{e}\n");
    }
    // Interleave the legs (A B A B A B A B) so drift in the shared
    // machine's load lands on both sides of the comparison.
    let mut control: Option<loadgen::LoadReport> = None;
    let mut traced: Option<loadgen::LoadReport> = None;
    for _ in 0..4 {
        match best_qps(&engine, &workload, false, 1) {
            Ok(r) if control.as_ref().is_none_or(|b| r.qps() > b.qps()) => control = Some(r),
            Ok(_) => {}
            Err(e) => return format!("== Serving throughput ==\n{e}\n"),
        }
        match best_qps(&engine, &workload, true, 1) {
            Ok(r) if traced.as_ref().is_none_or(|b| r.qps() > b.qps()) => traced = Some(r),
            Ok(_) => {}
            Err(e) => return format!("== Serving throughput ==\n{e}\n"),
        }
    }
    let (Some(control), Some(traced)) = (control, traced) else {
        return "== Serving throughput ==\nno runs\n".to_string();
    };
    let delta_pct = (control.qps() - traced.qps()) / control.qps() * 100.0;
    out.push_str(&format!(
        "== Tracing overhead (8 clients, 16000 requests, best of 4 interleaved, Zipf s=1.0) ==\n\
         trace disabled: {:.0} qps (p99 {} µs)\n\
         trace enabled:  {:.0} qps (p99 {} µs)\n\
         enabled-vs-disabled QPS delta: {delta_pct:+.1}% (acceptance bar: <= 2%)\n\n",
        control.qps(),
        control.percentile(0.99),
        traced.qps(),
        traced.percentile(0.99),
    ));

    // -- Scaling table, now with server-side per-phase p50s. The histograms
    // are process-global, so they are reset per row.
    let mut t = TextTable::new(&[
        "clients", "qps", "p50 µs", "p95 µs", "p99 µs", "hit rate", "5xx", "parse", "postings",
        "sweep", "rank",
    ]);
    for clients in [1usize, 4, 8, 16] {
        gks_trace::reset();
        let report = match drive(&engine, &workload, clients, 200, true) {
            Ok(r) => r,
            Err(e) => return format!("== Serving throughput ==\n{e}\n"),
        };
        t.row(&[
            clients.to_string(),
            format!("{:.0}", report.qps()),
            report.percentile(0.5).to_string(),
            report.percentile(0.95).to_string(),
            report.percentile(0.99).to_string(),
            format!("{:.0}%", report.hit_rate() * 100.0),
            (report.server_errors + report.transport_errors).to_string(),
            phase_p50(SpanKind::Parse),
            phase_p50(SpanKind::Postings),
            phase_p50(SpanKind::Sweep),
            phase_p50(SpanKind::Rank),
        ]);
    }
    out.push_str(&format!(
        "== Serving throughput (NASA-like, 4 workers, Zipf s=1.0, 200 req/client) ==\n{}\n\
         expected shape: QPS scales with clients until the worker pool saturates; \
         the hit rate climbs past 50% as the Zipf head warms the cache, pulling \
         p50 far below p99 (which pays for cold tails); the 5xx column stays 0 — \
         admission control is not triggered at these depths. Phase columns are \
         server-side span p50s in µs; hits bypass the engine, so they reflect \
         misses only.\n\n",
        t.render()
    ));

    // -- Per-phase breakdown over the DBLP workload, engine-direct (no
    // sockets or cache in the way), the measured table for docs/ANALYSIS.md.
    let wl = dblp_workload(400, 2016);
    let mut bt = TextTable::new(&[
        "query",
        "|Q|",
        "reps",
        "parse",
        "postings",
        "sweep",
        "rank",
        "di",
        "total µs",
    ]);
    const REPS: usize = 32;
    for named in &wl.queries {
        gks_trace::reset();
        let options = gks_core::search::SearchOptions::with_s(2);
        let mut resp = None;
        for _ in 0..REPS {
            resp = wl.engine.search(&named.query, options).ok();
        }
        let Some(resp) = resp else {
            return format!("== Serving throughput ==\n{}: search failed\n", named.id);
        };
        let di_opts = gks_core::di::DiOptions::default();
        for _ in 0..REPS {
            wl.engine.discover_di(&resp, &di_opts);
        }
        bt.row(&[
            named.id.clone(),
            named.query.keywords().len().to_string(),
            REPS.to_string(),
            phase_p50(SpanKind::Parse),
            phase_p50(SpanKind::Postings),
            phase_p50(SpanKind::Sweep),
            phase_p50(SpanKind::Rank),
            phase_p50(SpanKind::Di),
            gks_trace::histogram(SpanKind::Search).quantile(0.5).unwrap_or(0).to_string(),
        ]);
    }
    out.push_str(&format!(
        "== Per-phase breakdown (DBLP scale 400, s=2, span p50s in µs) ==\n{}\n\
         expected shape: postings + sweep dominate and grow with |Q|; parse is \
         noise; rank is proportional to |SL|; di (mining over the result set) \
         is the priciest single phase but runs once per refinement round, not \
         per keystroke.\n\n",
        bt.render()
    ));

    // -- Two-index catalog serving: one process hosting NASA + DBLP, the
    // loadgen spreading a weighted 3:1 traffic mix over the /ix/ prefixes,
    // verified against the server's own per-index /metrics counters.
    let dblp_engine = Arc::new(wl.engine);
    let catalog_config =
        ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 4, ..ServeConfig::default() };
    let specs = vec![
        IndexSpec::with_engine("nasa", Arc::clone(&engine)),
        IndexSpec::with_engine("dblp", dblp_engine),
    ];
    let server = match serve_catalog(specs, Some("nasa"), catalog_config) {
        Ok(s) => s,
        Err(e) => return format!("{out}== Two-index serving ==\ncatalog failed to start: {e}\n"),
    };
    let load = LoadgenConfig {
        addr: server.local_addr(),
        clients: 4,
        requests_per_client: 400,
        zipf_s: 1.0,
        seed: 2016,
        timeout: Duration::from_secs(10),
        pacing: Pacing::Closed,
        targets: vec![
            IndexTarget { name: "nasa".to_string(), weight: 3 },
            IndexTarget { name: "dblp".to_string(), weight: 1 },
        ],
    };
    let report = loadgen::run(&load, &workload);
    let exposition = http_get(server.local_addr(), "/metrics", Duration::from_secs(5))
        .map(|r| r.body_text())
        .unwrap_or_default();
    server.shutdown();
    let per_index = |name: &str, metric: &str| {
        metric_value(&exposition, &format!("{metric}{{index=\"{name}\"}}")).unwrap_or(-1)
    };
    out.push_str(&format!(
        "== Two-index serving (nasa:dblp traffic 3:1, 4 clients, 1600 requests) ==\n\
         loadgen: {:.0} qps, {} 2xx, {} 5xx, hit rate {:.0}%\n\
         server:  nasa {} request(s) ({} cache hit(s)), dblp {} request(s) ({} cache hit(s))\n\
         expected shape: the per-index request split tracks the 3:1 weights; \
         both indexes serve from their own cache, so neither mix member \
         starves the other's hit rate.\n",
        report.qps(),
        report.ok,
        report.server_errors,
        report.hit_rate() * 100.0,
        per_index("nasa", "gks_index_requests_total"),
        per_index("nasa", "gks_index_cache_hits_total"),
        per_index("dblp", "gks_index_requests_total"),
        per_index("dblp", "gks_index_cache_hits_total"),
    ));
    out
}
