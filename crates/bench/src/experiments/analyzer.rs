//! Ablation: the text pipeline (§2.4's "stop words removal and stemming").
//!
//! Four analyzer configurations are compared on index size, distinct terms,
//! postings volume, and morphological recall — whether a query in one
//! inflection (`searching`) finds text in another (`searched`).

use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::SearchOptions;
use gks_datagen::Dataset;
use gks_index::options::AnalyzerOptionsSer;
use gks_index::{Corpus, IndexOptions};

use crate::table::TextTable;

fn config(stem: bool, stop: bool) -> IndexOptions {
    IndexOptions {
        analyzer: AnalyzerOptionsSer { remove_stopwords: stop, stem, min_term_len: 1 },
        ..Default::default()
    }
}

/// Runs the experiment.
pub fn run() -> String {
    // DBLP provides the inflected title words for the morphological probes;
    // the Shakespeare plays provide prose full of stop words.
    let corpus = Corpus::from_named_strs([
        ("dblp", Dataset::Dblp.generate(3000, 2016)),
        ("plays", Dataset::Plays.generate(6, 2016)),
    ])
    .expect("corpus");

    let mut t = TextTable::new(&[
        "stemming",
        "stopwords",
        "index bytes",
        "terms",
        "postings",
        "morph. recall",
    ]);
    // The generator uses gerunds in titles ("mining", "matching", …); query
    // them with a different inflection and see if anything comes back.
    let probes = ["mined", "matches", "searches", "clusters", "optimized"];
    for (stem, stop) in [(true, true), (true, false), (false, true), (false, false)] {
        let options = config(stem, stop);
        let engine = Engine::build(&corpus, options).expect("index");
        let bytes = engine.index().to_bytes().len();
        let stats = engine.index().stats();
        let recalled = probes
            .iter()
            .filter(|p| {
                let q = Query::parse(p).expect("query");
                !engine.search(&q, SearchOptions::with_s(1)).expect("search").hits().is_empty()
            })
            .count();
        t.row(&[
            stem.to_string(),
            stop.to_string(),
            bytes.to_string(),
            stats.distinct_terms.to_string(),
            stats.total_postings.to_string(),
            format!("{recalled}/{}", probes.len()),
        ]);
    }
    format!(
        "== Ablation: analyzer pipeline (synthetic DBLP + plays) ==\n{}\n\
         expected shape: stemming collapses inflections (fewer distinct terms, full \
         morphological recall); disabling stop-word removal inflates postings without \
         adding recall for content queries.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stemming_enables_morphological_recall() {
        let xml = Dataset::Dblp.generate(800, 4);
        let corpus = Corpus::from_named_strs([("d", xml)]).unwrap();
        let stemmed = Engine::build(&corpus, config(true, true)).unwrap();
        let unstemmed = Engine::build(&corpus, config(false, true)).unwrap();
        // "mining" occurs in titles; "mined" only matches when stemming
        // folds both to "mine".
        let q = Query::parse("mined").unwrap();
        let with = stemmed.search(&q, SearchOptions::with_s(1)).unwrap();
        let without = unstemmed.search(&q, SearchOptions::with_s(1)).unwrap();
        assert!(!with.hits().is_empty());
        assert!(without.hits().is_empty());
    }

    #[test]
    fn stemming_never_grows_the_vocabulary() {
        // The synthetic pools have few inflection collisions, so the stemmed
        // vocabulary may only tie — but it must never exceed the unstemmed
        // one (stemming is a many-to-one map).
        let xml = Dataset::Dblp.generate(800, 4);
        let corpus = Corpus::from_named_strs([("d", xml)]).unwrap();
        let stemmed = Engine::build(&corpus, config(true, true)).unwrap();
        let unstemmed = Engine::build(&corpus, config(false, true)).unwrap();
        assert!(stemmed.index().stats().distinct_terms <= unstemmed.index().stats().distinct_terms);
    }

    #[test]
    fn stopword_removal_shrinks_postings() {
        // Shakespeare lines are full of "the"/"of"; removal must cut the
        // posting volume.
        let xml = Dataset::Plays.generate(4, 4);
        let corpus = Corpus::from_named_strs([("p", xml)]).unwrap();
        let with = Engine::build(&corpus, config(true, true)).unwrap();
        let without = Engine::build(&corpus, config(true, false)).unwrap();
        assert!(with.index().stats().total_postings < without.index().stats().total_postings);
    }
}
