//! Pipeline breakdown: where does search time go? The §4.2 analysis says the
//! merge is O(|SL|·log n) and everything after is O(d·|SL|); this experiment
//! makes the constant factors visible stage by stage, for growing |SL|.

use gks_core::query::Query;
use gks_core::search::SearchOptions;

use crate::table::TextTable;
use crate::workloads::nasa_engine;

/// Runs the experiment.
pub fn run() -> String {
    let (engine, names) = nasa_engine(4000, 2016);
    // Frequency-ranked names: take progressively larger prefixes for
    // progressively larger |SL|.
    let mut freq: std::collections::HashMap<&str, usize> = Default::default();
    for n in &names {
        *freq.entry(n.as_str()).or_default() += 1;
    }
    let mut ranked: Vec<(&str, usize)> = freq.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

    let mut t = TextTable::new(&[
        "n",
        "|SL|",
        "cands",
        "LCE",
        "hits",
        "merge µs",
        "window µs",
        "sweep µs",
        "assemble µs",
    ]);
    for n in [2usize, 4, 8, 16] {
        let kws: Vec<String> = ranked.iter().take(n).map(|(w, _)| w.to_string()).collect();
        let q = Query::from_keywords(kws).expect("query");
        // Warm up, then measure once (the trace is per-run).
        let _ = engine.search(&q, SearchOptions::with_s(1)).expect("search");
        let r = engine.search(&q, SearchOptions::with_s(1)).expect("search");
        let tr = r.trace();
        t.row(&[
            n.to_string(),
            r.sl_len().to_string(),
            tr.candidates.to_string(),
            tr.lce_nodes.to_string(),
            r.hits().len().to_string(),
            tr.merge_micros.to_string(),
            tr.window_micros.to_string(),
            tr.sweep_micros.to_string(),
            tr.assemble_micros.to_string(),
        ]);
    }
    format!(
        "== Pipeline breakdown (NASA-like, s = 1) ==\n{}\n\
         expected shape: the sweep dominates (it does the O(d·|SL|) rank work); merge and \
         window stay linear in |SL|; assembly is small.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_counters_are_consistent() {
        let (engine, names) = nasa_engine(300, 4);
        let q = Query::from_keywords(names[..4].to_vec()).unwrap();
        let r = engine.search(&q, SearchOptions::with_s(1)).unwrap();
        let tr = r.trace();
        assert!(tr.candidates > 0);
        assert_eq!(
            r.hits().len(),
            tr.witnessed_lce + tr.orphan_lcp - tr.pruned,
            "hits = witnessed LCE + orphan LCP − pruned"
        );
        assert!(tr.witnessed_lce <= tr.lce_nodes);
    }
}
