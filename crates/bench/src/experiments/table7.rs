//! Table 7: for the Table-6 query workloads — number of GKS nodes at s=1
//! and s=|Q|/2, number of SLCA nodes, maximum keywords in a GKS node, and
//! the rank score.

use gks_baselines::{query_posting_lists, slca::slca_ca_map};
use gks_core::search::{SearchOptions, Threshold};

use crate::rankscore::rank_score;
use crate::table::TextTable;
use crate::workloads::table6_workloads;

/// Runs the experiment.
pub fn run() -> String {
    let mut t = TextTable::new(&[
        "Query",
        "|Q|",
        "#GKS,s=1",
        "#GKS,s=|Q|/2",
        "SLCA",
        "Max kw in GKS node",
        "Rank Score",
    ]);
    for w in table6_workloads(2016) {
        for q in &w.queries {
            let r1 = w.engine.search(&q.query, SearchOptions::with_s(1)).expect("search");
            let rh = w
                .engine
                .search(&q.query, SearchOptions { s: Threshold::HalfQuery, ..Default::default() })
                .expect("search");
            let slca = slca_ca_map(&query_posting_lists(w.engine.index(), &q.query));
            let half = if q.query.len() >= 2 {
                rh.hits().len().to_string()
            } else {
                "NA".into()
            };
            t.row(&[
                q.id.clone(),
                q.query.len().to_string(),
                r1.hits().len().to_string(),
                half,
                slca.len().to_string(),
                r1.max_keyword_count().to_string(),
                format!("{:.3}", rank_score(&r1)),
            ]);
        }
    }
    format!(
        "== Table 7: GKS vs SLCA response sizes and ranking quality ==\n{}\n\
         expected shape: #GKS(s=1) ≫ SLCA (often SLCA = 0 or the root); #GKS(s=|Q|/2) > 0 \
         for every query; rank scores near 1.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gks_always_answers_and_usually_beats_slca() {
        let ws = table6_workloads(5);
        let mut gks_wider = 0usize;
        let mut total = 0usize;
        for w in &ws {
            for q in &w.queries {
                let r1 = w.engine.search(&q.query, SearchOptions::with_s(1)).unwrap();
                let rh = w
                    .engine
                    .search(
                        &q.query,
                        SearchOptions { s: Threshold::HalfQuery, ..Default::default() },
                    )
                    .unwrap();
                let slca = slca_ca_map(&query_posting_lists(w.engine.index(), &q.query));
                assert!(!r1.hits().is_empty(), "{} {}: GKS empty at s=1", w.name, q.id);
                assert!(
                    !rh.hits().is_empty(),
                    "{} {}: GKS empty at s=|Q|/2 (paper: non-zero for all queries)",
                    w.name,
                    q.id
                );
                total += 1;
                if r1.hits().len() > slca.len() {
                    gks_wider += 1;
                }
                // Lemma 2 between the two thresholds.
                if q.query.len() >= 2 {
                    assert!(rh.hits().len() <= r1.hits().len());
                }
            }
        }
        assert!(gks_wider * 10 >= total * 8, "GKS wider in {gks_wider}/{total}");
    }

    #[test]
    fn rank_scores_are_high() {
        // The paper's Table 7 scores are mostly 1.0, with occasional
        // scattered-match outliers (QM3 = 0.17). The measure itself has no
        // positive floor: whenever a shallow entity node's subtree happens
        // to contain every keyword scattered across different children, it
        // counts as a "true" node yet (correctly) gets a low potential-flow
        // rank, and one such node at list position w caps the score near
        // 2/w. So per query we only require a positive score, and assert
        // ranking quality on the mean, which is what Table 7 demonstrates.
        let mut scores: Vec<f64> = Vec::new();
        for w in table6_workloads(6) {
            for q in &w.queries {
                let r1 = w.engine.search(&q.query, SearchOptions::with_s(1)).unwrap();
                let score = rank_score(&r1);
                assert!(score > 0.0, "{} {}: score {score}", w.name, q.id);
                scores.push(score);
            }
        }
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!(mean >= 0.7, "mean rank score {mean} ({scores:?})");
    }
}
