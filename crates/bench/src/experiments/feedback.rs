//! §7.5: the 40-assessor GKS-vs-SLCA usefulness study, simulated (see
//! [`crate::assessor`] and DESIGN.md's substitution table).

use gks_baselines::{query_posting_lists, slca::slca_ca_map};

use crate::assessor::assess;
use crate::table::TextTable;
use crate::workloads::table6_workloads;

/// Number of simulated assessors, as in the paper.
pub const USERS: u32 = 40;

/// Runs the experiment.
pub fn run() -> String {
    let mut t = TextTable::new(&["Query", "1", "2", "3", "4"]);
    let mut better = 0u32;
    let mut total = 0u32;
    for w in table6_workloads(2016) {
        // The paper's panel rated the 12 QS/QD/QM queries.
        if w.name == "InterPro" {
            continue;
        }
        for (qi, q) in w.queries.iter().enumerate() {
            let slca = slca_ca_map(&query_posting_lists(w.engine.index(), &q.query));
            let h = assess(&w.engine, &q.query, &slca, USERS, 2016 + qi as u64);
            t.row(&[
                q.id.clone(),
                h.counts[0].to_string(),
                h.counts[1].to_string(),
                h.counts[2].to_string(),
                h.counts[3].to_string(),
            ]);
            better += h.gks_better();
            total += h.total();
        }
    }
    format!(
        "== §7.5: simulated crowd feedback (1 = GKS very useful … 4 = SLCA very useful) ==\n{}\n\
         {better} / {total} responses rate GKS better ({:.1}%); the paper reports 430/480 \
         (89.6%).\n",
        t.render(),
        100.0 * better as f64 / total as f64
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gks_preferred_by_a_large_majority() {
        let mut better = 0u32;
        let mut total = 0u32;
        for w in table6_workloads(5) {
            if w.name == "InterPro" {
                continue;
            }
            for (qi, q) in w.queries.iter().enumerate() {
                let slca = slca_ca_map(&query_posting_lists(w.engine.index(), &q.query));
                let h = assess(&w.engine, &q.query, &slca, USERS, qi as u64);
                better += h.gks_better();
                total += h.total();
            }
        }
        let pct = 100.0 * better as f64 / total as f64;
        assert!(pct > 70.0, "GKS preferred only {pct}% — paper reports 89.6%");
    }
}
