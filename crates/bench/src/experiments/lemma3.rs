//! Lemma 3: the naive route to GKS semantics — one SLCA query per keyword
//! subset of size ≥ s — explodes exponentially, while GKS's single-pass
//! method stays flat.

use std::time::Instant;

use gks_baselines::naive::{naive_gks, subquery_count};
use gks_baselines::query_posting_lists;
use gks_core::query::Query;
use gks_core::search::SearchOptions;
use gks_datagen::dblp;
use gks_index::{Corpus, IndexOptions};

use crate::table::TextTable;
use crate::timed_search;

/// Runs the experiment.
pub fn run() -> String {
    let out = dblp::generate(&dblp::Config { articles: 1500, ..Default::default() }, 2016);
    let corpus = Corpus::from_named_strs([("dblp", out.xml)]).expect("corpus");
    let engine = gks_core::engine::Engine::build(&corpus, IndexOptions::default()).expect("index");

    // Distinct author names across clusters.
    let mut authors: Vec<String> = Vec::new();
    for c in &out.clusters {
        for a in c {
            if !authors.contains(a) {
                authors.push(a.clone());
            }
        }
    }

    let mut t = TextTable::new(&[
        "n",
        "s=⌈n/2⌉",
        "subqueries",
        "GKS RT (µs)",
        "naive RT (µs)",
        "naive/GKS",
    ]);
    for n in [4usize, 8, 12] {
        let s = n.div_ceil(2);
        let q = Query::from_keywords(authors[..n].to_vec()).expect("query");
        let (gks_us, _) = timed_search(&engine, &q, SearchOptions::with_s(s), 5);
        let lists = query_posting_lists(engine.index(), &q);
        let start = Instant::now();
        let naive = naive_gks(&lists, s);
        let naive_us = start.elapsed().as_micros() as u64;
        t.row(&[
            n.to_string(),
            s.to_string(),
            naive.subqueries.to_string(),
            gks_us.to_string(),
            naive_us.to_string(),
            format!("{:.1}x", naive_us as f64 / gks_us.max(1) as f64),
        ]);
    }
    // n = 16 is reported analytically (the naive run would take minutes).
    let row16 = format!(
        "n=16, s=8: the naive approach needs {} SLCA sub-queries (not executed)",
        subquery_count(16, 8)
    );
    format!(
        "== Lemma 3: GKS single pass vs naive subset enumeration ==\n{}\n{row16}\n\
         expected shape: sub-query count ~2^n for s=n/2; the naive/GKS time ratio grows \
         with n while GKS stays in the same order of magnitude.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use gks_baselines::naive::subquery_count;

    #[test]
    fn subquery_growth_is_exponential() {
        // Lemma 3: for s = n/2 the count exceeds 2^(n/2).
        let mut prev = 0u64;
        for n in [4usize, 8, 12, 16] {
            let c = subquery_count(n, n / 2);
            assert!(c >= 1 << (n / 2), "n={n}: {c}");
            assert!(c > prev * 4, "growth from {prev} to {c} too slow");
            prev = c;
        }
    }
}
