//! §7.6: hybrid query over merged DBLP + SIGMOD Record data, where subsets
//! of the keywords target two different entity types.

use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::{SearchOptions, Threshold};
use gks_datagen::merge::{merge_under_root, MergePart};
use gks_datagen::{dblp, sigmod};
use gks_index::{Corpus, IndexOptions};

use crate::table::TextTable;

fn first_pair(records: impl Iterator<Item = Vec<String>>) -> (String, String) {
    for authors in records {
        if authors.len() >= 2 {
            return (authors[0].clone(), authors[1].clone());
        }
    }
    panic!("no multi-author record");
}

/// Runs the experiment.
pub fn run() -> String {
    let dblp_out = dblp::generate(&dblp::Config { articles: 600, ..Default::default() }, 61);
    let sigmod_out = sigmod::generate(&sigmod::Config { issues: 25, ..Default::default() }, 62);
    // Merge under a common root; the SIGMOD side gets two extra connecting
    // nodes, as in the paper.
    let merged = merge_under_root(&[
        MergePart { wrapper: "dblp", xml: &dblp_out.xml, pad_levels: 0 },
        MergePart { wrapper: "SigmodRecord", xml: &sigmod_out.xml, pad_levels: 2 },
    ]);
    let corpus = Corpus::from_named_strs([("merged", merged)]).expect("corpus");
    let engine = Engine::build(&corpus, IndexOptions::default()).expect("index");

    let (d1, d2) = first_pair(dblp_out.records.iter().map(|r| r.authors.clone()));
    let (s1, s2) = first_pair(sigmod_out.article_authors.iter().cloned());
    let query =
        Query::from_keywords([d1.clone(), d2.clone(), s1.clone(), s2.clone()]).expect("query");

    let resp = engine
        .search(&query, SearchOptions { s: Threshold::Fixed(2), ..Default::default() })
        .expect("search");

    let mut by_type: std::collections::BTreeMap<String, usize> = Default::default();
    let mut max_depth_hit = 0usize;
    for h in resp.hits() {
        let label = engine.index().node_table().label_name(&h.node).unwrap_or("?").to_string();
        *by_type.entry(label).or_default() += 1;
        max_depth_hit = max_depth_hit.max(h.node.depth());
    }
    let mut t = TextTable::new(&["entity type", "hits"]);
    for (label, count) in &by_type {
        t.row(&[label.clone(), count.to_string()]);
    }
    format!(
        "== §7.6: hybrid query over merged DBLP + SIGMOD Record ==\n\
         query (s=2): {{{d1:?}, {d2:?}}} target DBLP records; {{{s1:?}, {s2:?}}} target \
         SIGMOD articles (two connecting levels deeper)\n\n{}\n\
         {} hit(s) total; deepest hit at depth {max_depth_hit}.\n\
         expected shape: hits split across both targeted node types; no common ancestor of \
         all four keywords is returned; ranking tracks keyword distribution, not depth.\n",
        t.render(),
        resp.hits().len()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn hybrid_hits_cover_both_types() {
        let out = super::run();
        assert!(
            out.contains("article") && (out.contains("inproceedings") || out.contains("dblp")),
            "{out}"
        );
    }
}
