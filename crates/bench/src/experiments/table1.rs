//! Table 1: nodes returned for Q1–Q3 on the Figure 1 tree by GKS, ELCA and
//! SLCA (plus the Example 5 rank values).

use gks_baselines::{elca::elca, query_posting_lists, slca::slca_ca_map};
use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::SearchOptions;
use gks_dewey::DeweyId;
use gks_index::{Corpus, IndexOptions};

use crate::table::TextTable;

/// The Figure 1 reconstruction (`ka..kf` stand for the paper's `a..f`).
pub const FIG1: &str = "<r>\
    <x1><v>ka</v><v>kb</v><v>kc</v><v>kf</v>\
        <x2><v>ka</v><v>kb</v><v>kc</v></x2></x1>\
    <x3><v>ka</v><v>kb</v><x5><v>kd</v><v>kf</v></x5></x3>\
    <x4><v>kc</v><v>kd</v></x4>\
</r>";

/// Pretty name of a Figure 1 node.
fn node_name(d: &DeweyId) -> &'static str {
    match d.steps() {
        [] => "r",
        [0] => "x1",
        [0, 4] => "x2",
        [1] => "x3",
        [1, 2] => "x5",
        [2] => "x4",
        _ => "?",
    }
}

fn names(nodes: &[DeweyId]) -> String {
    if nodes.is_empty() {
        return "NULL".to_string();
    }
    let list: Vec<String> = nodes.iter().map(|d| format!("{{{}}}", node_name(d))).collect();
    list.join(", ")
}

/// Runs the experiment.
pub fn run() -> String {
    let corpus = Corpus::from_named_strs([("fig1", FIG1)]).expect("corpus");
    let engine = Engine::build(&corpus, IndexOptions::default()).expect("index");

    let mut t = TextTable::new(&["Query", "GKS (ranked)", "ELCA", "SLCA"]);
    let rows: [(&str, &str, usize); 3] = [
        ("Q1, s=|Q1|", "ka kb kc", 3),
        ("Q2, s=2", "ka kb ke", 2),
        ("Q3, s=2", "ka kb kc kd", 2),
    ];
    let mut ranks_line = String::new();
    for (label, qstr, s) in rows {
        let query = Query::parse(qstr).expect("query");
        let resp = engine.search(&query, SearchOptions::with_s(s)).expect("search");
        let gks: Vec<DeweyId> = resp.hits().iter().map(|h| h.node.clone()).collect();
        let lists = query_posting_lists(engine.index(), &query);
        let e = elca(&lists);
        let sl = slca_ca_map(&lists);
        t.row(&[label.to_string(), names(&gks), names(&e), names(&sl)]);
        if label.starts_with("Q3") {
            let parts: Vec<String> = resp
                .hits()
                .iter()
                .map(|h| format!("rank({}) = {:.2}", node_name(&h.node), h.rank))
                .collect();
            ranks_line = format!("Example 5 ranks: {}", parts.join(", "));
        }
    }
    format!(
        "== Table 1: GKS vs ELCA vs SLCA on the Figure 1 tree ==\n{}\n{}\n\
         paper: Q1 GKS={{x2}} ELCA={{x1,x2}} SLCA={{x2}}; Q2 GKS={{x2}},{{x3}} others NULL;\n\
         Q3 GKS={{x2}},{{x3}},{{x4}} (ranks 3 > 2.5 > 2), ELCA=SLCA={{r}}.\n\
         (the reconstruction adds r to ELCA(Q1): x4's stray 'kc' sits outside x1 — see DESIGN.md)\n",
        t.render(),
        ranks_line
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn output_reproduces_paper_rows() {
        let out = super::run();
        assert!(out.contains("{x2}, {x3}, {x4}"), "{out}");
        assert!(out.contains("rank(x2) = 3.00"), "{out}");
        assert!(out.contains("rank(x3) = 2.50"), "{out}");
        assert!(out.contains("NULL"), "{out}");
    }
}
