//! Index-tier experiment: format v2 (eager single-stream postings) versus
//! v3 (block-compressed postings behind a term dictionary, served off an
//! mmap). Four measurements back the format's claims:
//!
//! * **file size** — delta-blocked postings make v3 strictly smaller;
//! * **cold open** — v3 reads no posting blocks at open, so open time is
//!   near-constant in corpus size;
//! * **resident posting memory** — at 4 shards, v3 keeps postings on the
//!   map instead of the heap;
//! * **search throughput** — lazily-decoded postings serve the same
//!   workload at comparable speed, with every response byte-identical.

use std::path::Path;
use std::time::Instant;

use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::{SearchOptions, Threshold};
use gks_core::wire;
use gks_datagen::dblp;
use gks_index::{split_corpus, Corpus, GksIndex, IndexFormat, IndexOptions};

use crate::table::TextTable;

/// DBLP articles in the main corpus — large enough that eager posting
/// decode dominates a v2 open, small enough for a CI bench leg.
const ARTICLES: usize = 8000;
const SEED: u64 = 2016;

fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2}MB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1}KB", bytes as f64 / (1 << 10) as f64)
    }
}

/// Median wall-clock milliseconds of `tries` cold loads of `path`.
fn median_open_millis(path: &Path, tries: usize) -> f64 {
    let mut samples: Vec<f64> = (0..tries)
        .map(|_| {
            let start = Instant::now();
            let ix = GksIndex::load(path).expect("load");
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            drop(ix);
            elapsed
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Runs the experiment.
pub fn run() -> String {
    let dir = std::env::temp_dir().join("gks-index-tier");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let out = dblp::generate(&dblp::Config { articles: ARTICLES, ..Default::default() }, SEED);
    let clusters = &out.clusters;
    let corpus = Corpus::from_named_strs([("dblp", out.xml.as_str())]).expect("corpus");
    let index = GksIndex::build(&corpus, IndexOptions::default()).expect("index");

    // File size: the same index persisted in both formats.
    let v2_path = dir.join("dblp-v2.gksix");
    let v3_path = dir.join("dblp-v3.gksix");
    let v2_size = index.save_as(&v2_path, IndexFormat::V2).expect("save v2");
    let v3_size = index.save_as(&v3_path, IndexFormat::V3).expect("save v3");
    let mut size = TextTable::new(&["Format", "File Size", "Bytes/Article", "vs v2"]);
    for (name, bytes) in [("v2 (eager)", v2_size), ("v3 (blocked)", v3_size)] {
        size.row(&[
            name.to_string(),
            fmt_bytes(bytes),
            format!("{:.0}", bytes as f64 / ARTICLES as f64),
            format!("{:.3}x", bytes as f64 / v2_size as f64),
        ]);
    }

    // Cold open: v3 parses the footer and dictionary but no posting
    // blocks; v2 decodes every posting list before returning.
    let v2_open = median_open_millis(&v2_path, 5);
    let v3_open = median_open_millis(&v3_path, 5);
    let v3_cold = GksIndex::load(&v3_path).expect("load v3");
    assert_eq!(v3_cold.decoded_terms(), 0, "a v3 open must decode no posting blocks");
    let mut open = TextTable::new(&["Format", "Cold Open (median)", "Terms Decoded at Open"]);
    open.row(&["v2 (eager)".into(), format!("{v2_open:.2}ms"), "all".into()]);
    open.row(&["v3 (blocked)".into(), format!("{v3_open:.2}ms"), "0".into()]);
    drop(v3_cold);

    // Resident posting memory at 4 shards: heap bytes held by the posting
    // tier right after open, plus what v3 leaves on the map instead.
    let mut resident = TextTable::new(&["Format", "Shards", "Posting Heap", "Mapped"]);
    for format in [IndexFormat::V2, IndexFormat::V3] {
        let shards = split_corpus(&corpus, 4);
        let mut heap = 0u64;
        let mut mapped = 0u64;
        for (i, shard) in shards.iter().enumerate() {
            let ix = GksIndex::build(shard, IndexOptions::default()).expect("shard index");
            let path = dir.join(format!("shard-{i}.gksix"));
            ix.save_as(&path, format).expect("save shard");
            let loaded = GksIndex::load(&path).expect("load shard");
            heap += loaded.inverted().resident_bytes();
            mapped += loaded.bytes_mapped();
        }
        let name = match format {
            IndexFormat::V2 => "v2 (eager)",
            IndexFormat::V3 => "v3 (blocked)",
        };
        resident.row(&[name.into(), "4".into(), fmt_bytes(heap), fmt_bytes(mapped)]);
    }

    // Search throughput over the Table-6-shaped DBLP queries, byte-checked:
    // both engines must produce identical wire responses for every query.
    let queries: Vec<Query> = vec![
        Query::from_keywords(clusters[0][..2].to_vec()).expect("QD1"),
        Query::from_keywords(
            clusters[0][..3].iter().chain(&clusters[1][..1]).cloned().collect::<Vec<_>>(),
        )
        .expect("QD2"),
        Query::from_keywords(
            clusters[0][..2]
                .iter()
                .chain(&clusters[1][..2])
                .chain(&clusters[2][..2])
                .cloned()
                .collect::<Vec<_>>(),
        )
        .expect("QD3"),
    ];
    let options = SearchOptions { s: Threshold::Fixed(2), limit: 16 };
    let v2_engine = Engine::from_index(GksIndex::load(&v2_path).expect("load v2"));
    let v3_engine = Engine::from_index(GksIndex::load(&v3_path).expect("load v3"));
    const ROUNDS: usize = 30;
    let mut throughput = TextTable::new(&["Format", "Queries", "Total", "Throughput"]);
    let mut baselines: Vec<String> = Vec::new();
    for (name, engine) in [("v2 (eager)", &v2_engine), ("v3 (blocked)", &v3_engine)] {
        let start = Instant::now();
        let mut responses = Vec::new();
        for _ in 0..ROUNDS {
            responses.clear();
            for query in &queries {
                let response = engine.search(query, options).expect("search");
                responses.push(wire::search_response_json(engine, &response));
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let total = ROUNDS * queries.len();
        if baselines.is_empty() {
            baselines = responses;
        } else {
            assert_eq!(baselines, responses, "v2/v3 responses must be byte-identical");
        }
        throughput.row(&[
            name.to_string(),
            queries.len().to_string(),
            total.to_string(),
            format!("{:.0} q/s", total as f64 / secs),
        ]);
    }

    std::fs::remove_dir_all(&dir).ok();
    format!(
        "== Index tier: format v2 vs v3 (DBLP, {ARTICLES} articles) ==\n\
         file size:\n{}\n\
         cold open:\n{}\n\
         posting-tier memory after open:\n{}\n\
         search throughput (responses byte-checked equal):\n{}",
        size.render(),
        open.render(),
        resident.render(),
        throughput.render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar: v3 strictly smaller on disk and no posting
    /// decode at open, at a bench-shaped (pool-vocabulary) corpus.
    #[test]
    fn v3_is_smaller_and_opens_lazily() {
        let dir = std::env::temp_dir().join(format!("gks-index-tier-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dblp::generate(&dblp::Config { articles: 400, ..Default::default() }, 7);
        let corpus = Corpus::from_named_strs([("dblp", out.xml.as_str())]).unwrap();
        let index = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let v2 = index.save_as(&dir.join("t.v2"), IndexFormat::V2).unwrap();
        let v3 = index.save_as(&dir.join("t.v3"), IndexFormat::V3).unwrap();
        assert!(v3 < v2, "v3 ({v3}) must be strictly smaller than v2 ({v2})");
        let cold = GksIndex::load(&dir.join("t.v3")).unwrap();
        assert_eq!(cold.decoded_terms(), 0);
        assert!(cold.bytes_mapped() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
