//! Figure 9: response time vs number of query keywords n ∈ {2,4,8,16}. With
//! |SL| growing roughly proportionally to n and the per-entry cost adding a
//! log n factor, RT grows mildly super-linearly in n — the paper observes
//! "the change in RT is logarithmic in n" once |SL| is accounted for.

use gks_core::query::Query;
use gks_core::search::SearchOptions;

use crate::table::TextTable;
use crate::timed_search;
use crate::workloads::{nasa_engine, swissprot_corpus};

fn distinct(names: &[String], n: usize) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(n);
    for name in names {
        if !out.contains(name) {
            out.push(name.clone());
            if out.len() == n {
                break;
            }
        }
    }
    out
}

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("== Figure 9: response time vs keywords in query (n) ==\n");
    let (nasa, nasa_names) = nasa_engine(4000, 2016);
    let (sp_corpus, sp_names) = swissprot_corpus(4000, 2017);
    let sp = gks_core::engine::Engine::build(&sp_corpus, gks_index::IndexOptions::default())
        .expect("index");

    for (label, engine, names) in
        [("NASA-like", &nasa, &nasa_names), ("SwissProt-like", &sp, &sp_names)]
    {
        let mut t = TextTable::new(&["n", "|SL|", "RT (µs)", "hits"]);
        for n in [2usize, 4, 8, 16] {
            let kws = distinct(names, n);
            let q = Query::from_keywords(kws).expect("query");
            let (us, resp) = timed_search(engine, &q, SearchOptions::with_s(1), 7);
            t.row(&[
                n.to_string(),
                resp.sl_len().to_string(),
                us.to_string(),
                resp.hits().len().to_string(),
            ]);
        }
        out.push_str(&format!("{label} (s = 1):\n{}\n", t.render()));
    }
    out.push_str(
        "expected shape: doubling n less than doubles RT once |SL| growth is factored out \
         (O(d·|SL|·log n)); the paper saw <2x RT going from n=8 to n=16 on NASA.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_returns_n_unique_names() {
        let names = vec!["a".to_string(), "b".into(), "a".into(), "c".into(), "d".into()];
        let d = distinct(&names, 3);
        assert_eq!(d, vec!["a", "b", "c"]);
    }
}
