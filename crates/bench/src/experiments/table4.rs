//! Table 4: data size, index size, XML depth, index preparation time per
//! dataset — and the claim that "index preparation time increases linearly
//! with the data size".

use std::time::Instant;

use gks_datagen::Dataset;
use gks_index::{Corpus, GksIndex, IndexOptions};

use crate::table::TextTable;

fn human(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1}MB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1}KB", bytes as f64 / (1 << 10) as f64)
    }
}

/// Scales chosen to keep the paper's *relative* dataset ordering (SIGMOD
/// smallest … DBLP largest) while staying laptop-friendly.
pub fn scales() -> [(Dataset, usize); 7] {
    [
        (Dataset::SigmodRecord, 40),
        (Dataset::Mondial, 120),
        (Dataset::Plays, 12),
        (Dataset::TreeBank, 600),
        (Dataset::SwissProt, 1500),
        (Dataset::ProteinSequence, 4000),
        (Dataset::Dblp, 25_000),
    ]
}

/// Runs the experiment.
pub fn run() -> String {
    let mut t = TextTable::new(&[
        "Data Set",
        "Data Size",
        "Index Size",
        "XML Depth",
        "Prep Time",
        "Entities",
    ]);
    let dir = std::env::temp_dir().join("gks-table4");
    std::fs::create_dir_all(&dir).expect("tmp dir");

    let mut linear_check = String::new();
    for (ds, scale) in scales() {
        let xml = ds.generate(scale, 2016);
        let corpus = Corpus::from_named_strs([(ds.name(), xml)]).expect("corpus");
        let start = Instant::now();
        let index = GksIndex::build(&corpus, IndexOptions::default()).expect("index");
        let build = start.elapsed();
        let path = dir.join(format!("{}.gksix", ds.name().replace(' ', "_")));
        let index_size = index.save(&path).expect("save");
        std::fs::remove_file(&path).ok();
        t.row(&[
            ds.name().to_string(),
            human(corpus.total_bytes() as u64),
            human(index_size),
            index.stats().max_depth.to_string(),
            format!("{:.2}s", build.as_secs_f64()),
            index.stats().census.entity.to_string(),
        ]);
    }

    // Linearity: DBLP at 1×, 2×, 4× scale.
    let mut base_time = 0.0;
    let mut base_bytes = 0u64;
    for (i, factor) in [1usize, 2, 4].into_iter().enumerate() {
        let xml = Dataset::Dblp.generate(6000 * factor, 7);
        let corpus = Corpus::from_named_strs([("dblp", xml)]).expect("corpus");
        let start = Instant::now();
        let _ = GksIndex::build(&corpus, IndexOptions::default()).expect("index");
        let secs = start.elapsed().as_secs_f64();
        if i == 0 {
            base_time = secs;
            base_bytes = corpus.total_bytes() as u64;
        }
        linear_check.push_str(&format!(
            "  {}x data ({}) -> {:.2}s ({:.2}x base time)\n",
            factor,
            human(corpus.total_bytes() as u64),
            secs,
            secs / base_time
        ));
        let _ = base_bytes;
    }

    format!(
        "== Table 4: index size and preparation time ==\n{}\n\
         linearity check (DBLP, paper: \"index preparation time increases linearly\"):\n{}",
        t.render(),
        linear_check
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_size_comparable_to_data_size() {
        // Table 4's key property: the index is the same order of magnitude
        // as the raw data (0.8–1.0× in the paper).
        let xml = Dataset::Dblp.generate(2000, 3);
        let corpus = Corpus::from_named_strs([("dblp", xml)]).unwrap();
        let index = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let bytes = index.to_bytes().len() as f64;
        let raw = corpus.total_bytes() as f64;
        assert!(bytes < raw * 1.6, "index {bytes} vs raw {raw}");
        assert!(bytes > raw * 0.2, "index {bytes} vs raw {raw}");
    }
}
