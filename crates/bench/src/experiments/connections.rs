//! High-connection serving: the event-driven connection layer's headline
//! claim, measured. One reactor thread owns every socket and hands only
//! complete requests to the worker pool, so the server keeps *answering*
//! while thousands of idle keep-alive connections sit parked in the poll
//! set — the regime where the old thread-per-connection-read design
//! either ran out of workers or ran out of threads.
//!
//! Two sections:
//!
//! * **open-connection sweep** — the same closed-loop keep-alive workload
//!   measured with 0 / 1k / 4k extra idle connections held open for the
//!   whole run. The bar is *correctness under population*: zero 5xx and
//!   zero transport errors at every row. Raw QPS is expected to fall with
//!   the poll-set size on this container — `poll(2)` rescans every pollfd
//!   each round, and on a single core that O(open conns) scan timeshares
//!   with the workers instead of overlapping them. The old design did not
//!   degrade here; it stopped accepting. The sweep stops at 4k because
//!   client and server share one process, so each held connection burns
//!   two file descriptors from one budget.
//! * **slowloris** — 256 connections that send half a request head and
//!   stall, beside the normal workload. The stalled readers must pin poll
//!   slots, never worker threads: zero 5xx on the measured side is the
//!   bar. The leg then outwaits a short read deadline with the stalled
//!   connections still open and checks the server 408-evicted them.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use gks_server::client::http_get;
use gks_server::loadgen::{self, LoadgenConfig, Pacing, WorkloadEntry};
use gks_server::metrics::metric_value;
use gks_server::{serve, ServeConfig};

use crate::table::TextTable;
use crate::workloads::nasa_engine;

/// One keep-alive closed-loop run with `held` idle connections open for
/// its duration. The holders are opened here rather than through
/// loadgen's `connections` knob so `/metrics` can be scraped while the
/// population is still connected — `gks_conn_open` is a point-in-time
/// gauge, and scraping after the holders drop would read ~0.
fn drive(
    engine: &Arc<gks_core::engine::Engine>,
    workload: &[WorkloadEntry],
    held: usize,
) -> Result<(loadgen::LoadReport, String), String> {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        max_connections: 12_000,
        ..ServeConfig::default()
    };
    let server =
        serve(Arc::clone(engine), config).map_err(|e| format!("server failed to start: {e}"))?;
    let mut holders = Vec::with_capacity(held);
    for _ in 0..held {
        match std::net::TcpStream::connect(server.local_addr()) {
            Ok(conn) => holders.push(conn),
            Err(e) => return Err(format!("holder connect failed at {}: {e}", holders.len())),
        }
    }
    let load = LoadgenConfig {
        addr: server.local_addr(),
        clients: 4,
        requests_per_client: 500,
        zipf_s: 1.0,
        seed: 2016,
        timeout: Duration::from_secs(10),
        pacing: Pacing::Closed,
        keep_alive: true,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&load, workload);
    let exposition = http_get(server.local_addr(), "/metrics", Duration::from_secs(5))
        .map(|r| r.body_text())
        .unwrap_or_default();
    drop(holders);
    server.shutdown();
    Ok((report, exposition))
}

/// The slowloris leg: a server with a short read deadline, 256 stalled
/// partial-head connections held open by this function (loadgen's holders
/// drop when its run ends, which reads as EOF, not as a deadline
/// overrun), the measured workload beside them, then a wait past the
/// deadline so the reactor's sweep actually evicts the stalled readers
/// while we scrape the counter.
fn slowloris_leg(
    engine: &Arc<gks_core::engine::Engine>,
    workload: &[WorkloadEntry],
) -> Result<String, String> {
    const STALLED: usize = 256;
    let deadline = Duration::from_millis(150);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        max_connections: 12_000,
        deadline,
        ..ServeConfig::default()
    };
    let server =
        serve(Arc::clone(engine), config).map_err(|e| format!("server failed to start: {e}"))?;
    let mut stalled = Vec::with_capacity(STALLED);
    for _ in 0..STALLED {
        match std::net::TcpStream::connect(server.local_addr()) {
            Ok(mut conn) => {
                // Half a request head: the server has the first byte (so the
                // read deadline is armed) but never a complete request.
                let _ = conn.write(b"GET /search?q=slowloris HTTP/1.1\r\nHost: gks\r\n");
                stalled.push(conn);
            }
            Err(e) => return Err(format!("slowloris connect failed: {e}")),
        }
    }
    let load = LoadgenConfig {
        addr: server.local_addr(),
        clients: 4,
        requests_per_client: 500,
        zipf_s: 1.0,
        seed: 2016,
        timeout: Duration::from_secs(10),
        pacing: Pacing::Closed,
        keep_alive: true,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&load, workload);
    // Outwait the read deadline (plus sweep slack) with the stalled
    // connections still open, so the evictions land before the scrape.
    std::thread::sleep(deadline + Duration::from_millis(250));
    let exposition = http_get(server.local_addr(), "/metrics", Duration::from_secs(5))
        .map(|r| r.body_text())
        .unwrap_or_default();
    drop(stalled);
    server.shutdown();
    let evicted = metric_value(&exposition, "gks_conn_evictions_total").unwrap_or(-1);
    Ok(format!(
        "== Slowloris ({STALLED} stalled readers beside the workload, {}ms read deadline) ==\n\
         measured side: {:.0} qps, p99 {} µs, {} 5xx, {} transport error(s)\n\
         server side:   {evicted} eviction(s) recorded ({})\n\
         expected shape: the stalled readers occupy poll slots, not workers — the \
         measured workload keeps serving with zero 5xx — and once the read deadline \
         passes, the sweep evicts every stalled connection with a 408.\n",
        deadline.as_millis(),
        report.qps(),
        report.percentile(0.99),
        report.server_errors,
        report.transport_errors,
        if evicted >= STALLED as i64 {
            "all stalled readers 408-evicted"
        } else {
            "UNEXPECTED: below the stalled count"
        },
    ))
}

/// Runs the experiment.
pub fn run() -> String {
    let (engine, names) = nasa_engine(1000, 2016);
    let engine = Arc::new(engine);
    let workload: Vec<WorkloadEntry> = names
        .iter()
        .take(16)
        .map(|n| WorkloadEntry { query: n.clone(), s: "1".to_string() })
        .collect();
    let mut out = String::new();

    // Warm-up run pays the one-time costs off the books.
    if let Err(e) = drive(&engine, &workload, 0) {
        return format!("== High-connection serving ==\n{e}\n");
    }

    let mut t = TextTable::new(&[
        "held conns",
        "qps",
        "p50 µs",
        "p99 µs",
        "5xx",
        "transport",
        "open@scrape",
        "parked",
    ]);
    let mut qps_by_held: Vec<(usize, f64)> = Vec::new();
    for held in [0usize, 1_000, 4_000] {
        // Best of 2: shared-machine noise resistance, same policy as the
        // serving experiment's A/B legs.
        let mut best: Option<(loadgen::LoadReport, String)> = None;
        for _ in 0..2 {
            match drive(&engine, &workload, held) {
                Ok(pair) if best.as_ref().is_none_or(|(b, _)| pair.0.qps() > b.qps()) => {
                    best = Some(pair);
                }
                Ok(_) => {}
                Err(e) => return format!("== High-connection serving ==\n{e}\n"),
            }
        }
        let Some((report, exposition)) = best else {
            return "== High-connection serving ==\nno runs\n".to_string();
        };
        qps_by_held.push((held, report.qps()));
        t.row(&[
            held.to_string(),
            format!("{:.0}", report.qps()),
            report.percentile(0.5).to_string(),
            report.percentile(0.99).to_string(),
            report.server_errors.to_string(),
            report.transport_errors.to_string(),
            metric_value(&exposition, "gks_conn_open").unwrap_or(-1).to_string(),
            metric_value(&exposition, "gks_conn_parked").unwrap_or(-1).to_string(),
        ]);
    }
    let qps_0 = qps_by_held.first().map_or(0.0, |&(_, q)| q);
    let qps_4k = qps_by_held.last().map_or(0.0, |&(_, q)| q);
    let change_pct = if qps_0 > 0.0 {
        (qps_4k - qps_0) / qps_0 * 100.0
    } else {
        0.0
    };
    out.push_str(&format!(
        "== Open-connection sweep (keep-alive, 4 clients, 2000 requests, best of 2) ==\n{}\n\
         QPS change at 4k held connections vs 0: {change_pct:+.1}%\n\
         reading the rows: the bar is zero 5xx / zero transport errors at every \
         population — the pre-reactor design stopped accepting at pool size instead \
         of degrading. QPS falls with the poll-set size on this box because poll(2) \
         rescans every pollfd per round and the single core timeshares that \
         O(open conns) scan with the workers; on multi-core the scan overlaps. The \
         open gauge (scraped while the holders were still connected) confirms the \
         population was really there; parked stays ~0 because idle holders sit \
         between requests, not mid-request. 10k is out of reach here only because \
         loadgen and server share one process (two fds per connection against one \
         ulimit).\n\n",
        t.render()
    ));

    // -- Slowloris: stalled partial readers ride alongside the measured
    // workload, then outstay a short read deadline so the 408 sweep is
    // observable in gks_conn_evictions_total.
    match slowloris_leg(&engine, &workload) {
        Ok(section) => out.push_str(&section),
        Err(e) => out.push_str(&format!("== Slowloris ==\n{e}\n")),
    }
    out
}
