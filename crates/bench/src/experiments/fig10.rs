//! Figure 10: scalability — the SwissProt corpus replicated 1×/2×/3× (the
//! paper's 112/225/336 MB protocol), same query; "the number of LCE nodes
//! scales linearly… query processing time is scaling linearly with data
//! size, as expected."

use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::SearchOptions;
use gks_index::IndexOptions;

use crate::table::TextTable;
use crate::timed_search;
use crate::workloads::swissprot_corpus;

/// Runs the experiment.
pub fn run() -> String {
    let (base, names) = swissprot_corpus(8000, 2016);
    let kws: Vec<String> = {
        let mut out: Vec<String> = Vec::new();
        for n in &names {
            if !out.contains(n) {
                out.push(n.clone());
                if out.len() == 8 {
                    break;
                }
            }
        }
        out
    };
    let q = Query::from_keywords(kws).expect("query");

    let mut t = TextTable::new(&[
        "replication",
        "data bytes",
        "|SL|",
        "hits",
        "RT (µs)",
        "RT ratio",
        "RT/|SL| (µs)",
    ]);
    let mut base_rt = 0u64;
    for factor in [1usize, 2, 3] {
        let corpus = base.replicate(factor);
        let engine = Engine::build(&corpus, IndexOptions::default()).expect("index");
        let (us, resp) = timed_search(&engine, &q, SearchOptions::with_s(1), 11);
        if factor == 1 {
            base_rt = us.max(1);
        }
        t.row(&[
            format!("{factor}x"),
            corpus.total_bytes().to_string(),
            resp.sl_len().to_string(),
            resp.hits().len().to_string(),
            us.to_string(),
            format!("{:.2}", us as f64 / base_rt as f64),
            format!("{:.2}", us as f64 / resp.sl_len().max(1) as f64),
        ]);
    }
    format!(
        "== Figure 10: response time vs dataset size (replicated SwissProt) ==\n{}\n\
         expected shape: |SL| and hit count scale exactly 1:2:3 with replication; RT scales \
         near-linearly, with a moderate per-entry drift (RT/|SL|) from cache pressure as the \
         node table grows — the algorithmic cost per entry is constant (§4.2).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use gks_core::engine::Engine;
    use gks_core::query::Query;
    use gks_core::search::SearchOptions;
    use gks_index::IndexOptions;

    use crate::workloads::swissprot_corpus;

    #[test]
    fn hits_scale_linearly_with_replication() {
        let (base, names) = swissprot_corpus(200, 3);
        let q = Query::from_keywords([names[0].clone()]).unwrap();
        let h1 = {
            let e = Engine::build(&base, IndexOptions::default()).unwrap();
            e.search(&q, SearchOptions::with_s(1)).unwrap().hits().len()
        };
        let h3 = {
            let e = Engine::build(&base.replicate(3), IndexOptions::default()).unwrap();
            e.search(&q, SearchOptions::with_s(1)).unwrap().hits().len()
        };
        assert_eq!(h3, 3 * h1, "LCE count scales linearly (paper §7.1.3)");
    }
}
