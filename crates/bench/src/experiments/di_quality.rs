//! DI quality against generator ground truth (beyond the paper's Table 8,
//! which can only eyeball relevance): for a single-author DBLP query, the
//! most relevant co-author *by construction* is the one sharing the most
//! records with the queried author — does the top of the DI list find them?
//! Also reports the recursive-DI convergence behaviour (§2.3's `R^r_Q`).

use gks_core::di::DiOptions;
use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::SearchOptions;
use gks_datagen::dblp;
use gks_index::{Corpus, IndexOptions};

use crate::table::TextTable;

/// The queried author's co-authors ranked by shared-record count.
fn coauthor_ranking(out: &dblp::Output, author: &str) -> Vec<(String, usize)> {
    let mut counts: std::collections::HashMap<&str, usize> = Default::default();
    for r in &out.records {
        if r.authors.iter().any(|a| a == author) {
            for a in &r.authors {
                if a != author {
                    *counts.entry(a.as_str()).or_default() += 1;
                }
            }
        }
    }
    let mut v: Vec<(String, usize)> = counts.into_iter().map(|(a, c)| (a.to_string(), c)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Position (1-based) of the true top co-author in the DI list, if present.
fn di_rank_of_true_coauthor(
    engine: &Engine,
    author: &str,
    truth: &[(String, usize)],
    top_m: usize,
) -> Option<usize> {
    let q = Query::from_keywords([author.to_string()]).expect("query");
    let r = engine.search(&q, SearchOptions::with_s(1)).expect("search");
    let di = engine.discover_di(&r, &DiOptions { top_m, ..Default::default() });
    let best = &truth.first()?.0;
    di.iter()
        .filter(|i| i.path.last().map(String::as_str) == Some("author"))
        .position(|i| &i.value == best)
        .map(|p| p + 1)
}

/// Runs the experiment.
pub fn run() -> String {
    let out = dblp::generate(&dblp::Config { articles: 1500, ..Default::default() }, 2016);
    let corpus = Corpus::from_named_strs([("dblp", out.xml.clone())]).expect("corpus");
    let engine = Engine::build(&corpus, IndexOptions::default()).expect("index");

    let mut t = TextTable::new(&["author", "true top co-author", "shared", "DI rank"]);
    let mut hits_at_3 = 0usize;
    let mut total = 0usize;
    for cluster in out.clusters.iter().take(8) {
        let author = &cluster[0];
        let truth = coauthor_ranking(&out, author);
        if truth.is_empty() {
            continue;
        }
        total += 1;
        let rank = di_rank_of_true_coauthor(&engine, author, &truth, 10);
        if rank.is_some_and(|r| r <= 3) {
            hits_at_3 += 1;
        }
        t.row(&[
            author.clone(),
            truth[0].0.clone(),
            truth[0].1.to_string(),
            rank.map_or("—".to_string(), |r| r.to_string()),
        ]);
    }

    // Recursive DI convergence: round sizes for one author.
    let q = Query::from_keywords([out.clusters[0][0].clone()]).expect("query");
    let rounds = engine
        .recursive_di(
            &q,
            SearchOptions::with_s(1),
            &DiOptions { top_m: 3, ..Default::default() },
            3,
        )
        .expect("recursive di");
    let round_sizes: Vec<String> = rounds
        .iter()
        .map(|r| format!("{} hits / {} insights", r.response.hits().len(), r.insights.len()))
        .collect();

    format!(
        "== DI quality vs generator ground truth ==\n{}\n\
         true top co-author in DI top-3 for {hits_at_3}/{total} authors\n\
         recursive DI rounds (author 0): {}\n\
         expected shape: the rank-weighted DI surfaces the most-shared co-author near the \
         top (the paper's QD1 walk-through behaviour), and recursion keeps producing \
         non-empty rounds.\n",
        t.render(),
        round_sizes.join(" → ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn di_surfaces_true_top_coauthor_for_most_authors() {
        let out = dblp::generate(&dblp::Config { articles: 900, ..Default::default() }, 7);
        let corpus = Corpus::from_named_strs([("dblp", out.xml.clone())]).unwrap();
        let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();
        let mut found = 0usize;
        let mut total = 0usize;
        for cluster in out.clusters.iter().take(6) {
            let author = &cluster[0];
            let truth = coauthor_ranking(&out, author);
            if truth.is_empty() || truth[0].1 < 2 {
                continue;
            }
            total += 1;
            if di_rank_of_true_coauthor(&engine, author, &truth, 10).is_some_and(|r| r <= 3) {
                found += 1;
            }
        }
        assert!(total >= 3, "not enough evaluable authors");
        assert!(found * 2 >= total, "DI found the top co-author for {found}/{total}");
    }

    #[test]
    fn coauthor_ranking_counts_shared_records() {
        let out = dblp::Output {
            xml: String::new(),
            clusters: vec![],
            records: vec![
                dblp::Record {
                    authors: vec!["A".into(), "B".into()],
                    year: 2000,
                    venue: "V".into(),
                },
                dblp::Record {
                    authors: vec!["A".into(), "B".into(), "C".into()],
                    year: 2001,
                    venue: "V".into(),
                },
                dblp::Record { authors: vec!["D".into()], year: 2002, venue: "V".into() },
            ],
        };
        let ranking = coauthor_ranking(&out, "A");
        assert_eq!(ranking[0], ("B".to_string(), 2));
        assert_eq!(ranking[1], ("C".to_string(), 1));
    }
}
