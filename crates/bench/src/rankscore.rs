//! The paper's rank-score measure (§7.3).
//!
//! "The XML nodes that contain the highest number of keywords from query Q
//! in their sub-tree are called the *true* XML nodes. Let w be the lowest
//! rank of a true XML node in the list L. To each true XML node we assign a
//! weight of (w+1−i) where i is the rank of the true node in L; wa is their
//! sum, wt = w(w+1)/2, and the rank score is wa/wt." A score of 1 means no
//! true node ranks below a non-true node.

use gks_core::search::Response;

/// Computes the paper's rank score over a ranked response. Returns 1.0 for
/// an empty response (nothing is misranked).
pub fn rank_score(response: &Response) -> f64 {
    rank_score_of_counts(&response.hits().iter().map(|h| h.keyword_count).collect::<Vec<_>>())
}

/// Core computation over the ranked list of per-hit keyword counts.
pub fn rank_score_of_counts(counts: &[u32]) -> f64 {
    let Some(&max) = counts.iter().max() else {
        return 1.0;
    };
    // 1-based positions of true nodes (those matching `max` keywords).
    let positions: Vec<usize> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c == max)
        .map(|(i, _)| i + 1)
        .collect();
    let w = *positions.last().expect("at least one true node");
    let wa: usize = positions.iter().map(|&i| w + 1 - i).sum();
    let wt = w * (w + 1) / 2;
    wa as f64 / wt as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        // True nodes (3 keywords) occupy the top of the list.
        assert_eq!(rank_score_of_counts(&[3, 3, 2, 1]), 1.0);
        assert_eq!(rank_score_of_counts(&[5]), 1.0);
        assert_eq!(rank_score_of_counts(&[]), 1.0);
        assert_eq!(rank_score_of_counts(&[2, 2, 2]), 1.0);
    }

    #[test]
    fn late_true_node_is_penalized() {
        // One true node at position 3: w=3, wa = 3+1-3 = 1, wt = 6.
        let s = rank_score_of_counts(&[2, 2, 3]);
        assert!((s - 1.0 / 6.0).abs() < 1e-12, "{s}");
    }

    #[test]
    fn mixed_positions() {
        // True nodes at positions 1 and 3: w=3, wa = (3) + (1) = 4, wt = 6.
        let s = rank_score_of_counts(&[4, 1, 4]);
        assert!((s - 4.0 / 6.0).abs() < 1e-12, "{s}");
    }

    #[test]
    fn monotone_in_true_node_position() {
        let better = rank_score_of_counts(&[3, 2, 2, 2]);
        let worse = rank_score_of_counts(&[2, 2, 2, 3]);
        assert!(better > worse);
    }
}
