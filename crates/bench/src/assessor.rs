//! Simulated crowd assessment of GKS vs SLCA responses (§7.5 substitution).
//!
//! The paper asked 40 users to rate each query's two responses on a 1–4
//! scale (1 = "GKS very useful" … 4 = "SLCA very useful"). That study cannot
//! be re-run here, so a deterministic *assessor model* scores the measurable
//! proxies the users plausibly reacted to:
//!
//! * SLCA returned NULL or only a document root → the GKS ranked list is the
//!   only useful answer;
//! * GKS's rank score (§7.3) — whether the most complete matches are on top;
//! * response volume — an empty GKS response cannot be useful either.
//!
//! Per-user noise (seeded) spreads the scores into a 1–4 histogram the way
//! human panels do. The *shape* to reproduce is the paper's: ~90% of
//! (user, query) pairs prefer GKS.

use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::SearchOptions;
use gks_dewey::DeweyId;
use rand::Rng as _;
use rand::SeedableRng;

use crate::rankscore::rank_score;

/// Ratings histogram for one query: `counts[r-1]` users gave rating `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[0]` = rating 1 ("GKS very useful") … `counts[3]` = rating 4.
    pub counts: [u32; 4],
}

impl Histogram {
    /// Users preferring GKS (ratings 1–2).
    pub fn gks_better(&self) -> u32 {
        self.counts[0] + self.counts[1]
    }

    /// Total users.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }
}

/// Assesses one query with `users` simulated assessors.
pub fn assess(
    engine: &Engine,
    query: &Query,
    slca: &[DeweyId],
    users: u32,
    seed: u64,
) -> Histogram {
    let response = engine.search(query, SearchOptions::with_s(1)).expect("search");

    // Objective quality signals.
    let slca_useless = slca.is_empty() || slca.iter().all(|v| v.depth() == 0);
    let gks_nonempty = !response.hits().is_empty();
    let gks_well_ranked = rank_score(&response) >= 0.9;

    // Base preference for GKS in [0, 3]: 3 = overwhelming.
    let base: f64 = match (gks_nonempty, slca_useless) {
        (true, true) => 2.5,   // GKS answers, SLCA has nothing → near-universal 1s/2s
        (true, false) => 1.35, // both answer; GKS adds partial matches, SLCA is focused
        (false, true) => 1.0,  // neither is useful; coin flips
        (false, false) => 0.4, // SLCA answers, GKS empty (cannot happen: RQ ⊇ SLCA region)
    } + if gks_well_ranked { 0.3 } else { 0.0 };

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut counts = [0u32; 4];
    for _ in 0..users {
        // Higher preference → lower rating. Noise models disagreement.
        let noisy = base + rng.gen_range(-0.9..0.9);
        let rating = if noisy >= 2.2 {
            1
        } else if noisy >= 1.2 {
            2
        } else if noisy >= 0.5 {
            3
        } else {
            4
        };
        counts[rating - 1] += 1;
    }
    Histogram { counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_index::{Corpus, IndexOptions};

    fn engine() -> Engine {
        let xml = "<r><a><x>alpha</x><y>beta</y></a><b><x>alpha</x></b></r>";
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        Engine::build(&corpus, IndexOptions::default()).unwrap()
    }

    #[test]
    fn useless_slca_yields_strong_gks_preference() {
        let e = engine();
        let q = Query::parse("alpha beta").unwrap();
        let h = assess(&e, &q, &[], 40, 1);
        assert_eq!(h.total(), 40);
        assert!(h.gks_better() >= 35, "{h:?}");
    }

    #[test]
    fn meaningful_slca_softens_preference() {
        let e = engine();
        let q = Query::parse("alpha beta").unwrap();
        let deep_slca = vec![DeweyId::new(gks_dewey::DocId(0), vec![0])];
        let with = assess(&e, &q, &deep_slca, 40, 1);
        let without = assess(&e, &q, &[], 40, 1);
        assert!(with.gks_better() <= without.gks_better(), "{with:?} vs {without:?}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let e = engine();
        let q = Query::parse("alpha").unwrap();
        assert_eq!(assess(&e, &q, &[], 40, 7), assess(&e, &q, &[], 40, 7));
    }
}
