//! Criterion micro-benchmarks for index construction (Table 4 axis):
//! build throughput per dataset shape, sequential vs parallel, and the
//! persistence round trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gks_datagen::Dataset;
use gks_index::{Corpus, GksIndex, IndexOptions};

/// Build throughput over the three structurally extreme datasets: flat-wide
/// (DBLP), attribute-heavy (Mondial), and deep (TreeBank).
fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    for (ds, scale) in
        [(Dataset::Dblp, 2000usize), (Dataset::Mondial, 60), (Dataset::TreeBank, 200)]
    {
        let xml = ds.generate(scale, 42);
        let corpus = Corpus::from_named_strs([(ds.name(), xml)]).unwrap();
        group.throughput(Throughput::Bytes(corpus.total_bytes() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ds.name()), &corpus, |b, corpus| {
            b.iter(|| GksIndex::build(corpus, IndexOptions::default()).unwrap());
        });
    }
    group.finish();
}

/// Sequential vs parallel build over a multi-document corpus.
fn bench_parallel_build(c: &mut Criterion) {
    let docs: Vec<(String, String)> = (0..8)
        .map(|i| (format!("dblp{i}"), Dataset::Dblp.generate(500, i as u64)))
        .collect();
    let corpus = Corpus::from_named_strs(docs).unwrap();
    let mut group = c.benchmark_group("parallel_build");
    group.throughput(Throughput::Bytes(corpus.total_bytes() as u64));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| GksIndex::build_parallel(&corpus, IndexOptions::default(), w).unwrap());
        });
    }
    group.finish();
}

/// Persistence: serialize and reload (the "onetime activity" of §2.4).
fn bench_persist(c: &mut Criterion) {
    let xml = Dataset::Dblp.generate(2000, 42);
    let corpus = Corpus::from_named_strs([("dblp", xml)]).unwrap();
    let index = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
    let bytes = index.to_bytes();
    let mut group = c.benchmark_group("persist");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("to_bytes", |b| b.iter(|| index.to_bytes()));
    group.bench_function("from_bytes", |b| b.iter(|| GksIndex::from_bytes(bytes.clone()).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_build, bench_parallel_build, bench_persist);
criterion_main!(benches);
