//! Criterion micro-benchmarks for GKS search latency: the Figure 8/9/10
//! axes (|SL|, n, corpus scale) at micro scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::SearchOptions;
use gks_datagen::{bio, nasa};
use gks_index::{Corpus, IndexOptions};

fn nasa_engine(scale: usize) -> (Engine, Vec<String>) {
    let out = nasa::generate(&nasa::Config { datasets: scale }, 42);
    let corpus = Corpus::from_named_strs([("nasa", out.xml)]).unwrap();
    (Engine::build(&corpus, IndexOptions::default()).unwrap(), out.last_names)
}

fn distinct(names: &[String], n: usize) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for name in names {
        if !out.contains(name) {
            out.push(name.clone());
            if out.len() == n {
                break;
            }
        }
    }
    out
}

/// RT vs number of keywords (Figure 9 axis).
fn bench_rt_vs_n(c: &mut Criterion) {
    let (engine, names) = nasa_engine(1200);
    let mut group = c.benchmark_group("rt_vs_n");
    for n in [2usize, 4, 8, 16] {
        let query = Query::from_keywords(distinct(&names, n)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &query, |b, q| {
            b.iter(|| engine.search(q, SearchOptions::with_s(1)).unwrap());
        });
    }
    group.finish();
}

/// RT vs corpus scale (Figure 10 axis).
fn bench_rt_vs_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt_vs_scale");
    for factor in [1usize, 2, 3] {
        let out = bio::generate_swissprot(&bio::SwissProtConfig { entries: 600 }, 7);
        let base = Corpus::from_named_strs([("sp", out.xml)]).unwrap();
        let corpus = base.replicate(factor);
        let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();
        let query = Query::from_keywords(distinct(&out.authors, 8)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(factor), &query, |b, q| {
            b.iter(|| engine.search(q, SearchOptions::with_s(1)).unwrap());
        });
    }
    group.finish();
}

/// RT vs threshold s (ablation: candidate volume shrinks as s grows).
fn bench_rt_vs_s(c: &mut Criterion) {
    let (engine, names) = nasa_engine(1200);
    let query = Query::from_keywords(distinct(&names, 8)).unwrap();
    let mut group = c.benchmark_group("rt_vs_s");
    for s in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| engine.search(&query, SearchOptions::with_s(s)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rt_vs_n, bench_rt_vs_scale, bench_rt_vs_s);
criterion_main!(benches);
