//! Substrate micro-benchmarks and design-choice ablations:
//! the FxHash-style hasher vs std's SipHash on Dewey-keyed maps (DESIGN.md
//! justifies the custom hasher), Porter stemming throughput, and the
//! delta-prefix Dewey codec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gks_dewey::{codec, DeweyId, DocId};
use gks_index::fasthash::FastMap;
use std::collections::HashMap;
use std::hint::black_box;

fn sample_ids(n: usize) -> Vec<DeweyId> {
    (0..n)
        .map(|i| {
            DeweyId::new(
                DocId((i % 4) as u32),
                vec![(i % 7) as u32, (i % 13) as u32, (i % 1000) as u32, (i % 3) as u32],
            )
        })
        .collect()
}

/// Ablation: FxHash vs SipHash for the node table's access pattern.
fn bench_hashers(c: &mut Criterion) {
    let ids = sample_ids(20_000);
    let mut group = c.benchmark_group("hasher_ablation");
    group.throughput(Throughput::Elements(ids.len() as u64));
    group.bench_function("fxhash_insert_lookup", |b| {
        b.iter(|| {
            let mut m: FastMap<DeweyId, u32> = FastMap::default();
            for (i, id) in ids.iter().enumerate() {
                m.insert(id.clone(), i as u32);
            }
            let mut acc = 0u64;
            for id in &ids {
                acc += u64::from(*m.get(id).unwrap());
            }
            black_box(acc)
        })
    });
    group.bench_function("siphash_insert_lookup", |b| {
        b.iter(|| {
            let mut m: HashMap<DeweyId, u32> = HashMap::new();
            for (i, id) in ids.iter().enumerate() {
                m.insert(id.clone(), i as u32);
            }
            let mut acc = 0u64;
            for id in &ids {
                acc += u64::from(*m.get(id).unwrap());
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Porter stemmer throughput over a realistic word mix.
fn bench_stemmer(c: &mut Criterion) {
    let words: Vec<String> = gks_datagen::pools::TITLE_WORDS
        .iter()
        .cycle()
        .take(10_000)
        .map(|w| format!("{w}ing"))
        .collect();
    let mut group = c.benchmark_group("text");
    group.throughput(Throughput::Elements(words.len() as u64));
    group.bench_function("porter_stem", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in &words {
                total += gks_text::stem(w).len();
            }
            black_box(total)
        })
    });
    let prose = words.join(" ");
    group.throughput(Throughput::Bytes(prose.len() as u64));
    group.bench_function("analyze", |b| {
        let analyzer = gks_text::Analyzer::default();
        b.iter(|| black_box(analyzer.analyze(&prose).len()))
    });
    group.finish();
}

/// Dewey codec throughput (the persistence hot path).
fn bench_codec(c: &mut Criterion) {
    let mut ids = sample_ids(20_000);
    ids.sort();
    ids.dedup();
    let mut encoded = bytes::BytesMut::new();
    codec::encode_sorted_run(&ids, &mut encoded);
    let encoded = encoded.freeze();
    let mut group = c.benchmark_group("dewey_codec");
    group.throughput(Throughput::Elements(ids.len() as u64));
    group.bench_function("encode_sorted_run", |b| {
        b.iter(|| {
            let mut out = bytes::BytesMut::with_capacity(encoded.len());
            codec::encode_sorted_run(&ids, &mut out);
            black_box(out.len())
        })
    });
    group.bench_function("decode_sorted_run", |b| {
        b.iter(|| {
            let mut slice = encoded.clone();
            black_box(codec::decode_sorted_run(&mut slice).unwrap().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hashers, bench_stemmer, bench_codec);
criterion_main!(benches);
