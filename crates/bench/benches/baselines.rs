//! Criterion micro-benchmarks: GKS vs the LCA-family baselines (the Lemma 3
//! comparison, plus SLCA algorithm head-to-head).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gks_baselines::{naive::naive_gks, query_posting_lists, slca, slca_stack};
use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::SearchOptions;
use gks_datagen::dblp;
use gks_index::{Corpus, IndexOptions};

fn setup(n_articles: usize) -> (Engine, Vec<String>) {
    let out = dblp::generate(&dblp::Config { articles: n_articles, ..Default::default() }, 42);
    let corpus = Corpus::from_named_strs([("dblp", out.xml)]).unwrap();
    let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();
    let mut authors: Vec<String> = Vec::new();
    for c in &out.clusters {
        for a in c {
            if !authors.contains(a) {
                authors.push(a.clone());
            }
        }
    }
    (engine, authors)
}

/// GKS single pass vs naive subset enumeration at s = n/2 (Lemma 3).
fn bench_gks_vs_naive(c: &mut Criterion) {
    let (engine, authors) = setup(800);
    let mut group = c.benchmark_group("gks_vs_naive");
    for n in [4usize, 8] {
        let s = n / 2;
        let query = Query::from_keywords(authors[..n].to_vec()).unwrap();
        let lists = query_posting_lists(engine.index(), &query);
        group.bench_with_input(BenchmarkId::new("gks", n), &query, |b, q| {
            b.iter(|| engine.search(q, SearchOptions::with_s(s)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &lists, |b, lists| {
            b.iter(|| naive_gks(lists, s));
        });
    }
    group.finish();
}

/// The two SLCA implementations head to head.
fn bench_slca_algorithms(c: &mut Criterion) {
    let (engine, authors) = setup(2000);
    let query = Query::from_keywords(authors[..3].to_vec()).unwrap();
    let lists = query_posting_lists(engine.index(), &query);
    let mut group = c.benchmark_group("slca");
    group.bench_function("ca_map", |b| b.iter(|| slca::slca_ca_map(&lists)));
    group.bench_function("indexed_lookup", |b| b.iter(|| slca::slca_indexed_lookup(&lists)));
    group.bench_function("stack", |b| b.iter(|| slca_stack::slca_stack(&lists)));
    group.finish();
}

criterion_group!(benches, bench_gks_vs_naive, bench_slca_algorithms);
criterion_main!(benches);
