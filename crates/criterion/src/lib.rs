//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal wall-clock harness exposing the API surface the GKS benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Timing model: each benchmark runs a short warm-up, then a fixed number of
//! timed batches, and reports the per-iteration median to stdout. No
//! statistical analysis, HTML reports, or baseline comparison — this is for
//! relative, same-machine readings only. Under `--test` (as passed by
//! `cargo test --benches`) each benchmark body runs exactly once.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Reads harness flags (`--test`) like the real crate's
    /// `Criterion::default().configure_from_args()`.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), test_mode: self.test_mode, _parent: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        run_one(name, test_mode, f);
    }
}

/// A named group of benchmarks (subset of `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the amount of work per iteration; accepted for source
    /// compatibility (the shim does not report rates).
    pub fn throughput(&mut self, _t: Throughput) {}

    /// Accepted for source compatibility; the shim's batch count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` as a benchmark named `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.test_mode, |b| f(b));
        self
    }

    /// Runs `f` with `input` as a benchmark named `id` within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.test_mode, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Benchmark identifier (subset of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name qualified by a parameter value.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{name}/{param}") }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId { label: param.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Work-per-iteration declaration (subset of `criterion::Throughput`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording per-iteration durations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up, then size batches so each takes ~10ms.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1);
        let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u32;
        for _ in 0..15 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, test_mode: bool, mut f: F) {
    let mut b = Bencher { test_mode, samples: Vec::new() };
    f(&mut b);
    if test_mode {
        println!("test-mode bench {label}: ok");
        return;
    }
    b.samples.sort();
    let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or_default();
    println!("bench {label}: median {median:?} over {} samples", b.samples.len());
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
