//! No-op derive macros backing the offline [`serde`] shim.
//!
//! The workspace only ever *derives* `Serialize` / `Deserialize` (the types
//! are serialized via the hand-rolled codec in `gks-index::persist`, never
//! through serde), so the derives expand to nothing. The blanket impls in
//! the `serde` shim crate make every type satisfy the marker traits.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
