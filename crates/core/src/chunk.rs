//! XML chunk rendering for hits.
//!
//! "GKS returns a well-constructed XML chunk" (paper §1.2, Example 2): an
//! entity hit is presented as an XML fragment rooted at the entity's label,
//! containing its context attributes with their full element paths — the
//! response shape of the paper's Figure 2(b). Entries sharing path prefixes
//! are merged, so three `<Student>` values render under one `<Students>`
//! wrapper.

use gks_index::GksIndex;
use gks_xml::{Writer, WriterError};

use crate::search::Hit;

/// Renders an entity hit as a pretty-printed XML fragment. Non-entity hits
/// (no stored attributes) render as an empty element with a comment noting
/// the matched node.
///
/// The writer calls are balanced by construction, so the `Err` arm is
/// unreachable in practice; it is propagated rather than unwrapped so a
/// future bug surfaces as a typed error, not a panic mid-search.
pub fn render_xml_chunk(index: &GksIndex, hit: &Hit) -> Result<String, WriterError> {
    let label = index.node_table().label_name(&hit.node).unwrap_or("node");
    let mut entries: Vec<(Vec<&str>, &str)> = index
        .attr_store()
        .entries(&hit.node)
        .iter()
        .map(|e| {
            let path: Vec<&str> =
                e.path.iter().map(|&l| index.node_table().labels().name(l)).collect();
            (path, e.value.as_str())
        })
        .collect();
    // Stable order groups shared prefixes together; the sort is stable on
    // the original order for equal paths, preserving document order of
    // repeated values.
    entries.sort_by(|a, b| a.0.cmp(&b.0));

    let mut w = Writer::pretty();
    w.start(label, &[])?;
    // Open-element stack below the entity root, merged across entries.
    let mut open: Vec<&str> = Vec::new();
    for (path, value) in &entries {
        let (wrappers, leaf) = match path.split_last() {
            Some((leaf, wrappers)) => (wrappers, *leaf),
            None => continue,
        };
        // Close elements that diverge, open the missing ones.
        let shared = open.iter().zip(wrappers.iter()).take_while(|(a, b)| a == b).count();
        for _ in shared..open.len() {
            open.pop();
            w.end()?;
        }
        for name in &wrappers[shared..] {
            w.start(name, &[])?;
            open.push(name);
        }
        w.element_text(leaf, &[], value)?;
    }
    for _ in 0..open.len() {
        w.end()?;
    }
    w.end()?;
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::search::{search, SearchOptions};
    use gks_index::{Corpus, IndexOptions};

    fn course_hit() -> (GksIndex, Hit) {
        let xml = r#"<Area><Name>DB</Name><Courses>
            <Course><Name>Data Mining</Name><Students>
                <Student>Karen</Student><Student>Mike</Student></Students></Course>
            <Course><Name>AI</Name><Students>
                <Student>Karen</Student><Student>John</Student></Students></Course>
        </Courses></Area>"#;
        let corpus = Corpus::from_named_strs([("uni", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let q = Query::parse("karen mike").unwrap();
        let r = search(&ix, &q, SearchOptions::with_s(2)).unwrap();
        let hit = r.hits()[0].clone();
        (ix, hit)
    }

    #[test]
    fn chunk_matches_figure_2b_shape() {
        let (ix, hit) = course_hit();
        let chunk = render_xml_chunk(&ix, &hit).unwrap();
        // Must be well-formed…
        let doc = gks_xml::Document::parse(&chunk).unwrap();
        assert_eq!(doc.root().name(), "Course");
        // …with the Name attribute and a single merged Students wrapper.
        assert_eq!(doc.root().find_all("Name").count(), 1);
        assert_eq!(doc.root().find_all("Students").count(), 1);
        let students: Vec<String> = doc.root().find_all("Student").map(|s| s.text()).collect();
        assert_eq!(students, vec!["Karen", "Mike"]);
    }

    #[test]
    fn chunk_for_attributeless_hit_is_still_well_formed() {
        let xml = "<r><a><w>solo</w><x><w>solo</w></x></a></r>";
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let q = Query::parse("solo").unwrap();
        let r = search(&ix, &q, SearchOptions::with_s(1)).unwrap();
        for hit in r.hits() {
            let chunk = render_xml_chunk(&ix, hit).unwrap();
            gks_xml::Document::parse(&chunk).unwrap();
        }
    }
}
