//! A minimal recursive-descent JSON parser for test assertions and tooling.
//!
//! The engine *emits* JSON through hand-rolled writers ([`crate::wire`],
//! `gks-trace`, the server's query log); this module is the matching
//! *reader*, so round-trip tests and the smoke tooling can verify that every
//! emitted line is well-formed and carries the required fields without an
//! external crate (the workspace's `serde` is an offline marker shim).
//!
//! Scope: full JSON syntax as consumed by our own emitters — objects,
//! arrays, strings with `\uXXXX` and the short escapes, numbers (parsed as
//! `f64`), booleans, null. Not a general-purpose validator: numbers outside
//! `f64` range and duplicate object keys are accepted (last key wins), which
//! is fine for output we generate ourselves.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys are kept in a [`BTreeMap`] — emitted
/// documents are small and deterministic ordering helps test diffs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError { at: pos, what: "trailing characters after document" });
        }
        Ok(value)
    }

    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is a number with no
    /// fractional part representable in `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// This value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::String),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(JsonError { at: *pos, what: "unexpected character" }),
        None => Err(JsonError { at: *pos, what: "unexpected end of input" }),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static [u8],
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError { at: *pos, what: "invalid literal" })
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError { at: *pos, what: "expected object key" });
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError { at: *pos, what: "expected ':' after object key" });
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(JsonError { at: *pos, what: "expected ',' or '}' in object" }),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(JsonError { at: *pos, what: "expected ',' or ']' in array" }),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    *pos += 1; // opening '"'
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError { at: *pos, what: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        // Surrogate pairs: a high surrogate must be followed
                        // by an escaped low surrogate.
                        if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos + 5) == Some(&b'\\')
                                && bytes.get(*pos + 6) == Some(&b'u')
                            {
                                let low = parse_hex4(bytes, *pos + 7)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(JsonError {
                                        at: *pos,
                                        what: "invalid low surrogate",
                                    });
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(char::from_u32(c).ok_or(JsonError {
                                    at: *pos,
                                    what: "invalid surrogate pair",
                                })?);
                                *pos += 10; // uXXXX\uXXXX
                                continue;
                            }
                            return Err(JsonError { at: *pos, what: "lone high surrogate" });
                        }
                        if (0xDC00..0xE000).contains(&code) {
                            return Err(JsonError { at: *pos, what: "lone low surrogate" });
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or(JsonError { at: *pos, what: "invalid \\u escape" })?,
                        );
                        *pos += 4; // the XXXX; 'u' advances below
                    }
                    _ => return Err(JsonError { at: *pos, what: "invalid escape" }),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(JsonError { at: *pos, what: "raw control character in string" })
            }
            Some(_) => {
                // Copy one UTF-8 scalar (input is a &str, so boundaries are
                // valid by construction).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|_| JsonError { at: start, what: "invalid UTF-8 in string" })?,
                );
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, JsonError> {
    let mut code = 0u32;
    for i in 0..4 {
        let digit = bytes
            .get(at + i)
            .and_then(|b| char::from(*b).to_digit(16))
            .ok_or(JsonError { at: at + i, what: "bad \\u escape digits" })?;
        code = code * 16 + digit;
    }
    Ok(code)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError { at: start, what: "invalid number" })?;
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| JsonError { at: start, what: "invalid number" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"c":true,"d":null},"e":"x\"y\né"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(3));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Null));
        assert_eq!(v.get("e").and_then(Json::as_str), Some("x\"y\né"));
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("\"42\"").unwrap().as_u64(), None);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"\u{1}\"", "{\"a\":}", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn round_trips_wire_output() {
        // The wire writer escapes exactly what this parser unescapes.
        let mut out = String::new();
        crate::wire::push_json_str(&mut out, "a\"b\\c\nd\té\u{1}");
        let v = Json::parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\té\u{1}"));
    }
}
