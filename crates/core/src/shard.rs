//! The gather half of sharded search: merging per-shard answers into one
//! response that is byte-identical, on the wire, to the unsharded engine's.
//!
//! A corpus split by document (see `gks_index::shard`) yields shards whose
//! local answers compose losslessly: no corpus-global statistic enters the
//! potential-flow rank (§5), the sweep, or SLCA-style pruning — every
//! quantity a hit carries is a function of the hit's own subtree and the
//! query. A node's rank in its shard therefore equals its rank in the
//! monolithic index, and gathering reduces to:
//!
//! 1. **remap** each shard-local [`DocId`] to its global id by adding the
//!    shard's document base;
//! 2. **re-sort** the union of per-shard hits with the exact final
//!    comparator of [`crate::search`] (rank desc, keyword count desc,
//!    document order) and re-truncate to the request's limit — per-shard
//!    top-k lists are supersets of their slice of the global top-k;
//! 3. **union** the bookkeeping: `sl_len` sums, `missing` keywords are the
//!    per-index intersection (a keyword is absent globally iff absent from
//!    every shard), and DI observation walks the merged rank order against
//!    each hit's owning shard so refinement terms match the unsharded
//!    engine (see [`crate::di::DiAccumulator`]).

use std::sync::Arc;

use gks_dewey::{DeweyId, DocId};
use gks_index::{GksIndex, IndexError, ShardManifest, DEAD_DOC};
use gks_trace::{span, SpanKind};

use crate::cost::CostLedger;
use crate::di::{DiAccumulator, DiOptions, Insight};
use crate::engine::Engine;
use crate::error::QueryError;
use crate::query::Query;
use crate::search::{Hit, Response, SearchOptions, SearchTrace};

/// How one shard's local document ids renumber into global ids.
///
/// A frozen, contiguous shard set (PR 5's `gks index --shards`) uses plain
/// [`DocMap::Base`] offsets. Once a manifest carries deltas and tombstones
/// the tiling has holes — a shard's live documents map to the *manifest
/// document table's* numbering (which tracks what a full rebuild would
/// assign) — and each shard carries an explicit [`DocMap::Table`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocMap {
    /// `global = local + base`: the dense, nothing-deleted case.
    Base(u32),
    /// Explicit per-local mapping, with an inverse for gather lookups.
    Table {
        /// `forward[local] = global`, or `gks_index::DEAD_DOC` for a
        /// tombstoned local id (which can never appear in a masked
        /// engine's answer).
        forward: Vec<u32>,
        /// `(global, local)` pairs sorted by global id.
        inverse: Vec<(u32, u32)>,
    },
}

impl DocMap {
    /// A dense base-offset map.
    pub fn base(base: u32) -> DocMap {
        DocMap::Base(base)
    }

    /// An explicit map from a `forward[local] = global` table (dead locals
    /// hold `gks_index::DEAD_DOC`); builds the inverse index.
    pub fn table(forward: Vec<u32>) -> DocMap {
        let mut inverse: Vec<(u32, u32)> = forward
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g != DEAD_DOC)
            .map(|(local, &g)| (g, u32::try_from(local).unwrap_or(DEAD_DOC)))
            .collect();
        inverse.sort_unstable();
        DocMap::Table { forward, inverse }
    }

    /// The global id of shard-local document `local`, if it is live.
    pub fn to_global(&self, local: u32) -> Option<u32> {
        match self {
            DocMap::Base(base) => local.checked_add(*base),
            DocMap::Table { forward, .. } => {
                forward.get(local as usize).copied().filter(|&g| g != DEAD_DOC)
            }
        }
    }

    /// The shard-local id of global document `global`, if this shard owns
    /// it.
    pub fn to_local(&self, global: u32) -> Option<u32> {
        match self {
            DocMap::Base(base) => global.checked_sub(*base),
            DocMap::Table { inverse, .. } => inverse
                .binary_search_by_key(&global, |&(g, _)| g)
                .ok()
                .and_then(|i| inverse.get(i).map(|&(_, l)| l)),
        }
    }
}

/// A merged (gathered) response plus the per-hit shard provenance the wire
/// and DI layers need to resolve paths and attributes in the owning shard.
#[derive(Debug, Clone)]
pub struct ShardedResponse {
    response: Response,
    /// `origins[i]` is the shard ordinal that produced `response.hits()[i]`.
    origins: Vec<usize>,
    /// Local→global document renumbering of each shard, by shard ordinal.
    doc_maps: Vec<DocMap>,
    /// Each shard's own cost ledger, by shard ordinal (the merged response
    /// carries their sum).
    shard_costs: Vec<CostLedger>,
}

impl ShardedResponse {
    /// The merged response. Hits carry **global** document ids and are
    /// ranked exactly as the unsharded engine would rank them.
    pub fn response(&self) -> &Response {
        &self.response
    }

    /// Mutable access to the merged response — the server folds
    /// request-level cost (DI attributes, cache probes, rendered bytes)
    /// into the gathered ledger through this.
    pub fn response_mut(&mut self) -> &mut Response {
        &mut self.response
    }

    /// The shard ordinal that produced hit `i` (0 for out-of-range `i`).
    pub fn origin(&self, i: usize) -> usize {
        self.origins.get(i).copied().unwrap_or(0)
    }

    /// Hit `i`'s id in its owning shard's own document numbering — what
    /// node-table and attribute-store lookups against that shard expect.
    pub fn local_node(&self, i: usize) -> DeweyId {
        let Some(hit) = self.response.hits().get(i) else {
            return DeweyId::root(DocId(0));
        };
        let local = self
            .doc_maps
            .get(self.origin(i))
            .and_then(|m| m.to_local(hit.node.doc().0))
            .unwrap_or(0);
        DeweyId::new(DocId(local), hit.node.steps().to_vec())
    }

    /// Number of shards that contributed to the scatter.
    pub fn fan_out(&self) -> usize {
        self.doc_maps.len()
    }

    /// Each shard's own cost ledger, in shard order — the per-shard
    /// breakdown the explain surface renders. Their field-wise sum is the
    /// merged response's ledger.
    pub fn shard_costs(&self) -> &[CostLedger] {
        &self.shard_costs
    }
}

fn remap_hit(hit: &Hit, map: &DocMap) -> Hit {
    Hit {
        // A masked engine cannot emit a dead document, so the lookup only
        // misses on a corrupted map; `DEAD_DOC` keeps the hit visible (and
        // sorted last) rather than silently dropped.
        node: DeweyId::new(
            DocId(map.to_global(hit.node.doc().0).unwrap_or(DEAD_DOC)),
            hit.node.steps().to_vec(),
        ),
        kind: hit.kind,
        keyword_mask: hit.keyword_mask,
        keyword_count: hit.keyword_count,
        rank: hit.rank,
    }
}

/// Merges per-shard answers (each paired with its shard's [`DocMap`], in
/// shard order) into one [`ShardedResponse`] truncated to `limit`. All
/// answers must come from the same query against shards of one corpus; the
/// first answer supplies the keyword list and resolved `s` (identical
/// across shards by construction). Errors only on an empty answer set.
pub fn merge_responses(
    answers: Vec<(DocMap, Response)>,
    limit: usize,
) -> Result<ShardedResponse, QueryError> {
    if answers.is_empty() {
        return Err(QueryError::Empty);
    }
    let shard_count = answers.len();
    let keywords = answers[0].1.keywords().to_vec();
    let s = answers[0].1.s();
    let n = keywords.len();

    // A keyword is missing globally iff it is missing from every shard.
    let mut missing_counts = vec![0usize; n];
    let mut sl_len = 0usize;
    let mut elapsed_micros = 0u64;
    let mut trace = SearchTrace::default();
    let mut cost = CostLedger::default();
    let mut shard_costs = Vec::with_capacity(shard_count);
    for (_, r) in &answers {
        for &i in r.missing_keyword_indices() {
            if let Some(c) = missing_counts.get_mut(i) {
                *c += 1;
            }
        }
        sl_len += r.sl_len();
        // Shards search in parallel: merged wall-clock is the straggler's.
        elapsed_micros = elapsed_micros.max(r.elapsed_micros());
        let t = r.trace();
        trace.candidates += t.candidates;
        trace.lce_nodes += t.lce_nodes;
        trace.witnessed_lce += t.witnessed_lce;
        trace.orphan_lcp += t.orphan_lcp;
        trace.pruned += t.pruned;
        trace.parse_micros += t.parse_micros;
        trace.merge_micros += t.merge_micros;
        trace.window_micros += t.window_micros;
        trace.sweep_micros += t.sweep_micros;
        trace.assemble_micros += t.assemble_micros;
        // Every ledger counter is a per-document sum and shards partition
        // the documents, so the gathered ledger is the plain field-wise sum
        // — and equals the unsharded engine's ledger exactly.
        cost.add(r.cost());
        shard_costs.push(r.cost().clone());
    }
    let missing: Vec<usize> = missing_counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == shard_count)
        .map(|(i, _)| i)
        .collect();

    let mut doc_maps = Vec::with_capacity(shard_count);
    let mut merged: Vec<(Hit, usize)> = Vec::new();
    for (ordinal, (map, r)) in answers.iter().enumerate() {
        merged.extend(r.hits().iter().map(|h| (remap_hit(h, map), ordinal)));
        doc_maps.push(map.clone());
    }
    // The exact final comparator of crate::search — shards cover disjoint
    // document ranges, so the document-order tie-break stays total.
    merged.sort_by(|(a, _), (b, _)| {
        b.rank
            .partial_cmp(&a.rank)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.keyword_count.cmp(&a.keyword_count))
            .then_with(|| a.node.cmp(&b.node))
    });
    merged.truncate(limit);

    let mut hits = Vec::with_capacity(merged.len());
    let mut origins = Vec::with_capacity(merged.len());
    for (hit, ordinal) in merged {
        hits.push(hit);
        origins.push(ordinal);
    }
    let response =
        Response::from_parts(keywords, s, hits, sl_len, elapsed_micros, missing, trace, cost);
    Ok(ShardedResponse { response, origins, doc_maps, shard_costs })
}

/// Runs a sharded search sequentially: one search per shard engine, then a
/// gather under a [`SpanKind::Gather`] span. `doc_bases[i]` is shard `i`'s
/// global document base (the dense, nothing-deleted tiling; see
/// [`sharded_search_mapped`] for delta-carrying shard sets). The parallel
/// scatter lives in the server; this entry point serves the CLI,
/// benchmarks, and equivalence tests.
pub fn sharded_search(
    shards: &[&Engine],
    doc_bases: &[u32],
    query: &Query,
    options: SearchOptions,
) -> Result<ShardedResponse, QueryError> {
    let maps: Vec<DocMap> = (0..shards.len())
        .map(|i| DocMap::base(doc_bases.get(i).copied().unwrap_or(0)))
        .collect();
    sharded_search_mapped(shards, &maps, query, options)
}

/// [`sharded_search`] with explicit per-shard [`DocMap`]s — the entry
/// point for manifest-backed shard sets carrying deltas and tombstones.
pub fn sharded_search_mapped(
    shards: &[&Engine],
    doc_maps: &[DocMap],
    query: &Query,
    options: SearchOptions,
) -> Result<ShardedResponse, QueryError> {
    let mut answers = Vec::with_capacity(shards.len());
    for (i, engine) in shards.iter().enumerate() {
        let map = doc_maps.get(i).cloned().unwrap_or(DocMap::Base(0));
        answers.push((map, engine.search(query, options)?));
    }
    let _gather = span(SpanKind::Gather);
    merge_responses(answers, options.limit)
}

/// Loads every shard of a manifest into a tombstone-masked [`Engine`]
/// paired with its [`DocMap`], in shard order — the read side of the
/// incremental update path (the server catalog keeps its own slot-reusing
/// variant; this one serves the CLI and equivalence tests). Shard paths
/// must already be resolved (see `ShardManifest::load`).
pub fn load_manifest_engines(
    manifest: &ShardManifest,
) -> Result<Vec<(Engine, DocMap)>, IndexError> {
    manifest
        .shards
        .iter()
        .zip(manifest.shard_views())
        .map(|(entry, view)| {
            let ix = GksIndex::load(&entry.path)?;
            let engine = Engine::from_shared(Arc::new(ix), view.tombstones);
            let map = match view.doc_map {
                Some(forward) => DocMap::table(forward),
                None => DocMap::base(view.doc_base),
            };
            Ok((engine, map))
        })
        .collect()
}

/// DI over a merged response: observes hits in global rank order, each
/// resolved in its owning shard with its shard-local node, so insight
/// values, weights, supports, and order match [`crate::di::discover_di`] on
/// the unsharded engine.
pub fn discover_di_sharded(
    shards: &[&GksIndex],
    sharded: &ShardedResponse,
    options: &DiOptions,
) -> Vec<Insight> {
    discover_di_sharded_counted(shards, sharded, options).0
}

/// [`discover_di_sharded`] plus the number of attribute entries evaluated —
/// the `di_attrs` term of the request's [`CostLedger`]. Hits are observed in
/// the same global rank order as the unsharded pipeline, so the count equals
/// [`crate::di::discover_di_counted`]'s on the equivalent monolithic engine.
pub fn discover_di_sharded_counted(
    shards: &[&GksIndex],
    sharded: &ShardedResponse,
    options: &DiOptions,
) -> (Vec<Insight>, u64) {
    let _di_span = span(SpanKind::Di);
    let mut acc = DiAccumulator::new(sharded.response(), options);
    for (i, hit) in sharded.response().hits().iter().enumerate() {
        let local = sharded.local_node(i);
        if let Some(index) = shards.get(sharded.origin(i)) {
            acc.observe(index, hit, &local);
        }
    }
    let attrs = acc.attrs_evaluated();
    gks_trace::annotate("di_attrs", attrs);
    (acc.finish(), attrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Threshold;
    use crate::wire;
    use gks_index::{split_corpus, Corpus, IndexOptions};

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        for i in 0..6 {
            let who = if i % 2 == 0 { "Karen" } else { "Mike" };
            c.push(
                format!("doc{i}"),
                format!(
                    "<course><name>Course {i}</name><students>\
                     <student>{who}</student><student>Alex</student></students></course>"
                ),
            );
        }
        c
    }

    fn engines_for(parts: &[Corpus]) -> Vec<Engine> {
        parts
            .iter()
            .map(|p| Engine::build(p, IndexOptions::default()).unwrap())
            .collect()
    }

    fn bases_for(parts: &[Corpus]) -> Vec<u32> {
        let mut bases = Vec::new();
        let mut base = 0u32;
        for p in parts {
            bases.push(base);
            base += p.len() as u32;
        }
        bases
    }

    #[test]
    fn sharded_search_matches_unsharded_wire_bytes() {
        let c = corpus();
        let whole = Engine::build(&c, IndexOptions::default()).unwrap();
        let query = Query::parse("karen alex").unwrap();
        let options = SearchOptions { s: Threshold::Fixed(1), limit: 4 };
        let expected = whole.search(&query, options).unwrap();
        let expected_json = wire::search_response_json(&whole, &expected);

        for shards in [2, 3] {
            let parts = split_corpus(&c, shards);
            let engines = engines_for(&parts);
            let refs: Vec<&Engine> = engines.iter().collect();
            let merged = sharded_search(&refs, &bases_for(&parts), &query, options).unwrap();
            assert_eq!(merged.fan_out(), shards);
            let got_json = wire::search_response_json_sharded(&refs, &merged);
            assert_eq!(got_json, expected_json, "{shards} shards");
        }
    }

    #[test]
    fn missing_is_the_intersection_across_shards() {
        let c = corpus();
        let parts = split_corpus(&c, 2);
        let engines = engines_for(&parts);
        let refs: Vec<&Engine> = engines.iter().collect();
        // "karen" only appears in even documents — present in both shards'
        // slices; "zzz" appears nowhere.
        let query = Query::parse("karen zzz").unwrap();
        let options = SearchOptions { s: Threshold::Fixed(1), limit: usize::MAX };
        let merged = sharded_search(&refs, &bases_for(&parts), &query, options).unwrap();
        assert_eq!(merged.response().missing_keyword_indices(), &[1]);
        let whole = Engine::build(&c, IndexOptions::default()).unwrap();
        let expected = whole.search(&query, options).unwrap();
        assert_eq!(merged.response().missing_keyword_indices(), expected.missing_keyword_indices());
        assert_eq!(merged.response().sl_len(), expected.sl_len());
    }

    #[test]
    fn local_nodes_round_trip_through_the_doc_base() {
        let c = corpus();
        let parts = split_corpus(&c, 3);
        let engines = engines_for(&parts);
        let refs: Vec<&Engine> = engines.iter().collect();
        let query = Query::parse("karen").unwrap();
        let options = SearchOptions { s: Threshold::Fixed(1), limit: usize::MAX };
        let merged = sharded_search(&refs, &bases_for(&parts), &query, options).unwrap();
        assert!(!merged.response().hits().is_empty());
        let bases = bases_for(&parts);
        for (i, hit) in merged.response().hits().iter().enumerate() {
            let local = merged.local_node(i);
            let base = bases[merged.origin(i)];
            assert_eq!(local.doc().0 + base, hit.node.doc().0);
            assert_eq!(local.steps(), hit.node.steps());
        }
    }

    #[test]
    fn sharded_di_matches_unsharded() {
        let c = corpus();
        let whole = Engine::build(&c, IndexOptions::default()).unwrap();
        let query = Query::parse("karen mike").unwrap();
        let options = SearchOptions { s: Threshold::Fixed(1), limit: usize::MAX };
        let expected = whole.search(&query, options).unwrap();
        let expected_di = whole.discover_di(&expected, &DiOptions::default());

        let parts = split_corpus(&c, 2);
        let engines = engines_for(&parts);
        let refs: Vec<&Engine> = engines.iter().collect();
        let merged = sharded_search(&refs, &bases_for(&parts), &query, options).unwrap();
        let indexes: Vec<&GksIndex> = engines.iter().map(Engine::index).collect();
        let got_di = discover_di_sharded(&indexes, &merged, &DiOptions::default());
        assert_eq!(got_di.len(), expected_di.len());
        for (g, e) in got_di.iter().zip(&expected_di) {
            assert_eq!(g.value, e.value);
            assert_eq!(g.path, e.path);
            assert_eq!(g.support, e.support);
            assert!((g.weight - e.weight).abs() < 1e-9);
        }
    }

    #[test]
    fn gathered_ledger_equals_unsharded_ledger() {
        let c = corpus();
        let whole = Engine::build(&c, IndexOptions::default()).unwrap();
        let query = Query::parse("karen alex").unwrap();
        let options = SearchOptions { s: Threshold::Fixed(1), limit: usize::MAX };
        let expected = whole.search(&query, options).unwrap();
        for shards in [2, 3] {
            let parts = split_corpus(&c, shards);
            let engines = engines_for(&parts);
            let refs: Vec<&Engine> = engines.iter().collect();
            let merged = sharded_search(&refs, &bases_for(&parts), &query, options).unwrap();
            assert_eq!(merged.response().cost(), expected.cost(), "{shards} shards");
            let mut summed = CostLedger::default();
            for ledger in merged.shard_costs() {
                summed.add(ledger);
            }
            assert_eq!(&summed, merged.response().cost(), "shard ledgers sum to the gather");
        }
    }

    #[test]
    fn merge_of_nothing_is_an_error() {
        assert!(merge_responses(Vec::new(), 10).is_err());
    }
}
