//! The JSON wire format shared by `gks search/suggest --json` and the
//! `gks-serve` HTTP endpoints.
//!
//! Serialization is hand-rolled on `std::fmt::Write` because the workspace's
//! `serde` is an offline marker shim (see `crates/serde`). Two properties are
//! load-bearing and covered by tests:
//!
//! * **Stable field names** — scripts, the loadgen verifier, and the server's
//!   cache all key off this shape; renaming a field is a wire break.
//! * **Determinism** — the same index + query + options always produce the
//!   same bytes. Wall-clock timings are deliberately *excluded* from the
//!   body (the server reports elapsed time in an `x-gks-micros` response
//!   header instead), so a cached body is byte-identical to a freshly
//!   computed one. The result-cache property test relies on this.

use std::fmt::Write as _;

use crate::cost::CostLedger;
use crate::di::Insight;
use crate::engine::Engine;
use crate::refine::Refinement;
use crate::search::{Hit, HitKind, Response};
use crate::shard::ShardedResponse;

/// Appends `s` to `out` as a JSON string literal (quotes included), escaping
/// per RFC 8259: `"`, `\`, and control characters below `U+0020`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON array of strings to `out`.
pub fn push_json_str_array(out: &mut String, items: impl IntoIterator<Item = impl AsRef<str>>) {
    out.push('[');
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, item.as_ref());
    }
    out.push(']');
}

/// Appends an `f64` as a JSON number. Rust's shortest-roundtrip `{}`
/// formatting is deterministic and valid JSON for finite values; non-finite
/// values (which no ranking path produces) degrade to `null` rather than
/// emitting the invalid tokens `NaN`/`inf`.
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Serializes a search response as one deterministic JSON object.
///
/// Shape (stable, shared with `GET /search`):
///
/// ```json
/// {"query":["karen","mike"],"s":2,"sl_len":9,"total_hits":1,
///  "hits":[{"node":"0:1.2","path":["uni","course"],"kind":"lce",
///           "rank":3.0,"keywords":2,"matched":["karen","mike"]}],
///  "missing":[]}
/// ```
///
/// `hits` is already truncated to the request's `limit`; `total_hits` is the
/// length of the returned list (not the pre-truncation count, which the
/// engine does not retain). `missing` lists keywords with zero postings.
pub fn search_response_json(engine: &Engine, response: &Response) -> String {
    write_search_response(response, |_, hit| engine.node_path(&hit.node))
}

/// The sharded variant of [`search_response_json`]: byte-identical output
/// to the unsharded renderer on the equivalent monolithic engine. Each
/// hit's `path` is resolved in its owning shard (via the shard-local node),
/// while the `node` field keeps the merged response's global id.
pub fn search_response_json_sharded(shards: &[&Engine], sharded: &ShardedResponse) -> String {
    write_search_response(sharded.response(), |i, _| {
        shards
            .get(sharded.origin(i))
            .map(|engine| engine.node_path(&sharded.local_node(i)))
            .unwrap_or_default()
    })
}

fn write_search_response(
    response: &Response,
    mut path_of: impl FnMut(usize, &Hit) -> Vec<String>,
) -> String {
    let mut out = String::with_capacity(256 + response.hits().len() * 128);
    out.push_str("{\"query\":");
    push_json_str_array(&mut out, response.keywords().iter().map(|k| k.raw()));
    let _ = write!(out, ",\"s\":{}", response.s());
    let _ = write!(out, ",\"sl_len\":{}", response.sl_len());
    let _ = write!(out, ",\"total_hits\":{}", response.hits().len());
    out.push_str(",\"hits\":[");
    for (i, hit) in response.hits().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"node\":");
        push_json_str(&mut out, &hit.node.to_string());
        out.push_str(",\"path\":");
        push_json_str_array(&mut out, path_of(i, hit));
        out.push_str(",\"kind\":");
        push_json_str(
            &mut out,
            match hit.kind {
                HitKind::Lce => "lce",
                HitKind::Lcp => "lcp",
            },
        );
        out.push_str(",\"rank\":");
        push_json_f64(&mut out, hit.rank);
        let _ = write!(out, ",\"keywords\":{}", hit.keyword_count);
        out.push_str(",\"matched\":");
        push_json_str_array(&mut out, hit.matched_keywords(response.keywords()));
        out.push('}');
    }
    out.push_str("],\"missing\":");
    let missing: Vec<&str> = response
        .missing_keyword_indices()
        .iter()
        .filter_map(|&i| response.keywords().get(i).map(|k| k.raw()))
        .collect();
    push_json_str_array(&mut out, missing);
    out.push('}');
    out
}

/// The explain variant of [`search_response_json`]: the same body with a
/// cost breakdown appended (see [`append_cost_explain`]).
pub fn search_response_json_explained(engine: &Engine, response: &Response) -> String {
    let mut out = search_response_json(engine, response);
    append_cost_explain(&mut out, response, &[]);
    out
}

/// The explain variant of [`search_response_json_sharded`]: the sharded body
/// plus the gathered cost breakdown and one per-shard ledger each.
pub fn search_response_json_sharded_explained(
    shards: &[&Engine],
    sharded: &ShardedResponse,
) -> String {
    let mut out = search_response_json_sharded(shards, sharded);
    append_cost_explain(&mut out, sharded.response(), sharded.shard_costs());
    out
}

/// Splices the `explain=1` cost breakdown into an already-rendered search
/// body: three fields appended before the closing brace —
///
/// ```json
/// ,"cost":{"postings_scanned":9,…,"per_keyword":[4,5]},
///  "cost_keywords":[{"keyword":"karen","postings":4},…],
///  "shard_costs":[{…},{…}]
/// ```
///
/// `cost_keywords` pairs each keyword spelling with its (masked) posting-list
/// length; `shard_costs` carries one ledger per shard in shard order (empty
/// for unsharded runs). Cost counters are work counts, not timings, so the
/// explain body stays deterministic — the gathered `"cost"` object on a
/// sharded run is byte-identical to the unsharded engine's (the shard-sum
/// property [`CostLedger::add`] documents), which the equivalence proptests
/// assert.
pub fn append_cost_explain(out: &mut String, response: &Response, shard_costs: &[CostLedger]) {
    let closing = out.pop();
    debug_assert_eq!(closing, Some('}'), "explain splices into a rendered JSON object");
    let cost = response.cost();
    out.push_str(",\"cost\":");
    cost.write_json(out);
    out.push_str(",\"cost_keywords\":[");
    for (i, keyword) in response.keywords().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"keyword\":");
        push_json_str(out, keyword.raw());
        let postings = cost.per_keyword.get(i).copied().unwrap_or(0);
        let _ = write!(out, ",\"postings\":{postings}}}");
    }
    out.push_str("],\"shard_costs\":[");
    for (i, shard) in shard_costs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        shard.write_json(out);
    }
    out.push_str("]}");
}

/// Serializes refinement suggestions plus their DI as one deterministic JSON
/// object (stable, shared with `GET /suggest`):
///
/// ```json
/// {"query":[...],"sub_queries":[[...]],"partition":[[...]],
///  "unmatched":[...],"morphs":[[...]],
///  "insights":[{"value":"Data Mining","path":["course","name"],
///               "weight":3.0,"support":1}]}
/// ```
pub fn suggest_response_json(
    response: &Response,
    refinement: &Refinement,
    insights: &[Insight],
) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"query\":");
    push_json_str_array(&mut out, response.keywords().iter().map(|k| k.raw()));
    let push_nested = |out: &mut String, name: &str, groups: &[Vec<String>]| {
        let _ = write!(out, ",\"{name}\":[");
        for (i, group) in groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str_array(out, group);
        }
        out.push(']');
    };
    push_nested(&mut out, "sub_queries", &refinement.sub_queries);
    push_nested(&mut out, "partition", &refinement.partition);
    out.push_str(",\"unmatched\":");
    push_json_str_array(&mut out, &refinement.unmatched);
    push_nested(&mut out, "morphs", &refinement.morphs);
    out.push_str(",\"insights\":[");
    for (i, insight) in insights.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"value\":");
        push_json_str(&mut out, &insight.value);
        out.push_str(",\"path\":");
        push_json_str_array(&mut out, &insight.path);
        out.push_str(",\"weight\":");
        push_json_f64(&mut out, insight.weight);
        let _ = write!(out, ",\"support\":{}", insight.support);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Serializes an index-doctor report as one deterministic JSON object
/// (stable, shared with `GET /doctor`):
///
/// ```json
/// {"healthy":true,"violations":[],"nodes":12,"terms":34,"postings":56}
/// ```
pub fn doctor_response_json(engine: &Engine) -> String {
    let violations = engine.index().doctor();
    let stats = engine.index().stats();
    let mut out = String::with_capacity(128);
    let _ = write!(out, "{{\"healthy\":{}", violations.is_empty());
    out.push_str(",\"violations\":");
    push_json_str_array(&mut out, violations.iter().map(|v| v.to_string()));
    let _ = write!(
        out,
        ",\"nodes\":{},\"terms\":{},\"postings\":{}}}",
        stats.total_nodes, stats.distinct_terms, stats.total_postings
    );
    out
}

/// Serializes one catalog index's doctor report: the [`doctor_response_json`]
/// object with an `"index"` route-key field prepended —
/// `{"index":"dblp","healthy":true,…}`.
pub fn doctor_entry_json(name: &str, engine: &Engine) -> String {
    let inner = doctor_response_json(engine);
    let mut out = String::with_capacity(inner.len() + name.len() + 16);
    out.push_str("{\"index\":");
    push_json_str(&mut out, name);
    out.push(',');
    // Splice the per-index fields out of the inner object (skip its '{').
    out.push_str(&inner[1..]);
    out
}

/// Serializes a whole-catalog doctor report from per-index entries produced
/// by [`doctor_entry_json`]:
///
/// ```json
/// {"healthy":true,"indexes":[{"index":"a",…},{"index":"b",…}]}
/// ```
///
/// The top-level `healthy` is the conjunction over the entries, read back
/// from the deterministic serialized form (every entry carries exactly one
/// `"healthy":` field).
pub fn catalog_doctor_json(entries: &[String]) -> String {
    let healthy = entries.iter().all(|e| e.contains("\"healthy\":true"));
    let mut out = String::with_capacity(32 + entries.iter().map(String::len).sum::<usize>());
    let _ = write!(out, "{{\"healthy\":{healthy},\"indexes\":[");
    for (i, entry) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(entry);
    }
    out.push_str("]}");
    out
}

/// Serializes the `POST /admin/reload` response: which index was swapped and
/// the identity transition —
/// `{"index":"dblp","identity_before":7,"identity_after":9,"changed":true}`.
pub fn reload_response_json(name: &str, identity_before: u64, identity_after: u64) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"index\":");
    push_json_str(&mut out, name);
    let _ = write!(
        out,
        ",\"identity_before\":{identity_before},\"identity_after\":{identity_after},\
         \"changed\":{}}}",
        identity_before != identity_after
    );
    out
}

/// Serializes the `POST /admin/compact` response. `stats` is
/// `(epoch, base_shards, docs, removed_files)` when deltas were folded,
/// `None` when the index was already fully compacted —
/// `{"index":"dblp","compacted":true,"epoch":4,"base_shards":2,"docs":10,"removed_files":3}`
/// or `{"index":"dblp","compacted":false}`.
pub fn compact_response_json(name: &str, stats: Option<(u64, usize, usize, usize)>) -> String {
    let mut out = String::with_capacity(112);
    out.push_str("{\"index\":");
    push_json_str(&mut out, name);
    match stats {
        Some((epoch, base_shards, docs, removed_files)) => {
            let _ = write!(
                out,
                ",\"compacted\":true,\"epoch\":{epoch},\"base_shards\":{base_shards},\
                 \"docs\":{docs},\"removed_files\":{removed_files}}}"
            );
        }
        None => out.push_str(",\"compacted\":false}"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::di::DiOptions;
    use crate::query::Query;
    use crate::search::SearchOptions;
    use gks_index::{Corpus, IndexOptions};

    fn engine() -> Engine {
        let xml = "<courses>\
            <course><name>Mining</name><students>\
                <student>Karen</student><student>Mike</student></students></course>\
            <course><name>AI</name><students>\
                <student>Karen</student><student>John</student></students></course>\
        </courses>";
        let corpus = Corpus::from_named_strs([("uni", xml)]).unwrap();
        Engine::build(&corpus, IndexOptions::default()).unwrap()
    }

    #[test]
    fn string_escaping() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}e");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }

    #[test]
    fn f64_formatting() {
        let mut out = String::new();
        push_json_f64(&mut out, 3.0);
        out.push(' ');
        push_json_f64(&mut out, 2.5);
        out.push(' ');
        push_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "3 2.5 null");
    }

    #[test]
    fn search_json_shape_and_determinism() {
        let e = engine();
        let q = Query::parse("karen mike zzznothing").unwrap();
        let r1 = e.search(&q, SearchOptions::with_s(2)).unwrap();
        let r2 = e.search(&q, SearchOptions::with_s(2)).unwrap();
        let j1 = search_response_json(&e, &r1);
        let j2 = search_response_json(&e, &r2);
        assert_eq!(j1, j2, "same query must serialize to identical bytes");
        assert!(j1.starts_with("{\"query\":[\"karen\",\"mike\",\"zzznothing\"]"), "{j1}");
        assert!(j1.contains("\"kind\":\"lce\""), "{j1}");
        assert!(j1.contains("\"missing\":[\"zzznothing\"]"), "{j1}");
        assert!(j1.contains("\"path\":[\"courses\",\"course\"]"), "{j1}");
        // No timing field: determinism is the cache's correctness argument.
        assert!(!j1.contains("micros"), "{j1}");
    }

    #[test]
    fn explain_body_extends_the_plain_body() {
        let e = engine();
        let q = Query::parse("karen mike").unwrap();
        let r = e.search(&q, SearchOptions::with_s(2)).unwrap();
        let plain = search_response_json(&e, &r);
        let explained = search_response_json_explained(&e, &r);
        // The explain body is the plain body plus appended cost fields — a
        // strict superset, so non-explain consumers are unaffected.
        assert!(explained.starts_with(plain.trim_end_matches('}')), "{explained}");
        assert!(explained.contains("\"cost\":{\"postings_scanned\":"), "{explained}");
        assert!(explained.contains("\"cost_keywords\":[{\"keyword\":\"karen\",\"postings\":"));
        assert!(explained.ends_with("\"shard_costs\":[]}"), "{explained}");
        // Still no timing field: cost counters are work, not wall-clock.
        assert!(!explained.contains("micros"), "{explained}");
        let again = search_response_json_explained(&e, &r);
        assert_eq!(explained, again, "explain bodies are deterministic");
    }

    #[test]
    fn suggest_and_doctor_json_shape() {
        let e = engine();
        let q = Query::parse("karen zzznothing").unwrap();
        let r = e.search(&q, SearchOptions::with_s(1)).unwrap();
        let di = e.discover_di(&r, &DiOptions::default());
        let refinement = e.refine(&r, &di);
        let j = suggest_response_json(&r, &refinement, &di);
        assert!(j.contains("\"sub_queries\":[[\"karen\"]]"), "{j}");
        assert!(j.contains("\"unmatched\":[\"zzznothing\"]"), "{j}");
        assert!(j.contains("\"insights\":["), "{j}");

        let d = doctor_response_json(&e);
        assert!(d.starts_with("{\"healthy\":true,\"violations\":[]"), "{d}");
    }

    #[test]
    fn catalog_doctor_json_shapes() {
        let e = engine();
        let entry = doctor_entry_json("dblp", &e);
        assert!(entry.starts_with("{\"index\":\"dblp\",\"healthy\":true"), "{entry}");

        let all = catalog_doctor_json(&[entry.clone(), doctor_entry_json("nasa", &e)]);
        assert!(all.starts_with("{\"healthy\":true,\"indexes\":[{\"index\":\"dblp\""), "{all}");
        assert!(all.contains("{\"index\":\"nasa\""), "{all}");

        // One sick entry flips the conjunction.
        let sick = entry.replace("\"healthy\":true", "\"healthy\":false");
        let mixed = catalog_doctor_json(&[entry, sick]);
        assert!(mixed.starts_with("{\"healthy\":false"), "{mixed}");
    }

    #[test]
    fn reload_json_reports_identity_transition() {
        let j = reload_response_json("dblp", 7, 9);
        assert_eq!(
            j,
            "{\"index\":\"dblp\",\"identity_before\":7,\"identity_after\":9,\"changed\":true}"
        );
        let same = reload_response_json("dblp", 7, 7);
        assert!(same.ends_with("\"changed\":false}"), "{same}");
    }
}
