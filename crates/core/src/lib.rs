//! # gks-core — Generic Keyword Search over XML data
//!
//! The paper's primary contribution (Agarwal, Ramamritham, Agarwal, *Generic
//! Keyword Search over XML Data*, EDBT 2016): for a keyword query
//! `Q = {k1 … kn}` and a threshold `s ≤ n`, return **every** XML node whose
//! subtree contains at least `s` distinct query keywords — not just the
//! lowest common ancestors of all of them — organized around *Least Common
//! Entity* nodes, ranked with a potential-flow model, and analyzed for
//! *Deeper Analytical Insights* that drive query refinement.
//!
//! Modules, following the paper's structure:
//!
//! * [`query`] — keyword queries (terms and quoted phrases);
//! * [`postlist`] / [`merge`] — per-keyword posting lists and the merged
//!   document-ordered list `SL` (§4.1);
//! * [`window`] — the sliding window of `s` unique keywords → LCP candidate
//!   list (§4.1, Figures 4–5);
//! * [`sweep`] — exact matched-keyword sets, potential-flow ranks (§5) and
//!   entity witnesses (§4.2) in one pass over `SL`;
//! * [`search`] — the full GKS search pipeline (Figure 6);
//! * [`shard`] — the gather half of sharded search: lossless merge of
//!   per-shard answers from a document-partitioned corpus;
//! * [`di`] — Deeper Analytical Insights, plain and recursive (§2.3, §6.2);
//! * [`refine`] — query refinement suggestions (§6.1);
//! * [`analytics`] — response analytics: group-bys and facets over the
//!   answer set (the paper's "analytics over raw XML data" future work);
//! * [`cost`] — per-request work accounting: the [`cost::CostLedger`]
//!   every response carries and the explain surfaces render;
//! * [`wire`] — the deterministic JSON wire format shared by the CLI's
//!   `--json` mode and the `gks-serve` HTTP endpoints;
//! * [`json`] — the matching JSON reader used by round-trip tests and the
//!   smoke tooling;
//! * [`engine`] — the [`engine::Engine`] facade tying it all together;
//! * [`executor`] — the persistent per-shard worker lanes the server's
//!   scatter rides on (spawn threads once, fan out over queues).

pub mod analytics;
pub mod chunk;
pub mod cost;
pub mod di;
pub mod engine;
pub mod error;
pub mod executor;
pub mod json;
pub mod merge;
pub mod postlist;
pub mod query;
pub mod refine;
pub mod search;
pub mod shard;
pub mod sweep;
pub mod window;
pub mod wire;

pub use analytics::{AnalyticsOptions, ResponseAnalytics};
pub use cost::CostLedger;
pub use di::{DiOptions, Insight};
pub use engine::Engine;
pub use error::QueryError;
pub use executor::ShardExecutor;
pub use query::Query;
pub use search::{Hit, HitKind, Response, SearchOptions, Threshold};
pub use shard::{
    discover_di_sharded, discover_di_sharded_counted, load_manifest_engines, merge_responses,
    sharded_search, sharded_search_mapped, DocMap, ShardedResponse,
};
