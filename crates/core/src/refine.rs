//! Query refinement (paper §6.1).
//!
//! "The user query Q can be refined by either removing or adding the most
//! relevant keywords to Q, in the context of the query." GKS supports three
//! refinement moves, all derived from the response and its DI:
//!
//! * **sub-queries** — the distinct matched-keyword subsets of the top hits,
//!   best first (`Q3 = {a,b,c,d}` → `{a,b,c}` and `{a,b,d}`);
//! * **partition** — a greedy cover of the query by those subsets, showing
//!   how the keywords distribute over the data (`Q3` partitions into
//!   `{a,b,c}` + `{a,b,d}`);
//! * **morphs** — the query with unmatchable keywords dropped and top DI
//!   keywords offered as replacements (`{a,b,e}` → `{a,b,c}` / `{a,b,d}`).

use crate::di::Insight;
use crate::query::Query;
use crate::search::Response;

/// A set of refinement suggestions.
#[derive(Debug, Clone)]
pub struct Refinement {
    /// Distinct matched-keyword subsets of the top hits, best-ranked first.
    /// Each entry is a list of raw keyword spellings.
    pub sub_queries: Vec<Vec<String>>,
    /// A greedy partition of the query's matchable keywords by the
    /// sub-queries above.
    pub partition: Vec<Vec<String>>,
    /// Keywords that matched nothing in the corpus.
    pub unmatched: Vec<String>,
    /// Morphed queries: matchable keywords of the best sub-queries plus one
    /// top DI value each.
    pub morphs: Vec<Vec<String>>,
}

/// Derives refinement suggestions from a response (and optionally its DI).
pub fn refine(response: &Response, insights: &[Insight], max_suggestions: usize) -> Refinement {
    let keywords = response.keywords();

    // Distinct masks of the top hits, in rank order.
    let mut seen_masks: Vec<u64> = Vec::new();
    for hit in response.hits() {
        if hit.keyword_mask != 0 && !seen_masks.contains(&hit.keyword_mask) {
            seen_masks.push(hit.keyword_mask);
        }
        if seen_masks.len() >= max_suggestions {
            break;
        }
    }
    let mask_to_words = |mask: u64| -> Vec<String> {
        keywords
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << *i) != 0)
            .map(|(_, k)| k.raw().to_string())
            .collect()
    };
    let sub_queries: Vec<Vec<String>> = seen_masks.iter().map(|&m| mask_to_words(m)).collect();

    // Greedy partition: walk sub-queries best-first, taking each one's
    // not-yet-covered keywords until all matchable keywords are covered.
    let matchable: u64 = {
        let missing: u64 = response.missing_keyword_indices().iter().map(|&i| 1u64 << i).sum();
        let all = if keywords.len() == 64 {
            u64::MAX
        } else {
            (1u64 << keywords.len()) - 1
        };
        all & !missing
    };
    let mut covered: u64 = 0;
    let mut partition: Vec<Vec<String>> = Vec::new();
    for &mask in &seen_masks {
        if covered & matchable == matchable {
            break;
        }
        if mask & !covered != 0 {
            partition.push(mask_to_words(mask));
            covered |= mask;
        }
    }

    let unmatched: Vec<String> = response
        .missing_keyword_indices()
        .iter()
        .map(|&i| keywords[i].raw().to_string())
        .collect();

    // Morphs: best sub-query (the matchable core) + one DI value.
    let mut morphs: Vec<Vec<String>> = Vec::new();
    if let Some(core) = sub_queries.first() {
        for insight in insights.iter().take(max_suggestions) {
            let mut q = core.clone();
            if !q.contains(&insight.value) {
                q.push(insight.value.clone());
                morphs.push(q);
            }
        }
    }

    Refinement { sub_queries, partition, unmatched, morphs }
}

/// Builds a [`Query`] from one suggestion (helper for driving a follow-up
/// search).
pub fn suggestion_to_query(words: &[String]) -> Option<Query> {
    Query::from_keywords(words.iter().cloned()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::search::{search, SearchOptions};
    use gks_index::{Corpus, GksIndex, IndexOptions};

    fn fig1() -> GksIndex {
        let xml = "<r>\
            <x1><v>ka</v><v>kb</v><v>kc</v><v>kf</v>\
                <x2><v>ka</v><v>kb</v><v>kc</v></x2></x1>\
            <x3><v>ka</v><v>kb</v><x5><v>kd</v><v>kf</v></x5></x3>\
            <x4><v>kc</v><v>kd</v></x4>\
        </r>";
        let corpus = Corpus::from_named_strs([("fig1", xml)]).unwrap();
        GksIndex::build(&corpus, IndexOptions::default()).unwrap()
    }

    #[test]
    fn q3_sub_queries_and_partition() {
        // §6.1: "user can refine the query Q3 to {a,b,c} or {a,b,d} given the
        // GKS response" — and the partition covers all four keywords.
        let ix = fig1();
        let q = Query::parse("ka kb kc kd").unwrap();
        let r = search(&ix, &q, SearchOptions::with_s(2)).unwrap();
        let refinement = refine(&r, &[], 5);
        assert_eq!(refinement.sub_queries[0], vec!["ka", "kb", "kc"]);
        assert_eq!(refinement.sub_queries[1], vec!["ka", "kb", "kd"]);
        // Greedy partition: {a,b,c} then {a,b,d} covers everything.
        assert_eq!(refinement.partition.len(), 2);
        assert!(refinement.unmatched.is_empty());
    }

    #[test]
    fn q2_reports_unmatched_keyword() {
        let ix = fig1();
        let q = Query::parse("ka kb ke").unwrap();
        let r = search(&ix, &q, SearchOptions::with_s(2)).unwrap();
        let refinement = refine(&r, &[], 5);
        assert_eq!(refinement.unmatched, vec!["ke"]);
        assert_eq!(refinement.sub_queries[0], vec!["ka", "kb"]);
    }

    #[test]
    fn morphs_extend_core_with_di() {
        let ix = fig1();
        let q = Query::parse("ka kb ke").unwrap();
        let r = search(&ix, &q, SearchOptions::with_s(2)).unwrap();
        let fake_insight =
            Insight { value: "kc".into(), path: vec!["x2".into()], weight: 1.0, support: 1 };
        let refinement = refine(&r, &[fake_insight], 5);
        assert_eq!(refinement.morphs, vec![vec!["ka", "kb", "kc"]]);
    }

    #[test]
    fn empty_response_produces_empty_suggestions() {
        let ix = fig1();
        let q = Query::parse("zz").unwrap();
        let r = search(&ix, &q, SearchOptions::with_s(1)).unwrap();
        let refinement = refine(&r, &[], 5);
        assert!(refinement.sub_queries.is_empty());
        assert!(refinement.partition.is_empty());
        assert_eq!(refinement.unmatched, vec!["zz"]);
        assert!(refinement.morphs.is_empty());
    }

    #[test]
    fn suggestion_round_trips_to_query() {
        let q = suggestion_to_query(&["ka".into(), "kb kc".into()]).unwrap();
        assert_eq!(q.len(), 2);
        assert!(suggestion_to_query(&[]).is_none());
    }
}
