//! Persistent shard executor: a grow-only set of per-shard worker lanes
//! that replaces the `thread::scope`-per-request scatter.
//!
//! Each resident shard set owns one [`ShardExecutor`]. Lane `i` is a
//! [`WorkerPool`] dedicated to shard `i`, created **once** (at catalog
//! build, or when a manifest sync grows the shard count) and reused for
//! every request, so a sharded search costs one queue push per shard
//! instead of one thread spawn per shard. [`ShardExecutor::scatter`] keeps
//! the `thread::scope` contract exactly: results come back in shard order,
//! a panicking task surfaces as `Err` for that slot only, and every slot
//! always resolves (the `gks-exec` drop guards rule out a hung gather).
//!
//! The lane table registers with the lock-order registry as
//! `core/executor.lanes`; it is only written by [`ensure_lanes`]
//! (`ShardExecutor::ensure_lanes`) and request-path reads copy the lane
//! `Arc`s out before any job is submitted, so the guard never spans a
//! queue push.

use std::sync::{Arc, PoisonError, RwLock};

use gks_exec::{Scatter, WorkerPool};
use gks_trace::lockorder::track;

/// A grow-only table of per-shard worker lanes.
pub struct ShardExecutor {
    lanes: RwLock<Vec<Arc<WorkerPool>>>,
    per_lane: usize,
}

impl std::fmt::Debug for ShardExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardExecutor")
            .field("lanes", &self.lane_count())
            .field("per_lane", &self.per_lane)
            .finish()
    }
}

impl ShardExecutor {
    /// An executor with no lanes yet; each lane created later runs
    /// `per_lane` worker threads (clamped to at least 1).
    pub fn new(per_lane: usize) -> ShardExecutor {
        ShardExecutor { lanes: RwLock::new(Vec::new()), per_lane: per_lane.max(1) }
    }

    /// Worker threads per lane.
    pub fn per_lane(&self) -> usize {
        self.per_lane
    }

    /// Lanes currently alive.
    pub fn lane_count(&self) -> usize {
        let lanes =
            track("core/executor.lanes", self.lanes.read().unwrap_or_else(PoisonError::into_inner));
        lanes.len()
    }

    /// Grows the lane table to at least `n` lanes (never shrinks — a lane
    /// retired by a shard-count decrease stays warm for the next grow).
    /// This is the **only** spawn site: call it at catalog build and after
    /// every manifest sync so the request path never creates a thread.
    pub fn ensure_lanes(&self, n: usize) -> std::io::Result<()> {
        {
            let lanes = track(
                "core/executor.lanes",
                self.lanes.read().unwrap_or_else(PoisonError::into_inner),
            );
            if lanes.len() >= n {
                return Ok(());
            }
        }
        let mut lanes = track(
            "core/executor.lanes",
            self.lanes.write().unwrap_or_else(PoisonError::into_inner),
        );
        while lanes.len() < n {
            let lane = WorkerPool::new(&format!("gks-shard{}", lanes.len()), self.per_lane)?;
            lanes.push(Arc::new(lane));
        }
        Ok(())
    }

    /// Fans `tasks` out across the lanes (task `i` on lane `i`, wrapping
    /// round if the table is short) and gathers the results in submission
    /// order. Slot `i` is `Err` if task `i` panicked or its lane shut down
    /// before running it; with no lanes at all (and growth failing), every
    /// slot reports it.
    ///
    /// Must not be called from a lane worker itself — waiting on work
    /// queued behind the caller deadlocks (see [`Scatter::wait`]).
    pub fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<Result<T, String>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        // Growth is a no-op on the steady-state request path; it only
        // fires if a caller skipped `ensure_lanes` after a shard-count
        // change, trading the no-spawn guarantee for a correct answer.
        let _ = self.ensure_lanes(n);
        let lanes: Vec<Arc<WorkerPool>> = {
            let lanes = track(
                "core/executor.lanes",
                self.lanes.read().unwrap_or_else(PoisonError::into_inner),
            );
            lanes.iter().map(Arc::clone).collect()
        };
        if lanes.is_empty() {
            return tasks
                .into_iter()
                .map(|_| Err("no executor lanes available".to_string()))
                .collect();
        }
        let scatter = Scatter::new(n);
        for (i, task) in tasks.into_iter().enumerate() {
            // A false return means the lane shut down; the dropped job's
            // slot guard resolves slot `i` to Err, so the gather can't hang.
            let _ = lanes[i % lanes.len()].submit(scatter.task(i, task));
        }
        scatter.wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_lanes_grows_and_never_shrinks() {
        let exec = ShardExecutor::new(2);
        assert_eq!(exec.lane_count(), 0);
        exec.ensure_lanes(3).unwrap();
        assert_eq!(exec.lane_count(), 3);
        exec.ensure_lanes(1).unwrap();
        assert_eq!(exec.lane_count(), 3);
    }

    #[test]
    fn scatter_orders_results_and_reuses_lanes() {
        let exec = ShardExecutor::new(1);
        exec.ensure_lanes(4).unwrap();
        let spawned = gks_exec::threads_spawned_total();
        for _ in 0..10 {
            let tasks: Vec<_> = (0..4usize).map(|i| move || i * 3).collect();
            let results = exec.scatter(tasks);
            let values: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, vec![0, 3, 6, 9]);
        }
        assert_eq!(gks_exec::threads_spawned_total(), spawned);
    }

    #[test]
    fn panicking_task_fails_only_its_slot() {
        let exec = ShardExecutor::new(1);
        exec.ensure_lanes(2).unwrap();
        let results = exec.scatter(vec![
            Box::new(|| 1u32) as Box<dyn FnOnce() -> u32 + Send>,
            Box::new(|| panic!("shard down")),
        ]);
        assert_eq!(results[0], Ok(1));
        assert_eq!(results[1], Err("shard down".to_string()));
    }
}
