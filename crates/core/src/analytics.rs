//! Analytics over GKS responses (the paper's concluding future work:
//! "extend GKS to enable analytics over raw XML data").
//!
//! A GKS response is a ranked bag of entity nodes; DI (§6.2) already mines
//! the single most relevant keywords from it. This module generalizes DI
//! into *response analytics*: group-bys and faceted value histograms over
//! the LCE hits, so a user can see — without knowing the schema — how the
//! matches distribute over entity types, and how each attribute path's
//! values distribute within the match set (every `<year>` in the response,
//! every `<journal>`, …).

use gks_index::attrstore::AttrSource;
use gks_index::fasthash::FastMap;
use gks_index::GksIndex;

use crate::search::{HitKind, Response};

/// Options for response analytics.
#[derive(Debug, Clone)]
pub struct AnalyticsOptions {
    /// Keep at most this many distinct values per facet (most frequent
    /// first).
    pub top_values: usize,
    /// Keep at most this many facets (highest coverage first).
    pub top_facets: usize,
    /// Include repeating text sources (author lists) as facets.
    pub include_repeating_text: bool,
}

impl Default for AnalyticsOptions {
    fn default() -> Self {
        AnalyticsOptions { top_values: 8, top_facets: 8, include_repeating_text: true }
    }
}

/// Hit count and rank mass for one entity type.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeGroup {
    /// Entity element label.
    pub label: String,
    /// Number of LCE hits of this type.
    pub hits: usize,
    /// Sum of their potential-flow ranks.
    pub rank_mass: f64,
}

/// One value of a facet with its frequency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FacetValue {
    /// The attribute value as written.
    pub value: String,
    /// Number of LCE hits carrying it.
    pub count: usize,
}

/// A value histogram over one attribute path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Facet {
    /// Element names from the entity down to the value (with the entity
    /// label first), e.g. `["inproceedings", "year"]`.
    pub path: Vec<String>,
    /// Hits contributing at least one value.
    pub coverage: usize,
    /// Most frequent values, descending.
    pub values: Vec<FacetValue>,
}

/// The full analytics result.
#[derive(Debug, Clone, Default)]
pub struct ResponseAnalytics {
    /// Hits grouped by entity type, by descending rank mass.
    pub by_type: Vec<TypeGroup>,
    /// Faceted value histograms, by descending coverage.
    pub facets: Vec<Facet>,
    /// Per query keyword: how many hits matched it.
    pub keyword_hit_counts: Vec<usize>,
}

/// Computes group-bys and facets over a response's LCE hits.
pub fn analyze(
    index: &GksIndex,
    response: &Response,
    options: &AnalyticsOptions,
) -> ResponseAnalytics {
    let n = response.keywords().len();
    let mut keyword_hit_counts = vec![0usize; n];
    let mut by_type: FastMap<String, TypeGroup> = FastMap::default();
    // facet key: path names; value: (per-value counts, coverage)
    let mut facets: FastMap<Vec<String>, (FastMap<String, usize>, usize)> = FastMap::default();

    for hit in response.hits() {
        for (i, count) in keyword_hit_counts.iter_mut().enumerate() {
            if hit.keyword_mask & (1 << i) != 0 {
                *count += 1;
            }
        }
        if hit.kind != HitKind::Lce {
            continue;
        }
        let label = index.node_table().label_name(&hit.node).unwrap_or("?").to_string();
        let group = by_type.entry(label.clone()).or_insert_with(|| TypeGroup {
            label: label.clone(),
            hits: 0,
            rank_mass: 0.0,
        });
        group.hits += 1;
        group.rank_mass += hit.rank;

        // Facet contributions: one per attribute path, counting each value
        // once per hit.
        let mut seen_paths: Vec<Vec<String>> = Vec::new();
        for entry in index.attr_store().entries(&hit.node) {
            if entry.source == AttrSource::RepeatingText && !options.include_repeating_text {
                continue;
            }
            let mut path = Vec::with_capacity(entry.path.len() + 1);
            path.push(label.clone());
            path.extend(
                entry.path.iter().map(|&l| index.node_table().labels().name(l).to_string()),
            );
            let (values, coverage) = facets.entry(path.clone()).or_default();
            *values.entry(entry.value.clone()).or_default() += 1;
            if !seen_paths.contains(&path) {
                *coverage += 1;
                seen_paths.push(path);
            }
        }
    }

    let mut by_type: Vec<TypeGroup> = by_type.into_values().collect();
    by_type.sort_by(|a, b| {
        b.rank_mass
            .partial_cmp(&a.rank_mass)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.label.cmp(&b.label))
    });

    let mut facet_list: Vec<Facet> = facets
        .into_iter()
        .map(|(path, (values, coverage))| {
            let mut values: Vec<FacetValue> =
                values.into_iter().map(|(value, count)| FacetValue { value, count }).collect();
            values.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.value.cmp(&b.value)));
            values.truncate(options.top_values);
            Facet { path, coverage, values }
        })
        .collect();
    facet_list.sort_by(|a, b| b.coverage.cmp(&a.coverage).then_with(|| a.path.cmp(&b.path)));
    facet_list.truncate(options.top_facets);

    ResponseAnalytics { by_type, facets: facet_list, keyword_hit_counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::search::{search, SearchOptions};
    use gks_index::{Corpus, IndexOptions};

    fn setup() -> (GksIndex, Response) {
        let xml = r#"<dblp>
            <article><title>One</title><author>Ada Alpha</author><author>Bob Beta</author>
                <year>2001</year><journal>TODS</journal></article>
            <article><title>Two</title><author>Ada Alpha</author><author>Cy Gamma</author>
                <year>2001</year><journal>VLDBJ</journal></article>
            <inproceedings><title>Three</title><author>Ada Alpha</author><author>Di Delta</author>
                <year>2003</year><booktitle>EDBT</booktitle></inproceedings>
        </dblp>"#;
        let corpus = Corpus::from_named_strs([("d", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let q = Query::parse(r#""Ada Alpha""#).unwrap();
        let r = search(&ix, &q, SearchOptions::with_s(1)).unwrap();
        (ix, r)
    }

    #[test]
    fn groups_hits_by_entity_type() {
        let (ix, r) = setup();
        let a = analyze(&ix, &r, &AnalyticsOptions::default());
        let labels: Vec<(&str, usize)> =
            a.by_type.iter().map(|g| (g.label.as_str(), g.hits)).collect();
        assert!(labels.contains(&("article", 2)), "{labels:?}");
        assert!(labels.contains(&("inproceedings", 1)), "{labels:?}");
    }

    #[test]
    fn facets_histogram_attribute_values() {
        let (ix, r) = setup();
        let a = analyze(&ix, &r, &AnalyticsOptions::default());
        let year_facet =
            a.facets.iter().find(|f| f.path == ["article", "year"]).expect("year facet");
        assert_eq!(year_facet.coverage, 2);
        assert_eq!(year_facet.values[0], FacetValue { value: "2001".into(), count: 2 });
    }

    #[test]
    fn keyword_hit_counts_match_masks() {
        let (ix, r) = setup();
        let a = analyze(&ix, &r, &AnalyticsOptions::default());
        assert_eq!(a.keyword_hit_counts, vec![3], "Ada Alpha is in all three records");
    }

    #[test]
    fn top_values_truncates() {
        let (ix, r) = setup();
        let opts = AnalyticsOptions { top_values: 1, ..Default::default() };
        let a = analyze(&ix, &r, &opts);
        assert!(a.facets.iter().all(|f| f.values.len() <= 1));
    }

    #[test]
    fn repeating_text_facets_can_be_excluded() {
        let (ix, r) = setup();
        let with = analyze(&ix, &r, &AnalyticsOptions::default());
        let without = analyze(
            &ix,
            &r,
            &AnalyticsOptions { include_repeating_text: false, ..Default::default() },
        );
        let has_author_facet =
            |a: &ResponseAnalytics| a.facets.iter().any(|f| f.path.last().unwrap() == "author");
        assert!(has_author_facet(&with));
        assert!(!has_author_facet(&without));
    }

    #[test]
    fn empty_response_yields_empty_analytics() {
        let (ix, _) = setup();
        let q = Query::parse("zzz").unwrap();
        let r = search(&ix, &q, SearchOptions::with_s(1)).unwrap();
        let a = analyze(&ix, &r, &AnalyticsOptions::default());
        assert!(a.by_type.is_empty());
        assert!(a.facets.is_empty());
        assert_eq!(a.keyword_hit_counts, vec![0]);
    }
}
