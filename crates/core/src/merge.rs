//! K-way merge of posting lists into the merged list `SL` (paper §4.1).
//!
//! "For the query keywords ki ∈ Q, we first merge their respective inverted
//! index lists such that in the merged list, keywords follow their arrival
//! order in the XML document" — i.e. `SL` is sorted by Dewey id (document
//! order), each entry tagged with the keyword it came from. The merge is the
//! classic heap-based k-way merge, O(|SL|·log n).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gks_dewey::DeweyId;

/// One entry of the merged list: a node and the query keyword (by index)
/// found at it.
pub type SlEntry = (DeweyId, u8);

/// [`merge_posting_lists`] plus the heap-operation count for the cost
/// ledger: every input entry is pushed and popped exactly once, so the
/// count is `2 × Σ|list|` — a deterministic function of the inputs, equal
/// to the actual number of `BinaryHeap` operations performed.
pub fn merge_posting_lists_counted(lists: Vec<Vec<DeweyId>>) -> (Vec<SlEntry>, u64) {
    let heap_ops: u64 = lists.iter().map(|l| 2 * l.len() as u64).sum();
    (merge_posting_lists(lists), heap_ops)
}

/// Merges the per-keyword lists (each already document-ordered) into `SL`.
pub fn merge_posting_lists(lists: Vec<Vec<DeweyId>>) -> Vec<SlEntry> {
    let total: usize = lists.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Heap of (next id, list index, position); Reverse for a min-heap.
    let mut heap: BinaryHeap<Reverse<(DeweyId, usize, usize)>> = BinaryHeap::new();
    let mut iters: Vec<std::vec::IntoIter<DeweyId>> =
        lists.into_iter().map(Vec::into_iter).collect();
    for (k, it) in iters.iter_mut().enumerate() {
        if let Some(first) = it.next() {
            heap.push(Reverse((first, k, 0)));
        }
    }
    while let Some(Reverse((id, k, _))) = heap.pop() {
        out.push((id, k as u8));
        if let Some(next) = iters[k].next() {
            heap.push(Reverse((next, k, out.len())));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_dewey::DocId;

    fn d(steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(0), steps.to_vec())
    }

    #[test]
    fn merge_interleaves_in_document_order() {
        let a = vec![d(&[0, 0]), d(&[2])];
        let b = vec![d(&[0, 1]), d(&[1]), d(&[3])];
        let sl = merge_posting_lists(vec![a, b]);
        let ids: Vec<&DeweyId> = sl.iter().map(|(id, _)| id).collect();
        assert!(ids.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            sl,
            vec![(d(&[0, 0]), 0), (d(&[0, 1]), 1), (d(&[1]), 1), (d(&[2]), 0), (d(&[3]), 1),]
        );
    }

    #[test]
    fn same_node_for_two_keywords_keeps_both_entries() {
        // An element-name keyword and a text keyword can hit the same node.
        let a = vec![d(&[1])];
        let b = vec![d(&[1])];
        let sl = merge_posting_lists(vec![a, b]);
        assert_eq!(sl.len(), 2);
        assert_eq!(sl[0].0, sl[1].0);
    }

    #[test]
    fn counted_merge_reports_two_ops_per_entry() {
        let a = vec![d(&[0, 0]), d(&[2])];
        let b = vec![d(&[0, 1]), d(&[1]), d(&[3])];
        let plain = merge_posting_lists(vec![a.clone(), b.clone()]);
        let (sl, heap_ops) = merge_posting_lists_counted(vec![a, b]);
        assert_eq!(sl, plain, "counting wrapper changes nothing");
        assert_eq!(heap_ops, 10, "5 entries × (push + pop)");
        assert_eq!(merge_posting_lists_counted(vec![]).1, 0);
    }

    #[test]
    fn empty_lists_are_fine() {
        assert!(merge_posting_lists(vec![]).is_empty());
        assert!(merge_posting_lists(vec![vec![], vec![]]).is_empty());
        let sl = merge_posting_lists(vec![vec![], vec![d(&[0])]]);
        assert_eq!(sl, vec![(d(&[0]), 1)]);
    }
}
