//! The statistics sweep: one pass over `SL` computing, for every candidate
//! node, its exact matched-keyword set, its potential-flow rank (§5), and —
//! for entity nodes — whether it has an *independent witness* (Def 2.2.1,
//! Lemmas 4–5).
//!
//! The sweep maintains a stack of "active" candidate nodes (exactly the
//! candidates whose subtree contains the current `SL` entry — candidates are
//! sorted, so this is the classic Dewey ancestor stack). Each entry updates
//! every active candidate:
//!
//! * the keyword bit joins the candidate's mask;
//! * if the entry is the shallowest occurrence of its keyword seen so far in
//!   the candidate's subtree, it becomes a *terminal point* and contributes
//!   the potential-flow path product `Π 1/children(v)` along the path from
//!   the candidate down to the entry's parent (ties at the same depth all
//!   contribute — "each of its occurrences is considered a terminal point");
//! * the entry's lowest entity ancestor-or-self is marked witnessed: a
//!   keyword occurrence is an independent witness for exactly the nearest
//!   enclosing entity node.
//!
//! The final rank is `P|e × Σ_k (terminal path products of k)` with
//! `P|e = |matched keywords|`, reproducing the paper's Example 5 numbers.

use gks_dewey::DeweyId;
use gks_index::fasthash::FastMap;
use gks_index::GksIndex;

use crate::merge::SlEntry;

/// Per-candidate results of the sweep.
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// The candidate node.
    pub dewey: DeweyId,
    /// Bit `i` set iff query keyword `i` occurs in the subtree.
    pub mask: u64,
    /// Potential-flow rank (§5).
    pub rank: f64,
    /// Whether some keyword occurrence has this node as its nearest
    /// enclosing entity (only meaningful for entity nodes).
    pub witnessed: bool,
}

impl NodeStats {
    /// Number of distinct query keywords in the subtree (`P|e`).
    pub fn keyword_count(&self) -> u32 {
        self.mask.count_ones()
    }
}

/// Runs the sweep. `nodes` must be sorted and deduplicated; `n_keywords` is
/// `|Q|`. Returns stats in the same order as `nodes`.
pub fn sweep(
    index: &GksIndex,
    sl: &[SlEntry],
    nodes: &[DeweyId],
    n_keywords: usize,
) -> Vec<NodeStats> {
    sweep_counted(index, sl, nodes, n_keywords).0
}

/// [`sweep`] plus the advance count for the cost ledger: the sum over `SL`
/// entries of the active candidate stack size — each unit is one
/// candidate-update step (mask join + terminal check), the dominant term of
/// the §4.2 sweep cost. The stack only ever holds ancestors of the current
/// entry, so the count is a per-document quantity and sums exactly across
/// shards of a document-partitioned corpus.
pub fn sweep_counted(
    index: &GksIndex,
    sl: &[SlEntry],
    nodes: &[DeweyId],
    n_keywords: usize,
) -> (Vec<NodeStats>, u64) {
    debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes sorted+deduped");
    let n_nodes = nodes.len();
    let mut mask = vec![0u64; n_nodes];
    // Terminal tracking, flattened [node][keyword].
    let mut min_depth = vec![u32::MAX; n_nodes * n_keywords];
    let mut prod_sum = vec![0f64; n_nodes * n_keywords];
    let mut witnessed = vec![false; n_nodes];

    let mut stack: Vec<usize> = Vec::new();
    let mut next_node = 0usize;
    let mut advances = 0u64;

    // Reciprocal child-count products along the current entry's root path:
    // prods[t] = Π_{u<t} 1/children(prefix of depth u), so the product from a
    // candidate at depth a down to the entry's parent is prods[dE]/prods[a].
    let mut prods: Vec<f64> = vec![1.0];
    let mut prev_entry: Option<DeweyId> = None;
    // Cache of lowest-entity-ancestor lookups per posting node (postings for
    // several keywords often repeat the same node).
    let mut lea_cache: FastMap<DeweyId, Option<DeweyId>> = FastMap::default();

    for (entry, kw) in sl {
        let kw = *kw as usize;
        // Activate candidates up to the current position.
        while next_node < n_nodes && nodes[next_node] <= *entry {
            while let Some(&top) = stack.last() {
                if nodes[top].is_ancestor_or_self(&nodes[next_node]) {
                    break;
                }
                stack.pop();
            }
            stack.push(next_node);
            next_node += 1;
        }
        // Keep only the candidates whose subtree contains the entry.
        while let Some(&top) = stack.last() {
            if nodes[top].is_ancestor_or_self(entry) {
                break;
            }
            stack.pop();
        }

        if !stack.is_empty() {
            // `prev_entry` is the entry `prods` currently describes — only
            // entries that actually refreshed `prods` update it.
            update_prods(index, &mut prods, prev_entry.as_ref(), entry);
            prev_entry = Some(entry.clone());
            let d_entry = entry.depth();
            advances += stack.len() as u64;
            for &idx in &stack {
                mask[idx] |= 1 << kw;
                let d_node = nodes[idx].depth();
                let p = prods[d_entry] / prods[d_node];
                let slot = idx * n_keywords + kw;
                let depth = d_entry as u32;
                match depth.cmp(&min_depth[slot]) {
                    std::cmp::Ordering::Less => {
                        min_depth[slot] = depth;
                        prod_sum[slot] = p;
                    }
                    std::cmp::Ordering::Equal => prod_sum[slot] += p,
                    std::cmp::Ordering::Greater => {}
                }
            }
        }

        // Witness marking: this occurrence independently witnesses its
        // nearest enclosing entity node.
        let lea = lea_cache
            .entry(entry.clone())
            .or_insert_with(|| index.node_table().lowest_entity_ancestor_or_self(entry))
            .clone();
        if let Some(entity) = lea {
            if let Ok(idx) = nodes.binary_search(&entity) {
                witnessed[idx] = true;
            }
        }
    }

    let stats = (0..n_nodes)
        .map(|i| {
            let sum: f64 = prod_sum[i * n_keywords..(i + 1) * n_keywords].iter().sum();
            let p = mask[i].count_ones() as f64;
            NodeStats {
                dewey: nodes[i].clone(),
                mask: mask[i],
                rank: p * sum,
                witnessed: witnessed[i],
            }
        })
        .collect();
    (stats, advances)
}

/// Refreshes the prefix-product vector for a new entry, reusing the shared
/// prefix with the previous entry (consecutive `SL` entries are pre-order
/// neighbours, so most of the path is unchanged).
fn update_prods(index: &GksIndex, prods: &mut Vec<f64>, prev: Option<&DeweyId>, entry: &DeweyId) {
    let keep = match prev {
        Some(p) => p.common_prefix_len(entry).unwrap_or(0),
        None => 0,
    };
    prods.truncate(keep + 1);
    for t in keep..entry.depth() {
        let prefix = entry.ancestor_at_depth(t);
        let children = index.node_table().child_count(&prefix).unwrap_or(1).max(1);
        // The caller seeds `prods` with 1.0; fall back to that seed so an
        // empty vector degrades gracefully instead of panicking.
        let last = prods.last().copied().unwrap_or(1.0);
        prods.push(last / children as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_posting_lists;
    use gks_dewey::DocId;
    use gks_index::{Corpus, GksIndex, IndexOptions};

    fn d(steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(0), steps.to_vec())
    }

    /// The Figure 1 tree as reconstructed in DESIGN.md: leaves are `<v>`
    /// elements holding one keyword each.
    fn fig1_index() -> GksIndex {
        let xml = "<r>\
            <x1><v>ka</v><v>kb</v><v>kc</v><v>kf</v>\
                <x2><v>ka</v><v>kb</v><v>kc</v></x2></x1>\
            <x3><v>ka</v><v>kb</v><x5><v>kd</v><v>kf</v></x5></x3>\
            <x4><v>kc</v><v>kd</v></x4>\
        </r>";
        let corpus = Corpus::from_named_strs([("fig1", xml)]).unwrap();
        GksIndex::build(&corpus, IndexOptions::default()).unwrap()
    }

    fn sl_for(ix: &GksIndex, kws: &[&str]) -> Vec<SlEntry> {
        merge_posting_lists(kws.iter().map(|k| ix.postings(k).to_vec()).collect())
    }

    #[test]
    fn example5_ranks() {
        // Q3 = {a, b, c, d}: the paper's Example 5 computes rank(x2) = 3,
        // rank(x3) = 2.5, rank(x4) = 2.
        let ix = fig1_index();
        let sl = sl_for(&ix, &["ka", "kb", "kc", "kd"]);
        let x2 = d(&[0, 4]);
        let x3 = d(&[1]);
        let x4 = d(&[2]);
        let stats = sweep(&ix, &sl, &[x2.clone(), x3.clone(), x4.clone()], 4);
        let by_node: std::collections::HashMap<_, _> =
            stats.iter().map(|s| (s.dewey.clone(), s)).collect();

        let s2 = by_node[&x2];
        assert_eq!(s2.keyword_count(), 3); // a, b, c
        assert!((s2.rank - 3.0).abs() < 1e-9, "rank(x2) = {}", s2.rank);

        let s3 = by_node[&x3];
        assert_eq!(s3.keyword_count(), 3); // a, b, d
        assert!((s3.rank - 2.5).abs() < 1e-9, "rank(x3) = {}", s3.rank);

        let s4 = by_node[&x4];
        assert_eq!(s4.keyword_count(), 2); // c, d
        assert!((s4.rank - 2.0).abs() < 1e-9, "rank(x4) = {}", s4.rank);
    }

    #[test]
    fn masks_are_exact() {
        let ix = fig1_index();
        let sl = sl_for(&ix, &["ka", "kd"]);
        let stats = sweep(&ix, &sl, &[d(&[]), d(&[0, 4]), d(&[1, 2])], 2);
        assert_eq!(stats[0].mask, 0b11); // root sees both
        assert_eq!(stats[1].mask, 0b01); // x2 has a only
        assert_eq!(stats[2].mask, 0b10); // x5 has d only
    }

    #[test]
    fn highest_occurrence_is_the_terminal() {
        // For x1 and keyword 'ka': occurrences at depth 2 (direct v child) and
        // depth 3 (inside x2). Only the depth-2 one is a terminal.
        let ix = fig1_index();
        let sl = sl_for(&ix, &["ka"]);
        let x1 = d(&[0]);
        let stats = sweep(&ix, &sl, &[x1], 1);
        // x1 has 5 children; the direct <v>ka</v> receives 1/5 of potential 1.
        assert!((stats[0].rank - 0.2).abs() < 1e-9, "rank = {}", stats[0].rank);
    }

    #[test]
    fn duplicate_terminals_at_same_depth_all_count() {
        let xml = "<r><v>ka</v><v>ka</v><v>kb</v></r>";
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let sl = sl_for(&ix, &["ka", "kb"]);
        let stats = sweep(&ix, &sl, &[d(&[])], 2);
        // P = 2; terminals: two 'a' at 1/3 each, one 'b' at 1/3 → rank 2.
        assert!((stats[0].rank - 2.0).abs() < 1e-9, "rank = {}", stats[0].rank);
    }

    #[test]
    fn witness_marks_nearest_entity_only() {
        // Courses with students: each Course is an entity; the Area above
        // them gets no witness from keywords that live inside courses.
        let xml = r#"<Area><Name>DB</Name><Courses>
            <Course><Name>Mining</Name><Students>
                <Student>Karen</Student><Student>Mike</Student></Students></Course>
            <Course><Name>AI</Name><Students>
                <Student>Karen</Student><Student>John</Student></Students></Course>
        </Courses></Area>"#;
        let corpus = Corpus::from_named_strs([("w", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let sl = sl_for(&ix, &["karen", "mike"]);
        let area = d(&[]);
        let course0 = d(&[1, 0]);
        let stats = sweep(&ix, &sl, &[area, course0], 2);
        assert!(!stats[0].witnessed, "Area's keywords all live inside courses");
        assert!(stats[1].witnessed, "Course 0 directly contains karen & mike");
        // Both masks are full nonetheless.
        assert_eq!(stats[0].mask, 0b11);
        assert_eq!(stats[1].mask, 0b11);
    }

    #[test]
    fn advance_count_sums_active_stack_sizes() {
        let ix = fig1_index();
        let sl = sl_for(&ix, &["ka", "kd"]);
        // Candidates root, x2, x5: every entry updates the root; entries
        // inside x2 / x5 update two candidates.
        let nodes = [d(&[]), d(&[0, 4]), d(&[1, 2])];
        let (stats, advances) = sweep_counted(&ix, &sl, &nodes, 2);
        assert_eq!(stats.len(), 3);
        let mut expected = 0u64;
        for (entry, _) in &sl {
            expected += nodes.iter().filter(|n| n.is_ancestor_or_self(entry)).count() as u64;
        }
        assert_eq!(advances, expected);
        assert!(advances > sl.len() as u64, "nested candidates multi-count");
        // The counting wrapper must not perturb the statistics.
        let plain = sweep(&ix, &sl, &nodes, 2);
        assert_eq!(plain.len(), stats.len());
        for (a, b) in plain.iter().zip(&stats) {
            assert_eq!(a.mask, b.mask);
            assert_eq!(a.rank, b.rank);
        }
    }

    #[test]
    fn empty_inputs() {
        let ix = fig1_index();
        assert!(sweep(&ix, &[], &[], 1).is_empty());
        let stats = sweep(&ix, &[], &[d(&[])], 1);
        assert_eq!(stats[0].mask, 0);
        assert_eq!(stats[0].rank, 0.0);
    }
}
