//! Candidate generation: sliding window over `SL` → Longest Common Prefix
//! list (paper §4.1, Figures 4–5).
//!
//! A block of `s` entries of the sorted merged list containing `s` *unique*
//! keywords has, as the Dewey id of its lowest common ancestor, the longest
//! common prefix of the block — and by Lemma 6 that is the common prefix of
//! just the first and last entry. The two-pointer sweep below ("while
//! !sU(l, r, s) shift r; if sU(l, r, s) shift l, r") enumerates every minimal
//! such block and collects the LCP of each.
//!
//! Candidates that land on an attribute node are promoted to their parent,
//! implementing Def 2.1.1's "the parent node of an attribute node is
//! considered the lowest ancestor for keyword(s) in its value".

use gks_dewey::DeweyId;
use gks_index::GksIndex;

use crate::merge::SlEntry;

/// Enumerates LCP candidates for blocks of `s` unique keywords, with
/// attribute-node promotion, returning them sorted and deduplicated.
pub fn lcp_candidates(
    index: &GksIndex,
    sl: &[SlEntry],
    s: usize,
    n_keywords: usize,
) -> Vec<DeweyId> {
    assert!(s >= 1, "threshold must be ≥ 1");
    let mut counts = vec![0u32; n_keywords];
    let mut unique = 0usize;
    let mut out: Vec<DeweyId> = Vec::new();
    let mut r = 0usize;

    for l in 0..sl.len() {
        // Extend the right edge until the window holds s unique keywords.
        while unique < s && r < sl.len() {
            let kw = sl[r].1 as usize;
            if counts[kw] == 0 {
                unique += 1;
            }
            counts[kw] += 1;
            r += 1;
        }
        if unique < s {
            break; // no block starting at or after l can reach s uniques
        }
        // Lemma 6: the LCP of the sorted block is the common prefix of its
        // first and last entries. A cross-document block has no common
        // ancestor and yields no candidate.
        if let Some(prefix) = sl[l].0.common_prefix(&sl[r - 1].0) {
            let promoted = promote_attribute(index, prefix);
            if out.last() != Some(&promoted) {
                out.push(promoted);
            }
        }
        // Slide the left edge.
        let kw = sl[l].1 as usize;
        counts[kw] -= 1;
        if counts[kw] == 0 {
            unique -= 1;
        }
    }

    out.sort_unstable();
    out.dedup();
    out
}

/// Promotes an attribute-node candidate to its parent (Def 2.1.1). Keywords
/// matching inside one attribute value have the attribute's parent as their
/// lowest meaningful ancestor.
fn promote_attribute(index: &GksIndex, mut id: DeweyId) -> DeweyId {
    while let Some(meta) = index.node_table().get(&id) {
        if meta.flags.is_attribute() {
            match id.parent() {
                Some(p) => id = p,
                None => break,
            }
        } else {
            break;
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_posting_lists;
    use gks_dewey::DocId;
    use gks_index::{Corpus, IndexOptions};

    fn d(steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(0), steps.to_vec())
    }

    fn fig2a_index() -> GksIndex {
        let xml = r#"<Dept><Dept_Name>CS</Dept_Name><Area><Name>Databases</Name><Courses>
            <Course><Name>Data Mining</Name><Students>
                <Student>Karen</Student><Student>Mike</Student></Students></Course>
            <Course><Name>Algorithms</Name><Students>
                <Student>Karen</Student><Student>John</Student></Students></Course>
        </Courses></Area></Dept>"#;
        let corpus = Corpus::from_named_strs([("f", xml)]).unwrap();
        GksIndex::build(&corpus, IndexOptions::default()).unwrap()
    }

    #[test]
    fn window_finds_common_ancestors() {
        let ix = fig2a_index();
        // karen (2 postings) + mike (1 posting).
        let sl =
            merge_posting_lists(vec![ix.postings("karen").to_vec(), ix.postings("mike").to_vec()]);
        let cands = lcp_candidates(&ix, &sl, 2, 2);
        // Blocks: (karen@c0, mike@c0) → Students of course 0;
        // (mike@c0, karen@c1) → Courses.
        assert!(cands.contains(&d(&[1, 1, 0, 1])), "Students of Data Mining");
        assert!(cands.contains(&d(&[1, 1])), "Courses spans the two courses");
    }

    #[test]
    fn s_equal_one_yields_each_posting_node() {
        let ix = fig2a_index();
        let karen = ix.postings("karen").to_vec();
        let sl = merge_posting_lists(vec![karen.clone()]);
        let cands = lcp_candidates(&ix, &sl, 1, 1);
        // Student text nodes are repeating (not attribute) nodes, so no
        // promotion happens and each posting is its own candidate.
        assert_eq!(cands, karen);
    }

    #[test]
    fn attribute_candidates_promoted_to_parent() {
        let ix = fig2a_index();
        // "data" and "mining" both live in the <Name> attribute node of the
        // first course; their 2-block LCP is the Name node itself, which must
        // be promoted to the Course (Def 2.1.1: ancestor of 'Databases' is
        // the Area, not the Name).
        let sl = merge_posting_lists(vec![
            ix.postings("data").to_vec(),
            ix.postings("mine").to_vec(), // "mining" stems to "mine"
        ]);
        let cands = lcp_candidates(&ix, &sl, 2, 2);
        assert_eq!(cands, vec![d(&[1, 1, 0])], "promoted to the Course node");
    }

    #[test]
    fn unreachable_threshold_gives_no_candidates() {
        let ix = fig2a_index();
        let sl = merge_posting_lists(vec![ix.postings("karen").to_vec(), Vec::new()]);
        assert!(lcp_candidates(&ix, &sl, 2, 2).is_empty());
    }

    #[test]
    fn duplicate_keyword_occurrences_do_not_fake_uniqueness() {
        let ix = fig2a_index();
        // Two karen postings with s=2 over a single keyword can never form a
        // valid block of 2 *unique* keywords.
        let sl = merge_posting_lists(vec![ix.postings("karen").to_vec()]);
        assert!(lcp_candidates(&ix, &sl, 2, 1).is_empty());
    }
}
