//! Keyword queries.
//!
//! A GKS query `Q = {k1 … kn}` is a *set of keywords*; each keyword is either
//! a single term or a quoted phrase (the paper's queries are full of author
//! names like `"Peter Buneman"`, which count as **one** keyword). Keywords
//! are normalized with the same analyzer the index used, so `Databases` in a
//! query meets `databas` in the index.

use gks_text::Analyzer;

use crate::error::{QueryError, MAX_KEYWORDS};

/// One query keyword: a term or a phrase of terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Keyword {
    /// The keyword as the user wrote it (for display).
    raw: String,
    /// Normalized terms; a phrase has several.
    terms: Vec<String>,
}

impl Keyword {
    /// The user-facing spelling.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// The normalized terms (one for a plain keyword, several for a phrase).
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// Whether this keyword is a multi-term phrase.
    pub fn is_phrase(&self) -> bool {
        self.terms.len() > 1
    }
}

/// A parsed keyword query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    keywords: Vec<Keyword>,
}

impl Query {
    /// Parses user input: whitespace-separated keywords, double-quoted
    /// phrases. Normalization (lower-case, stop words, stemming) is applied
    /// lazily by [`Self::normalized`] at search time, because it depends on
    /// the index's analyzer. This constructor only splits.
    pub fn parse(input: &str) -> Result<Query, QueryError> {
        let mut raw_keywords: Vec<String> = Vec::new();
        let mut rest = input.trim();
        while !rest.is_empty() {
            if let Some(stripped) = rest.strip_prefix('"') {
                let close = stripped.find('"').ok_or(QueryError::UnclosedQuote)?;
                let phrase = stripped[..close].trim();
                if !phrase.is_empty() {
                    raw_keywords.push(phrase.to_string());
                }
                rest = stripped[close + 1..].trim_start();
            } else {
                let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
                raw_keywords.push(rest[..end].to_string());
                rest = rest[end..].trim_start();
            }
        }
        Self::from_keywords(raw_keywords)
    }

    /// Builds a query from pre-split keywords (each string may be a phrase).
    pub fn from_keywords<S: Into<String>>(
        keywords: impl IntoIterator<Item = S>,
    ) -> Result<Query, QueryError> {
        let keywords: Vec<Keyword> = keywords
            .into_iter()
            .map(|raw| {
                let raw = raw.into();
                Keyword { terms: Vec::new(), raw }
            })
            .collect();
        if keywords.is_empty() {
            return Err(QueryError::Empty);
        }
        if keywords.len() > MAX_KEYWORDS {
            return Err(QueryError::TooManyKeywords(keywords.len()));
        }
        Ok(Query { keywords })
    }

    /// The raw keywords.
    pub fn keywords(&self) -> &[Keyword] {
        &self.keywords
    }

    /// Number of keywords, `|Q|`.
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// True for a keyword-less query (not constructible via the public API).
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// Normalizes every keyword with the given analyzer, producing the
    /// keywords the search engine actually matches. Keywords whose terms all
    /// normalize away (e.g. a stop word) keep an empty term list and simply
    /// never match.
    pub fn normalized(&self, analyzer: &Analyzer) -> Vec<Keyword> {
        self.keywords
            .iter()
            .map(|k| {
                let mut terms = Vec::new();
                analyzer.analyze_into(&k.raw, &mut terms);
                // A phrase is a set of terms that must co-occur; duplicates
                // within one phrase add nothing.
                terms.dedup();
                Keyword { raw: k.raw.clone(), terms }
            })
            .collect()
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, k) in self.keywords.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            if k.raw.contains(char::is_whitespace) {
                write!(f, "\"{}\"", k.raw)?;
            } else {
                write!(f, "{}", k.raw)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_keywords() {
        let q = Query::parse("student karen mike").unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.keywords()[0].raw(), "student");
    }

    #[test]
    fn parse_quoted_phrases() {
        let q = Query::parse(r#""Peter Buneman" "Wenfei Fan" xml"#).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.keywords()[0].raw(), "Peter Buneman");
        assert_eq!(q.keywords()[2].raw(), "xml");
    }

    #[test]
    fn unclosed_quote_rejected() {
        assert_eq!(Query::parse(r#"a "b c"#), Err(QueryError::UnclosedQuote));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Query::parse("   "), Err(QueryError::Empty));
    }

    #[test]
    fn too_many_keywords_rejected() {
        let words: Vec<String> = (0..65).map(|i| format!("k{i}")).collect();
        assert_eq!(Query::from_keywords(words), Err(QueryError::TooManyKeywords(65)));
    }

    #[test]
    fn normalization_stems_and_splits_phrases() {
        let q = Query::parse(r#""Relational Databases" Students"#).unwrap();
        let analyzer = gks_text::Analyzer::default();
        let norm = q.normalized(&analyzer);
        assert_eq!(norm[0].terms(), ["relat", "databas"]);
        assert!(norm[0].is_phrase());
        assert_eq!(norm[1].terms(), ["student"]);
        assert!(!norm[1].is_phrase());
    }

    #[test]
    fn stopword_keyword_normalizes_to_nothing() {
        let q = Query::parse("the database").unwrap();
        let norm = q.normalized(&gks_text::Analyzer::default());
        assert!(norm[0].terms().is_empty());
        assert_eq!(norm[1].terms(), ["databas"]);
    }

    #[test]
    fn display_round_trips_phrases() {
        let q = Query::parse(r#""Peter Buneman" xml"#).unwrap();
        assert_eq!(q.to_string(), r#""Peter Buneman" xml"#);
        assert_eq!(Query::parse(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn empty_quotes_are_skipped() {
        let q = Query::parse(r#""" a"#).unwrap();
        assert_eq!(q.len(), 1);
    }
}
