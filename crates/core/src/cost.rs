//! Per-request cost accounting: the work a query performed, counted in
//! units the paper's complexity analysis (§4.2, §5) is stated in — posting
//! entries, merge heap operations, sweep advances, rank candidates — rather
//! than wall-clock time. A slow query on a busy box and an expensive query
//! look identical to a latency histogram; the ledger tells them apart.
//!
//! Every counter is a deterministic function of the index contents and the
//! query, never of the clock or the machine, so ledgers obey the same
//! equivalence laws as answers:
//!
//! * **sharding**: documents partition across shards and every counter is a
//!   per-document sum, so gather-summed per-shard ledgers equal the
//!   unsharded engine's ledger exactly (the sharded explain proptest pins
//!   this);
//! * **masking**: after tombstone filtering the surviving work (per-keyword
//!   posting lengths, heap ops, sweep advances, rank candidates) equals a
//!   full rebuild's — only `postings_scanned`/`tombstone_masked` differ,
//!   and by exactly the dead entries.
//!
//! The ledger travels inside [`crate::search::Response`], is summed
//! field-wise at the gather, and is rendered by [`crate::wire`]'s explain
//! surface, the server's query log, `/metrics`, and the `/debug/top`
//! offender table.

/// Work counters for one search request. All counts are exact, not sampled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostLedger {
    /// Raw posting entries fetched from the inverted index (phrase keywords
    /// count every term's list — the entries the intersection walks over).
    pub postings_scanned: u64,
    /// Posting entries dropped by the tombstone mask (0 on a fresh index).
    pub tombstone_masked: u64,
    /// Heap operations of the k-way merge: each surviving entry is pushed
    /// and popped exactly once, so this is 2 × the merged input size.
    pub heap_ops: u64,
    /// Candidate-update steps of the statistics sweep: the sum over `SL`
    /// entries of the active candidate stack size (§4.2's sweep cost).
    pub sweep_advances: u64,
    /// Distinct nodes statistics were computed for (LCP candidates ∪ their
    /// LCEs) — the per-query rank workload.
    pub rank_candidates: u64,
    /// Attribute values examined by Deeper-Insight discovery (0 when DI is
    /// off).
    pub di_attrs: u64,
    /// Result-cache lookups made on behalf of this request (server only).
    pub cache_probes: u64,
    /// Result-cache lookups that hit (server only).
    pub cache_hits: u64,
    /// Bytes of the rendered (non-explain) response body (server/CLI only).
    pub result_bytes: u64,
    /// Per-keyword posting-list lengths after masking, in query keyword
    /// order — what actually entered the merge.
    pub per_keyword: Vec<u64>,
}

impl CostLedger {
    /// Adds `other` into `self`, field-wise. Per-keyword lengths add
    /// element-wise (the same query has the same keyword arity on every
    /// shard, but a short vector is padded rather than trusted).
    pub fn add(&mut self, other: &CostLedger) {
        self.postings_scanned += other.postings_scanned;
        self.tombstone_masked += other.tombstone_masked;
        self.heap_ops += other.heap_ops;
        self.sweep_advances += other.sweep_advances;
        self.rank_candidates += other.rank_candidates;
        self.di_attrs += other.di_attrs;
        self.cache_probes += other.cache_probes;
        self.cache_hits += other.cache_hits;
        self.result_bytes += other.result_bytes;
        if self.per_keyword.len() < other.per_keyword.len() {
            self.per_keyword.resize(other.per_keyword.len(), 0);
        }
        for (slot, v) in self.per_keyword.iter_mut().zip(&other.per_keyword) {
            *slot += v;
        }
    }

    /// Scalar work total used to rank queries against each other (the
    /// `/debug/top` offender table and the loadgen work summary): the
    /// algorithmic counters, excluding cache and byte bookkeeping.
    pub fn total_work(&self) -> u64 {
        self.postings_scanned
            + self.heap_ops
            + self.sweep_advances
            + self.rank_candidates
            + self.di_attrs
    }

    /// Appends the ledger as a deterministic JSON object (field order fixed,
    /// integers only — safe for byte-identity assertions).
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"postings_scanned\":{},\"tombstone_masked\":{},\"heap_ops\":{},\
             \"sweep_advances\":{},\"rank_candidates\":{},\"di_attrs\":{},\
             \"cache_probes\":{},\"cache_hits\":{},\"result_bytes\":{},\"per_keyword\":[",
            self.postings_scanned,
            self.tombstone_masked,
            self.heap_ops,
            self.sweep_advances,
            self.rank_candidates,
            self.di_attrs,
            self.cache_probes,
            self.cache_hits,
            self.result_bytes,
        );
        for (i, n) in self.per_keyword.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{n}");
        }
        out.push_str("]}");
    }

    /// The `x-gks-cost` header value: a compact `key=value;…` summary of the
    /// scalar counters (no per-keyword detail — that lives in the explain
    /// body).
    pub fn summary_header(&self) -> String {
        format!(
            "postings={};masked={};heap={};advances={};candidates={};di={};bytes={}",
            self.postings_scanned,
            self.tombstone_masked,
            self.heap_ops,
            self.sweep_advances,
            self.rank_candidates,
            self.di_attrs,
            self.result_bytes,
        )
    }

    /// Parses a [`CostLedger::summary_header`] value back into the scalar
    /// counters (per-keyword stays empty). Returns `None` on any malformed
    /// field — used by `gks loadgen` to fold response headers into its work
    /// summary.
    pub fn parse_summary_header(value: &str) -> Option<CostLedger> {
        let mut ledger = CostLedger::default();
        for part in value.split(';') {
            let (key, v) = part.split_once('=')?;
            let n: u64 = v.trim().parse().ok()?;
            match key.trim() {
                "postings" => ledger.postings_scanned = n,
                "masked" => ledger.tombstone_masked = n,
                "heap" => ledger.heap_ops = n,
                "advances" => ledger.sweep_advances = n,
                "candidates" => ledger.rank_candidates = n,
                "di" => ledger.di_attrs = n,
                "bytes" => ledger.result_bytes = n,
                _ => return None,
            }
        }
        Some(ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CostLedger {
        CostLedger {
            postings_scanned: 10,
            tombstone_masked: 2,
            heap_ops: 16,
            sweep_advances: 7,
            rank_candidates: 3,
            di_attrs: 4,
            cache_probes: 1,
            cache_hits: 0,
            result_bytes: 120,
            per_keyword: vec![5, 3],
        }
    }

    #[test]
    fn add_is_field_wise() {
        let mut a = sample();
        a.add(&sample());
        assert_eq!(a.postings_scanned, 20);
        assert_eq!(a.heap_ops, 32);
        assert_eq!(a.per_keyword, vec![10, 6]);
        // A wider addend grows the vector rather than losing lanes.
        let mut b = CostLedger::default();
        b.add(&sample());
        assert_eq!(b.per_keyword, vec![5, 3]);
    }

    #[test]
    fn json_is_deterministic() {
        let mut out = String::new();
        sample().write_json(&mut out);
        assert_eq!(
            out,
            "{\"postings_scanned\":10,\"tombstone_masked\":2,\"heap_ops\":16,\
             \"sweep_advances\":7,\"rank_candidates\":3,\"di_attrs\":4,\
             \"cache_probes\":1,\"cache_hits\":0,\"result_bytes\":120,\"per_keyword\":[5,3]}"
        );
        let mut again = String::new();
        sample().write_json(&mut again);
        assert_eq!(out, again);
    }

    #[test]
    fn summary_header_round_trips() {
        let header = sample().summary_header();
        let parsed = CostLedger::parse_summary_header(&header).expect("parses");
        assert_eq!(parsed.postings_scanned, 10);
        assert_eq!(parsed.sweep_advances, 7);
        assert_eq!(parsed.result_bytes, 120);
        assert!(parsed.per_keyword.is_empty(), "header carries scalars only");
        assert!(CostLedger::parse_summary_header("postings=x").is_none());
        assert!(CostLedger::parse_summary_header("bogus=1").is_none());
    }

    #[test]
    fn total_work_excludes_cache_and_bytes() {
        let l = sample();
        assert_eq!(l.total_work(), 10 + 16 + 7 + 3 + 4);
    }
}
