//! Per-keyword posting lists.
//!
//! A plain keyword's posting list comes straight from the inverted index. A
//! phrase keyword (`"Peter Buneman"`) matches the nodes that contain *all* of
//! its terms, i.e. the intersection of the terms' lists — an adequate phrase
//! model at text-node granularity, since author names, course titles, etc.
//! each live in one text node.

use gks_dewey::DeweyId;
use gks_index::GksIndex;

use crate::cost::CostLedger;
use crate::query::Keyword;

/// The document-ordered list of nodes matching `keyword`, empty if any term
/// is absent from the corpus.
pub fn keyword_postings(index: &GksIndex, keyword: &Keyword) -> Vec<DeweyId> {
    keyword_postings_masked(index, &[], keyword)
}

/// [`keyword_postings`] with tombstoned documents masked out: any posting
/// whose document id appears in `dead` (a sorted list of local doc ids) is
/// dropped. An empty mask takes the unfiltered fast path, so unmasked
/// search pays nothing.
pub fn keyword_postings_masked(index: &GksIndex, dead: &[u32], keyword: &Keyword) -> Vec<DeweyId> {
    masked_keyword_postings(index, dead, keyword).0
}

/// [`keyword_postings_masked`] with cost accounting folded into `ledger`:
/// `postings_scanned` grows by the raw posting entries fetched (every term's
/// list for a phrase), `tombstone_masked` by the entries the mask dropped,
/// and `per_keyword` gains one lane holding the surviving list length. All
/// three are deterministic functions of the index and the keyword, so the
/// counts obey the same shard-sum and mask-equivalence laws as the answers.
/// Scan counts come from the term dictionary ([`GksIndex::posting_count`]),
/// which a format-v3 index answers without decoding any posting block.
pub fn keyword_postings_counted(
    index: &GksIndex,
    dead: &[u32],
    keyword: &Keyword,
    ledger: &mut CostLedger,
) -> Vec<DeweyId> {
    ledger.postings_scanned +=
        keyword.terms().iter().map(|t| index.posting_count(t) as u64).sum::<u64>();
    let (list, masked) = masked_keyword_postings(index, dead, keyword);
    ledger.tombstone_masked += masked;
    ledger.per_keyword.push(list.len() as u64);
    list
}

/// Shared fetch-and-mask: returns the surviving list and how many postings
/// the mask dropped. A masked single-term keyword goes through
/// [`GksIndex::postings_masked`], which on a format-v3 index can skip
/// fully-tombstoned blocks without decoding them; phrases intersect raw
/// lists first and mask the (smaller) intersection, preserving the ledger
/// algebra of the eager path.
fn masked_keyword_postings(
    index: &GksIndex,
    dead: &[u32],
    keyword: &Keyword,
) -> (Vec<DeweyId>, u64) {
    if dead.is_empty() {
        return (raw_keyword_postings(index, keyword), 0);
    }
    if let [term] = keyword.terms() {
        return index.postings_masked(term, dead);
    }
    let raw = raw_keyword_postings(index, keyword);
    let raw_len = raw.len() as u64;
    let list: Vec<DeweyId> =
        raw.into_iter().filter(|id| dead.binary_search(&id.doc().0).is_err()).collect();
    let masked = raw_len - list.len() as u64;
    (list, masked)
}

fn raw_keyword_postings(index: &GksIndex, keyword: &Keyword) -> Vec<DeweyId> {
    match keyword.terms() {
        [] => Vec::new(),
        [term] => index.postings(term).to_vec(),
        terms => {
            // Intersect starting from the shortest list.
            let mut lists: Vec<&[DeweyId]> = terms.iter().map(|t| index.postings(t)).collect();
            lists.sort_by_key(|l| l.len());
            if lists[0].is_empty() {
                return Vec::new();
            }
            let mut acc: Vec<DeweyId> = lists[0].to_vec();
            for list in &lists[1..] {
                acc = intersect(&acc, list);
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }
    }
}

/// Intersection of two sorted lists: binary-search each element of the
/// shorter list in the not-yet-consumed tail of the longer one.
fn intersect(short: &[DeweyId], long: &[DeweyId]) -> Vec<DeweyId> {
    let mut out = Vec::with_capacity(short.len().min(long.len()));
    let mut lo = 0usize;
    for id in short {
        match long[lo..].binary_search(id) {
            Ok(pos) => {
                out.push(id.clone());
                lo += pos + 1;
            }
            Err(pos) => lo += pos,
        }
        if lo >= long.len() {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_dewey::DocId;
    use gks_index::{Corpus, IndexOptions};

    fn d(steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(0), steps.to_vec())
    }

    #[test]
    fn intersect_basics() {
        let a = vec![d(&[0]), d(&[1]), d(&[3]), d(&[7])];
        let b = vec![d(&[1]), d(&[2]), d(&[3]), d(&[9])];
        assert_eq!(intersect(&a, &b), vec![d(&[1]), d(&[3])]);
        assert_eq!(intersect(&a, &[]), vec![]);
        assert_eq!(intersect(&[], &b), vec![]);
        assert_eq!(intersect(&a, &a), a);
    }

    #[test]
    fn intersect_large_gallop() {
        let long: Vec<DeweyId> = (0..1000).map(|i| d(&[i])).collect();
        let short = vec![d(&[0]), d(&[500]), d(&[999]), d(&[2000])];
        assert_eq!(intersect(&short, &long), vec![d(&[0]), d(&[500]), d(&[999])]);
    }

    #[test]
    fn phrase_postings_require_cooccurrence() {
        let xml = r#"<dblp>
            <article><author>Peter Buneman</author></article>
            <article><author>Peter Chen</author></article>
            <article><author>Mary Buneman</author></article>
        </dblp>"#;
        let corpus = Corpus::from_named_strs([("d", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let q = crate::query::Query::parse(r#""Peter Buneman""#).unwrap();
        let kw = &q.normalized(ix.analyzer())[0];
        let postings = keyword_postings(&ix, kw);
        // Only the first article's author node has both terms.
        assert_eq!(postings.len(), 1);
        assert_eq!(postings[0], d(&[0, 0]));
    }

    #[test]
    fn absent_term_kills_phrase() {
        let xml = "<r><a>Peter</a></r>";
        let corpus = Corpus::from_named_strs([("d", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let q = crate::query::Query::parse(r#""Peter Nosuch""#).unwrap();
        let kw = &q.normalized(ix.analyzer())[0];
        assert!(keyword_postings(&ix, kw).is_empty());
    }

    #[test]
    fn counted_postings_track_scans_and_mask_drops() {
        let xml = "<r><a>ka</a><a>ka</a><a>kb</a></r>";
        let corpus = Corpus::from_named_strs([("d", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let q = crate::query::Query::parse("ka").unwrap();
        let kw = &q.normalized(ix.analyzer())[0];
        let mut ledger = crate::cost::CostLedger::default();
        let list = keyword_postings_counted(&ix, &[], kw, &mut ledger);
        assert_eq!(list, keyword_postings(&ix, kw));
        assert_eq!(ledger.postings_scanned, 2);
        assert_eq!(ledger.tombstone_masked, 0);
        assert_eq!(ledger.per_keyword, vec![2]);
        // Masking the whole document drops every entry — and counts it.
        let mut masked = crate::cost::CostLedger::default();
        let none = keyword_postings_counted(&ix, &[0], kw, &mut masked);
        assert!(none.is_empty());
        assert_eq!(masked.postings_scanned, 2);
        assert_eq!(masked.tombstone_masked, 2);
        assert_eq!(masked.per_keyword, vec![0]);
    }

    #[test]
    fn empty_keyword_has_no_postings() {
        let xml = "<r><a>x</a></r>";
        let corpus = Corpus::from_named_strs([("d", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let q = crate::query::Query::parse("the").unwrap(); // stop word
        let kw = &q.normalized(ix.analyzer())[0];
        assert!(keyword_postings(&ix, kw).is_empty());
    }
}
