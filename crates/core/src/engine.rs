//! The [`Engine`] facade: the three GKS modules of Figure 3 — indexing
//! engine, search engine, search-analysis engine — behind one handle.

use std::sync::Arc;

use gks_dewey::{DeweyId, DocId};
use gks_index::{Corpus, GksIndex, IndexError, IndexOptions};

use crate::analytics::{analyze, AnalyticsOptions, ResponseAnalytics};
use crate::chunk::render_xml_chunk;
use crate::di::{discover_di, recursive_di, DiOptions, DiRound, Insight};
use crate::error::QueryError;
use crate::query::Query;
use crate::refine::{refine, Refinement};
use crate::search::{search_masked, Hit, Response, SearchOptions};

/// A GKS engine over one indexed corpus.
///
/// ```
/// use gks_core::engine::Engine;
/// use gks_core::query::Query;
/// use gks_core::search::SearchOptions;
/// use gks_index::{Corpus, IndexOptions};
///
/// let xml = "<courses>\
///     <course><name>Mining</name><students>\
///         <student>Karen</student><student>Mike</student></students></course>\
///     <course><name>AI</name><students>\
///         <student>Karen</student><student>John</student></students></course>\
/// </courses>";
/// let corpus = Corpus::from_named_strs([("uni", xml)]).unwrap();
/// let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();
/// let resp = engine
///     .search(&Query::parse("karen mike").unwrap(), SearchOptions::with_s(2))
///     .unwrap();
/// assert_eq!(engine.describe_node(&resp.hits()[0].node), "uni/course");
/// ```
#[derive(Debug)]
pub struct Engine {
    index: Arc<GksIndex>,
    /// Sorted local document ids masked out of every search — documents
    /// deleted or superseded by a delta shard (see `gks_index::delta`).
    /// Empty for an engine over a frozen index, and free when empty.
    tombstones: Vec<u32>,
}

impl Engine {
    /// Indexes a corpus (single-threaded) and wraps it.
    pub fn build(corpus: &Corpus, options: IndexOptions) -> Result<Engine, IndexError> {
        Ok(Engine::from_index(GksIndex::build(corpus, options)?))
    }

    /// Indexes a corpus with `workers` parallel workers.
    pub fn build_parallel(
        corpus: &Corpus,
        options: IndexOptions,
        workers: usize,
    ) -> Result<Engine, IndexError> {
        Ok(Engine::from_index(GksIndex::build_parallel(corpus, options, workers)?))
    }

    /// Wraps an existing index (e.g. loaded via [`GksIndex::load`]).
    pub fn from_index(index: GksIndex) -> Engine {
        Engine { index: Arc::new(index), tombstones: Vec::new() }
    }

    /// Wraps a shared index with a tombstone mask: `tombstones` lists the
    /// local document ids to hide from every search. Sharing the `Arc`
    /// makes re-masking cheap — when a delta commit adds tombstones to an
    /// unchanged shard, the server builds a new `Engine` over the same
    /// loaded index instead of re-reading it from disk. The list is
    /// sorted/deduped here so searches can binary-search it.
    pub fn from_shared(index: Arc<GksIndex>, mut tombstones: Vec<u32>) -> Engine {
        tombstones.sort_unstable();
        tombstones.dedup();
        Engine { index, tombstones }
    }

    /// The underlying index.
    pub fn index(&self) -> &GksIndex {
        &self.index
    }

    /// The underlying index, shareable with another engine (re-masking).
    pub fn index_shared(&self) -> Arc<GksIndex> {
        Arc::clone(&self.index)
    }

    /// The sorted local document ids this engine masks out of searches.
    pub fn tombstones(&self) -> &[u32] {
        &self.tombstones
    }

    /// Runs a GKS search (§4), with this engine's tombstones masked out.
    pub fn search(&self, query: &Query, options: SearchOptions) -> Result<Response, QueryError> {
        search_masked(&self.index, &self.tombstones, query, options)
    }

    /// Extracts DI from a response (§6.2).
    pub fn discover_di(&self, response: &Response, options: &DiOptions) -> Vec<Insight> {
        discover_di(&self.index, response, options)
    }

    /// Recursive DI (§2.3): search → DI → re-query, `rounds` times.
    pub fn recursive_di(
        &self,
        query: &Query,
        search_options: SearchOptions,
        di_options: &DiOptions,
        rounds: usize,
    ) -> Result<Vec<DiRound>, QueryError> {
        recursive_di(&self.index, query, search_options, di_options, rounds)
    }

    /// Refinement suggestions from a response and its DI (§6.1).
    pub fn refine(&self, response: &Response, insights: &[Insight]) -> Refinement {
        refine(response, insights, 5)
    }

    /// Response analytics: entity-type group-bys and attribute facets over
    /// the answer set.
    pub fn analyze(&self, response: &Response, options: &AnalyticsOptions) -> ResponseAnalytics {
        analyze(&self.index, response, options)
    }

    /// Human-readable node description: `docname/label`.
    pub fn describe_node(&self, node: &DeweyId) -> String {
        let doc = self.index.doc_name(node.doc()).unwrap_or("?");
        let label = self.index.node_table().label_name(node).unwrap_or("?");
        format!("{doc}/{label}")
    }

    /// The element labels along the path from the document root to `node`
    /// (inclusive) — an XPath-like location such as
    /// `["dblp", "inproceedings", "author"]`.
    pub fn node_path(&self, node: &DeweyId) -> Vec<String> {
        (0..=node.depth())
            .map(|depth| {
                let prefix = node.ancestor_at_depth(depth);
                self.index.node_table().label_name(&prefix).unwrap_or("?").to_string()
            })
            .collect()
    }

    /// A short rendering of a hit: node description, Dewey id, matched
    /// keyword count, rank, and (for entity hits) up to three context
    /// attributes.
    pub fn render_hit(&self, hit: &Hit, response: &Response) -> String {
        let mut out = format!(
            "{} [{}] kws={} rank={:.3}",
            self.describe_node(&hit.node),
            hit.node,
            hit.keyword_count,
            hit.rank
        );
        let attrs = self.index.attr_store().entries(&hit.node);
        if !attrs.is_empty() {
            let shown: Vec<String> = attrs
                .iter()
                .take(3)
                .map(|e| {
                    let path: Vec<&str> =
                        e.path.iter().map(|&l| self.index.node_table().labels().name(l)).collect();
                    format!("{}={}", path.join("."), e.value)
                })
                .collect();
            out.push_str(&format!(" {{{}}}", shown.join(", ")));
        }
        let matched = hit.matched_keywords(response.keywords());
        out.push_str(&format!(" matched={matched:?}"));
        out
    }

    /// Renders a hit as a well-constructed XML fragment (the paper's
    /// Figure 2(b) response shape). The writer error arm is unreachable for
    /// indexes built by this crate; see [`crate::chunk::render_xml_chunk`].
    pub fn render_xml_chunk(&self, hit: &Hit) -> Result<String, gks_xml::WriterError> {
        render_xml_chunk(&self.index, hit)
    }

    /// Name of an indexed document.
    pub fn doc_name(&self, doc: DocId) -> Option<&str> {
        self.index.doc_name(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Threshold;

    fn engine() -> Engine {
        let xml = r#"<dblp>
            <article><title>Generic Keyword Search</title>
                <author>Manoj Agarwal</author><author>Krithi Ramamritham</author>
                <year>2016</year></article>
            <article><title>Holistic Twig Joins</title>
                <author>Nicolas Bruno</author><author>Divesh Srivastava</author>
                <year>2002</year></article>
        </dblp>"#;
        let corpus = Corpus::from_named_strs([("dblp", xml)]).unwrap();
        Engine::build(&corpus, IndexOptions::default()).unwrap()
    }

    #[test]
    fn end_to_end_search_di_refine() {
        let e = engine();
        let q = Query::parse(r#""Manoj Agarwal" "Divesh Srivastava""#).unwrap();
        let r = e
            .search(&q, SearchOptions { s: Threshold::Fixed(1), ..Default::default() })
            .unwrap();
        assert_eq!(r.hits().len(), 2, "one article per author");
        let di = e.discover_di(&r, &DiOptions::default());
        assert!(!di.is_empty());
        let refinement = e.refine(&r, &di);
        assert_eq!(refinement.sub_queries.len(), 2);
    }

    #[test]
    fn node_path_walks_labels() {
        let e = engine();
        let q = Query::parse("2016").unwrap();
        let r = e.search(&q, SearchOptions::default()).unwrap();
        assert_eq!(e.node_path(&r.hits()[0].node), vec!["dblp", "article"]);
    }

    #[test]
    fn describe_and_render() {
        let e = engine();
        let q = Query::parse("2016").unwrap();
        let r = e.search(&q, SearchOptions::default()).unwrap();
        let hit = &r.hits()[0];
        assert_eq!(e.describe_node(&hit.node), "dblp/article");
        let rendered = e.render_hit(hit, &r);
        assert!(rendered.contains("dblp/article"), "{rendered}");
        assert!(rendered.contains("2016"), "{rendered}");
    }

    #[test]
    fn from_index_round_trip() {
        let e = engine();
        let bytes = e.index().to_bytes();
        let e2 = Engine::from_index(GksIndex::from_bytes(bytes).unwrap());
        let q = Query::parse("twig").unwrap();
        let r1 = e.search(&q, SearchOptions::default()).unwrap();
        let r2 = e2.search(&q, SearchOptions::default()).unwrap();
        assert_eq!(r1.hits().len(), r2.hits().len());
        assert_eq!(r1.hits()[0].node, r2.hits()[0].node);
    }
}
