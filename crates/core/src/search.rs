//! GKS search (paper §4): retrieve every node containing at least `s` of the
//! query keywords, organized around LCE nodes, ranked by potential flow.
//!
//! Pipeline (Figure 6 of the paper, with the exact-statistics refinement
//! described in DESIGN.md):
//!
//! 1. fetch each keyword's posting list and k-way merge them into `SL`;
//! 2. slide a window of `s` unique keywords over `SL`, collecting the longest
//!    common prefix of each minimal block → candidate GKS nodes;
//! 3. derive each candidate's *Least Common Entity* (nearest entity
//!    ancestor-or-self, via `entityHash`);
//! 4. sweep `SL` once to compute exact matched-keyword sets, potential-flow
//!    ranks, and entity witnesses for all candidates and LCEs;
//! 5. assemble `RQ(s)`: witnessed LCE nodes, plus LCP candidates with no
//!    surviving LCE, pruned SLCA-style (an LCP hit strictly containing
//!    another hit is dropped — "the nodes in GKS response set follow the
//!    semantics of SLCA");
//! 6. rank: descending potential-flow rank, then keyword count, then
//!    document order.

use gks_dewey::DeweyId;
use gks_index::fasthash::{FastMap, FastSet};
use gks_index::GksIndex;
use gks_trace::{span, SpanKind};
use serde::{Deserialize, Serialize};

use crate::cost::CostLedger;
use crate::error::QueryError;
use crate::merge::merge_posting_lists_counted;
use crate::postlist::keyword_postings_counted;
use crate::query::{Keyword, Query};
use crate::sweep::sweep_counted;
use crate::window::lcp_candidates;

/// How the minimum keyword count `s` is chosen for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Threshold {
    /// A fixed `s`; effectively `min(s, |Q|)` per the problem definition.
    Fixed(usize),
    /// `s = |Q|` — every keyword must appear (the paper's `s=|Q|` rows).
    All,
    /// `s = max(1, |Q|/2)` — the paper's `s = |Q|/2` configuration.
    HalfQuery,
}

impl Threshold {
    /// Parses the user-facing spelling shared by the CLI (`-s`) and the
    /// server (`?s=`): a positive integer, `all`, or `half`. Returns `None`
    /// for anything else (including `0`, which [`Threshold::resolve`] would
    /// reject anyway).
    pub fn parse(value: &str) -> Option<Threshold> {
        match value {
            "all" => Some(Threshold::All),
            "half" => Some(Threshold::HalfQuery),
            v => match v.parse::<usize>() {
                Ok(s) if s > 0 => Some(Threshold::Fixed(s)),
                _ => None,
            },
        }
    }

    /// Resolves to a concrete `s` for a query of `n` keywords.
    pub fn resolve(self, n: usize) -> Result<usize, QueryError> {
        let s = match self {
            Threshold::Fixed(0) => return Err(QueryError::ZeroThreshold),
            Threshold::Fixed(s) => s.min(n),
            Threshold::All => n,
            Threshold::HalfQuery => (n / 2).max(1),
        };
        Ok(s.max(1))
    }
}

/// Search-time options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchOptions {
    /// The keyword threshold `s`.
    pub s: Threshold,
    /// Cap on returned hits (`usize::MAX` = unlimited).
    pub limit: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions { s: Threshold::Fixed(1), limit: usize::MAX }
    }
}

impl SearchOptions {
    /// Options with a fixed `s`.
    pub fn with_s(s: usize) -> Self {
        SearchOptions { s: Threshold::Fixed(s), ..Default::default() }
    }
}

/// How a hit entered the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HitKind {
    /// A Least Common Entity node (Def 2.2.1) with an independent witness.
    Lce,
    /// An LCP candidate with no surviving entity ancestor.
    Lcp,
}

/// One node of the GKS response `RQ(s)`.
#[derive(Debug, Clone)]
pub struct Hit {
    /// The node.
    pub node: DeweyId,
    /// LCE or plain LCP.
    pub kind: HitKind,
    /// Bit `i` set iff query keyword `i` occurs in the subtree.
    pub keyword_mask: u64,
    /// Number of distinct query keywords in the subtree.
    pub keyword_count: u32,
    /// Potential-flow rank (§5).
    pub rank: f64,
}

impl Hit {
    /// The raw spellings of the matched keywords, in query order.
    pub fn matched_keywords<'q>(&self, keywords: &'q [Keyword]) -> Vec<&'q str> {
        keywords
            .iter()
            .enumerate()
            .filter(|(i, _)| self.keyword_mask & (1 << i) != 0)
            .map(|(_, k)| k.raw())
            .collect()
    }
}

/// Per-stage counters and timings of one search — the §4.2 complexity
/// analysis made observable (used by the pipeline-breakdown experiment and
/// for diagnosing slow queries).
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchTrace {
    /// Candidate nodes from the sliding window (after attribute promotion
    /// and dedup).
    pub candidates: usize,
    /// Distinct LCE nodes derived from the candidates.
    pub lce_nodes: usize,
    /// LCE nodes that survived witness filtering with ≥ s keywords.
    pub witnessed_lce: usize,
    /// LCP hits emitted because no surviving LCE covered them.
    pub orphan_lcp: usize,
    /// LCP hits dropped by SLCA-style pruning.
    pub pruned: usize,
    /// Query normalization and threshold resolution time (µs).
    pub parse_micros: u64,
    /// Posting fetch + k-way merge time (µs).
    pub merge_micros: u64,
    /// Sliding-window candidate generation time (µs).
    pub window_micros: u64,
    /// Statistics sweep time (µs) — masks, ranks, witnesses.
    pub sweep_micros: u64,
    /// Hit assembly, pruning and final sort time (µs).
    pub assemble_micros: u64,
}

/// The response to a GKS search.
#[derive(Debug, Clone)]
pub struct Response {
    /// Normalized query keywords (index order = mask bit order).
    keywords: Vec<Keyword>,
    /// The resolved threshold.
    s: usize,
    /// Ranked hits.
    hits: Vec<Hit>,
    /// |SL| — drives the paper's response-time analysis (Figure 8).
    sl_len: usize,
    /// Wall-clock search time.
    elapsed_micros: u64,
    /// Keywords (by index) with zero postings — candidates for refinement.
    missing: Vec<usize>,
    /// Per-stage counters and timings.
    trace: SearchTrace,
    /// Work performed: the per-request resource ledger.
    cost: CostLedger,
}

impl Response {
    /// Ranked hits, best first.
    pub fn hits(&self) -> &[Hit] {
        &self.hits
    }

    /// The normalized keywords the search matched against.
    pub fn keywords(&self) -> &[Keyword] {
        &self.keywords
    }

    /// The resolved threshold `s`.
    pub fn s(&self) -> usize {
        self.s
    }

    /// Size of the merged posting list `SL`.
    pub fn sl_len(&self) -> usize {
        self.sl_len
    }

    /// Search latency in microseconds.
    pub fn elapsed_micros(&self) -> u64 {
        self.elapsed_micros
    }

    /// Indices of query keywords absent from the corpus.
    pub fn missing_keyword_indices(&self) -> &[usize] {
        &self.missing
    }

    /// Per-stage counters and timings of this search.
    pub fn trace(&self) -> &SearchTrace {
        &self.trace
    }

    /// The work this search performed, in index-and-query-determined units
    /// (see [`crate::cost`]).
    pub fn cost(&self) -> &CostLedger {
        &self.cost
    }

    /// Mutable ledger access, for layers above the engine (DI discovery,
    /// cache probes, rendered bytes) to fold their own work in.
    pub fn cost_mut(&mut self) -> &mut CostLedger {
        &mut self.cost
    }

    /// The highest keyword count among hits (the paper's "Max keywords in a
    /// GKS node", Table 7).
    pub fn max_keyword_count(&self) -> u32 {
        self.hits.iter().map(|h| h.keyword_count).max().unwrap_or(0)
    }

    /// Assembles a response from already-ranked parts — the gather half of a
    /// sharded search (see [`crate::shard`]). No searching or re-ranking
    /// happens here: `hits` must already be sorted by the final comparator
    /// (rank desc, keyword count desc, document order) and truncated to the
    /// caller's limit.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        keywords: Vec<Keyword>,
        s: usize,
        hits: Vec<Hit>,
        sl_len: usize,
        elapsed_micros: u64,
        missing: Vec<usize>,
        trace: SearchTrace,
        cost: CostLedger,
    ) -> Response {
        Response { keywords, s, hits, sl_len, elapsed_micros, missing, trace, cost }
    }
}

/// Runs a GKS search against an index.
pub fn search(
    index: &GksIndex,
    query: &Query,
    options: SearchOptions,
) -> Result<Response, QueryError> {
    search_masked(index, &[], query, options)
}

/// [`search`] with tombstoned documents masked out of the posting lists
/// before the merge: `dead` is a sorted list of local document ids whose
/// postings must not contribute to the answer (documents deleted or
/// superseded by a delta shard — see `gks_index::delta`). Filtering at the
/// posting-list stage keeps everything downstream — `missing`, the merged
/// `SL`, the sweep statistics, and the ranks — identical to an index that
/// never contained those documents, because no corpus-global statistic
/// enters the potential-flow rank. An empty mask is free.
pub fn search_masked(
    index: &GksIndex,
    dead: &[u32],
    query: &Query,
    options: SearchOptions,
) -> Result<Response, QueryError> {
    let search_span = span(SpanKind::Search);
    let mut trace = SearchTrace::default();
    let mut cost = CostLedger::default();

    let parse_span = span(SpanKind::Parse);
    let keywords = query.normalized(index.analyzer());
    if keywords.is_empty() {
        return Err(QueryError::Empty);
    }
    let n = keywords.len();
    let s = options.s.resolve(n)?;
    trace.parse_micros = parse_span.elapsed_micros();
    drop(parse_span);

    // 1.–2. Posting lists, merged into SL.
    let postings_span = span(SpanKind::Postings);
    let lists: Vec<Vec<DeweyId>> = keywords
        .iter()
        .map(|k| keyword_postings_counted(index, dead, k, &mut cost))
        .collect();
    let missing: Vec<usize> =
        lists.iter().enumerate().filter(|(_, l)| l.is_empty()).map(|(i, _)| i).collect();
    let (sl, heap_ops) = merge_posting_lists_counted(lists);
    cost.heap_ops = heap_ops;
    let sl_len = sl.len();
    gks_trace::annotate("postings_scanned", cost.postings_scanned);
    gks_trace::annotate("tombstone_masked", cost.tombstone_masked);
    gks_trace::annotate("heap_ops", cost.heap_ops);
    trace.merge_micros = postings_span.elapsed_micros();
    drop(postings_span);

    // 3. Window → LCP candidates (already promoted past attribute nodes).
    let sweep_span = span(SpanKind::Sweep);
    let candidates = lcp_candidates(index, &sl, s, n);
    trace.window_micros = sweep_span.elapsed_micros();
    trace.candidates = candidates.len();

    // 4. LCE derivation.
    let mut lce_of: FastMap<DeweyId, Option<DeweyId>> = FastMap::default();
    let mut lce_set: FastSet<DeweyId> = FastSet::default();
    for c in &candidates {
        let lce = index.node_table().lowest_entity_ancestor_or_self(c);
        if let Some(e) = &lce {
            lce_set.insert(e.clone());
        }
        lce_of.insert(c.clone(), lce);
    }

    // 5. Exact statistics for candidates ∪ LCEs.
    let mut stat_nodes: Vec<DeweyId> = candidates.clone();
    stat_nodes.extend(lce_set.iter().cloned());
    stat_nodes.sort_unstable();
    stat_nodes.dedup();
    let pre_sweep_micros = sweep_span.elapsed_micros();
    let (stats, advances) = sweep_counted(index, &sl, &stat_nodes, n);
    cost.sweep_advances = advances;
    cost.rank_candidates = stat_nodes.len() as u64;
    gks_trace::annotate("sweep_advances", cost.sweep_advances);
    gks_trace::annotate("rank_candidates", cost.rank_candidates);
    trace.sweep_micros = sweep_span.elapsed_micros().saturating_sub(pre_sweep_micros);
    trace.lce_nodes = lce_set.len();
    drop(sweep_span);
    let rank_span = span(SpanKind::Rank);
    let stat_by_node: FastMap<&DeweyId, usize> =
        stat_nodes.iter().enumerate().map(|(i, d)| (d, i)).collect();

    // 6. Assemble hits.
    let mut hits: Vec<Hit> = Vec::new();
    let mut emitted: FastSet<DeweyId> = FastSet::default();
    // Witnessed LCE nodes with enough keywords.
    for e in &lce_set {
        let st = &stats[stat_by_node[e]];
        if st.witnessed && st.keyword_count() as usize >= s && emitted.insert(e.clone()) {
            trace.witnessed_lce += 1;
            hits.push(Hit {
                node: e.clone(),
                kind: HitKind::Lce,
                keyword_mask: st.mask,
                keyword_count: st.keyword_count(),
                rank: st.rank,
            });
        }
    }
    // Candidates whose LCE is absent or did not survive fall back to plain
    // LCP hits ("those nodes in LCP list for which no corresponding LCE node
    // exist", §4.2).
    for c in &candidates {
        let surviving_lce = match &lce_of[c] {
            Some(e) => {
                let st = &stats[stat_by_node[e]];
                st.witnessed && st.keyword_count() as usize >= s
            }
            None => false,
        };
        if surviving_lce {
            continue;
        }
        let st = &stats[stat_by_node[c]];
        if st.keyword_count() as usize >= s && emitted.insert(c.clone()) {
            trace.orphan_lcp += 1;
            hits.push(Hit {
                node: c.clone(),
                kind: HitKind::Lcp,
                keyword_mask: st.mask,
                keyword_count: st.keyword_count(),
                rank: st.rank,
            });
        }
    }

    // SLCA-style pruning of LCP hits: drop an LCP hit whose contained hits
    // jointly cover its keyword set — its information is more specifically
    // available below (Table 1: x1 and r are dropped in favour of x2). An
    // ancestor carrying a keyword its descendants do not cover survives, so
    // no query keyword region is lost.
    hits.sort_by(|a, b| a.node.cmp(&b.node));
    let mut keep = vec![true; hits.len()];
    for i in 0..hits.len() {
        if hits[i].kind != HitKind::Lcp {
            continue;
        }
        // Hits are in document order: contained hits follow i contiguously
        // until the subtree upper bound. Pruned descendants may be counted
        // too — their masks are covered by their own descendants, so the
        // union over all contained hits equals the union over survivors.
        let upper = hits[i].node.subtree_upper_bound();
        let mut contained_union = 0u64;
        let mut any_contained = false;
        for h in hits.iter().skip(i + 1).take_while(|h| h.node < upper) {
            contained_union |= h.keyword_mask;
            any_contained = true;
        }
        if any_contained && contained_union & hits[i].keyword_mask == hits[i].keyword_mask {
            keep[i] = false;
        }
    }
    trace.pruned = keep.iter().filter(|&&k| !k).count();
    let mut hits: Vec<Hit> =
        hits.into_iter().zip(keep).filter(|(_, k)| *k).map(|(h, _)| h).collect();

    // 7. Final ranking.
    hits.sort_by(|a, b| {
        b.rank
            .partial_cmp(&a.rank)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.keyword_count.cmp(&a.keyword_count))
            .then_with(|| a.node.cmp(&b.node))
    });
    hits.truncate(options.limit);
    trace.assemble_micros = rank_span.elapsed_micros();
    drop(rank_span);

    Ok(Response {
        keywords,
        s,
        hits,
        sl_len,
        elapsed_micros: search_span.elapsed_micros(),
        missing,
        trace,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_dewey::DocId;
    use gks_index::{Corpus, IndexOptions};

    fn d(steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(0), steps.to_vec())
    }

    fn index_of(xml: &str) -> GksIndex {
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        GksIndex::build(&corpus, IndexOptions::default()).unwrap()
    }

    /// The Figure 1 tree (see DESIGN.md for the reconstruction).
    fn fig1() -> GksIndex {
        index_of(
            "<r>\
                <x1><v>ka</v><v>kb</v><v>kc</v><v>kf</v>\
                    <x2><v>ka</v><v>kb</v><v>kc</v></x2></x1>\
                <x3><v>ka</v><v>kb</v><x5><v>kd</v><v>kf</v></x5></x3>\
                <x4><v>kc</v><v>kd</v></x4>\
            </r>",
        )
    }

    fn run(ix: &GksIndex, q: &str, s: usize) -> Response {
        search(ix, &Query::parse(q).unwrap(), SearchOptions::with_s(s)).unwrap()
    }

    fn hit_nodes(r: &Response) -> Vec<DeweyId> {
        r.hits().iter().map(|h| h.node.clone()).collect()
    }

    const X1: &[u32] = &[0];
    const X2: &[u32] = &[0, 4];
    const X3: &[u32] = &[1];
    const X4: &[u32] = &[2];

    #[test]
    fn table1_q1_all_keywords() {
        // Q1 = {a,b,c}, s = |Q1|: GKS returns {x2} — x1 and r have no
        // information that is not more specifically in x2.
        let ix = fig1();
        let r = run(&ix, "ka kb kc", 3);
        assert_eq!(hit_nodes(&r), vec![d(X2)]);
        assert!((r.hits()[0].rank - 3.0).abs() < 1e-9);
    }

    #[test]
    fn table1_q2_missing_keyword() {
        // Q2 = {a,b,e}, s=2: 'ke' is absent; GKS still returns {x2},{x3}
        // while SLCA/ELCA would return NULL.
        let ix = fig1();
        let r = run(&ix, "ka kb ke", 2);
        let nodes = hit_nodes(&r);
        assert_eq!(nodes, vec![d(X2), d(X3)]);
        assert_eq!(r.missing_keyword_indices(), &[2]);
    }

    #[test]
    fn table1_q3_ranked_x2_x3_x4() {
        // Q3 = {a,b,c,d}, s=2: ranked {x2} > {x3} > {x4} (Example 5 ranks
        // 3 > 2.5 > 2).
        let ix = fig1();
        let r = run(&ix, "ka kb kc kd", 2);
        assert_eq!(hit_nodes(&r), vec![d(X2), d(X3), d(X4)]);
        let ranks: Vec<f64> = r.hits().iter().map(|h| h.rank).collect();
        assert!((ranks[0] - 3.0).abs() < 1e-9);
        assert!((ranks[1] - 2.5).abs() < 1e-9);
        assert!((ranks[2] - 2.0).abs() < 1e-9);
        assert_eq!(r.max_keyword_count(), 3);
    }

    #[test]
    fn x1_excluded_despite_qualifying() {
        // x1 contains a, b, c (its own copies and x2's) but every hit it
        // could justify is more specifically x2.
        let ix = fig1();
        let r = run(&ix, "ka kb kc", 3);
        assert!(!hit_nodes(&r).contains(&d(X1)));
    }

    #[test]
    fn example3_lce_response() {
        // Fig 2(a)-style data; Q4 = {student, karen, mike, john}, s=2 → the
        // three course entity nodes, ranked.
        let xml = r#"<Dept><Dept_Name>CS</Dept_Name><Area><Name>Databases</Name><Courses>
            <Course><Name>Data Mining</Name><Students>
                <Student>Karen</Student><Student>Mike</Student><Student>Peter</Student></Students></Course>
            <Course><Name>Algorithms</Name><Students>
                <Student>Karen</Student><Student>John</Student><Student>Julie</Student></Students></Course>
            <Course><Name>AI</Name><Students>
                <Student>Karen</Student><Student>Mike</Student><Student>Serena</Student></Students></Course>
        </Courses></Area></Dept>"#;
        let ix = index_of(xml);
        let r = run(&ix, "student karen mike john", 2);
        // All hits are LCE (entity) hits on Course nodes.
        for h in r.hits() {
            assert_eq!(h.kind, HitKind::Lce, "{:?}", h.node);
        }
        let nodes = hit_nodes(&r);
        assert!(nodes.contains(&d(&[1, 1, 0])), "Data Mining course");
        assert!(nodes.contains(&d(&[1, 1, 1])), "Algorithms course");
        assert!(nodes.contains(&d(&[1, 1, 2])), "AI course");
        // Courses with student+karen+mike (3 kws) outrank student+karen+john
        // … Data Mining and AI have {student,karen,mike}; all three courses
        // have ≥ 3 matched keywords? Algorithms has {student,karen,john}.
        assert!(r.hits()[0].keyword_count >= r.hits().last().unwrap().keyword_count);
    }

    #[test]
    fn dblp_example2_any_author() {
        // Example 2: s=1 returns every article by any queried author, ranked
        // so articles with more queried co-authors come first.
        let xml = r#"<dblp>
            <inproceedings><title>Joint Work</title>
                <author>Peter Buneman</author><author>Wenfei Fan</author><author>Scott Weinstein</author></inproceedings>
            <inproceedings><title>Pair Work</title>
                <author>Peter Buneman</author><author>Wenfei Fan</author></inproceedings>
            <inproceedings><title>Solo A</title><author>Peter Buneman</author><author>Someone Else</author></inproceedings>
            <inproceedings><title>Unrelated</title><author>Prithviraj Banerjee</author><author>Other Guy</author></inproceedings>
        </dblp>"#;
        let ix = index_of(xml);
        let q = r#""Peter Buneman" "Wenfei Fan" "Scott Weinstein" "Prithviraj Banerjee""#;
        let r = run(&ix, q, 1);
        assert_eq!(r.hits().len(), 4, "all four articles match s=1");
        // The three-author article ranks first, the two-author second.
        assert_eq!(r.hits()[0].node, d(&[0]));
        assert_eq!(r.hits()[0].keyword_count, 3);
        assert_eq!(r.hits()[1].node, d(&[1]));
        // An LCA-based technique would have returned the DBLP root; GKS must
        // not.
        assert!(!hit_nodes(&r).contains(&d(&[])));
    }

    #[test]
    fn threshold_resolution() {
        assert_eq!(Threshold::Fixed(3).resolve(5).unwrap(), 3);
        assert_eq!(Threshold::Fixed(9).resolve(5).unwrap(), 5, "min(s, |Q|)");
        assert_eq!(Threshold::All.resolve(5).unwrap(), 5);
        assert_eq!(Threshold::HalfQuery.resolve(5).unwrap(), 2);
        assert_eq!(Threshold::HalfQuery.resolve(1).unwrap(), 1);
        assert!(Threshold::Fixed(0).resolve(3).is_err());
    }

    #[test]
    fn threshold_parsing() {
        assert_eq!(Threshold::parse("3"), Some(Threshold::Fixed(3)));
        assert_eq!(Threshold::parse("all"), Some(Threshold::All));
        assert_eq!(Threshold::parse("half"), Some(Threshold::HalfQuery));
        assert_eq!(Threshold::parse("0"), None);
        assert_eq!(Threshold::parse("-1"), None);
        assert_eq!(Threshold::parse("many"), None);
    }

    #[test]
    fn lemma2_monotonicity_on_fig1() {
        // |RQ(s1)| ≤ |RQ(s2)| for s1 > s2 (Lemma 2).
        let ix = fig1();
        let mut prev = usize::MAX;
        for s in 1..=4 {
            let r = run(&ix, "ka kb kc kd", s);
            assert!(r.hits().len() <= prev, "s={s}: {} > {prev}", r.hits().len());
            prev = r.hits().len();
        }
    }

    #[test]
    fn no_hits_when_nothing_matches() {
        let ix = fig1();
        let r = run(&ix, "zz yy", 1);
        assert!(r.hits().is_empty());
        assert_eq!(r.missing_keyword_indices(), &[0, 1]);
    }

    #[test]
    fn limit_truncates() {
        let ix = fig1();
        let mut opts = SearchOptions::with_s(1);
        opts.limit = 2;
        let r = search(&ix, &Query::parse("ka kb kc kd").unwrap(), opts).unwrap();
        assert_eq!(r.hits().len(), 2);
    }

    #[test]
    fn cost_ledger_counts_the_pipeline_work() {
        let ix = fig1();
        let r = run(&ix, "ka kb kc kd", 2);
        let c = r.cost();
        assert_eq!(c.per_keyword.len(), 4, "one lane per keyword");
        // Plain keywords, no mask: scans equal surviving lengths, and every
        // scanned entry is pushed and popped once by the merge.
        assert_eq!(c.postings_scanned, c.per_keyword.iter().sum::<u64>());
        assert_eq!(c.heap_ops, 2 * r.sl_len() as u64);
        assert_eq!(c.tombstone_masked, 0);
        assert!(c.sweep_advances >= r.sl_len() as u64, "every entry hits ≥1 candidate here");
        assert!(c.rank_candidates > 0);
        // Engine-level ledgers know nothing of caches, DI, or rendering.
        assert_eq!(c.cache_probes, 0);
        assert_eq!(c.di_attrs, 0);
        assert_eq!(c.result_bytes, 0);
    }

    #[test]
    fn matched_keywords_reports_raw_spellings() {
        let ix = fig1();
        let r = run(&ix, "ka kb kc kd", 2);
        let matched = r.hits()[0].matched_keywords(r.keywords());
        assert_eq!(matched, vec!["ka", "kb", "kc"]);
    }
}
