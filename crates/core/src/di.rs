//! Deeper Analytical Insights (paper §2.3, §6.2).
//!
//! For the LCE nodes in a response `RQ(s)`, GKS assembles the weighted
//! keyword set `Sw_Q`: every attribute value of every LCE node, weighted by
//! the sum of the ranks of the LCE nodes that carry it. "Each attribute node
//! is assigned a weight equal to the rank of its LCE node" — rank-weighting
//! (rather than raw popularity) is what makes `<journal: SIGMOD Record>`
//! beat `<booktitle: ICPP>` in the paper's Example 2 discussion. The top-m
//! weighted keywords, each with the element path that gives it its
//! *semantics* (`<ip: year: 2001>`), are the DI.
//!
//! DI can be applied recursively: the top-m insight values are fed back as a
//! query, producing `R^r_Q(s)` and deeper insights (§2.3 steps i–iii).

use gks_dewey::DeweyId;
use gks_index::attrstore::AttrSource;
use gks_index::fasthash::FastMap;
use gks_index::GksIndex;

use crate::error::QueryError;
use crate::query::{Keyword, Query};
use crate::search::{search, Hit, HitKind, Response, SearchOptions};

/// Options for DI extraction.
#[derive(Debug, Clone)]
pub struct DiOptions {
    /// How many top-weighted insights to return (`m`; "m is tunable").
    pub top_m: usize,
    /// Include repeating text nodes (author lists etc.) as insight sources,
    /// as the paper's DBLP examples do. When `false`, only true attribute
    /// nodes contribute.
    pub include_repeating_text: bool,
    /// Consider at most this many top-ranked LCE hits (caps DI cost on huge
    /// responses; `usize::MAX` = all).
    pub max_hits: usize,
}

impl Default for DiOptions {
    fn default() -> Self {
        DiOptions { top_m: 5, include_repeating_text: true, max_hits: usize::MAX }
    }
}

/// One discovered insight: a data keyword plus its schema semantics.
#[derive(Debug, Clone)]
pub struct Insight {
    /// The attribute value, as written in the data (e.g. `SIGMOD Record`).
    pub value: String,
    /// Element names from the LCE node down to the value (e.g.
    /// `["inproceedings", "journal"]`) — the keyword's semantics.
    pub path: Vec<String>,
    /// Aggregated weight: sum of the ranks of the LCE hits carrying this
    /// value under this path.
    pub weight: f64,
    /// In how many LCE hits the value occurred.
    pub support: usize,
}

impl Insight {
    /// The paper's display form: `<entity: path: value>`.
    pub fn display(&self) -> String {
        let mut out = String::from("<");
        for p in &self.path {
            out.push_str(p);
            out.push_str(": ");
        }
        out.push_str(&self.value);
        out.push('>');
        out
    }
}

/// Incremental DI aggregation — the body of [`discover_di`], factored so a
/// sharded gather (see [`crate::shard`]) can feed hits resolved against
/// several shard indexes while preserving the exact aggregation, first-seen
/// raw-value choice, and ordering of the unsharded path.
#[derive(Debug)]
pub struct DiAccumulator {
    /// Normalized query terms, to exclude query keywords from Sw_Q ("if a
    /// keyword in the attribute node is part of the user query Q, it is not
    /// included").
    query_terms: std::collections::HashSet<String>,
    /// Aggregation key: (path labels, normalized value).
    agg: FastMap<(Vec<String>, String), Insight>,
    top_m: usize,
    include_repeating_text: bool,
    max_hits: usize,
    observed: usize,
    attrs_evaluated: u64,
}

impl DiAccumulator {
    /// Starts an accumulation for `response`'s query under `options`.
    pub fn new(response: &Response, options: &DiOptions) -> DiAccumulator {
        DiAccumulator {
            query_terms: response
                .keywords()
                .iter()
                .flat_map(|k| k.terms().iter().cloned())
                .collect(),
            agg: FastMap::default(),
            top_m: options.top_m,
            include_repeating_text: options.include_repeating_text,
            max_hits: options.max_hits,
            observed: 0,
            attrs_evaluated: 0,
        }
    }

    /// How many attribute-store entries [`observe`](Self::observe) has
    /// inspected so far — the DI term of the request's
    /// [`CostLedger`](crate::CostLedger). Counted per entry *considered*
    /// (before the repeating-text and query-restating filters), so the
    /// number reflects work done, not insights kept.
    pub fn attrs_evaluated(&self) -> u64 {
        self.attrs_evaluated
    }

    /// Feeds one hit, resolved against `index` via `node` — the hit's id in
    /// `index`'s own document numbering (shard-local for sharded search,
    /// `hit.node` itself otherwise). Hits must arrive in response rank
    /// order; every call counts toward `max_hits`, matching the unsharded
    /// pipeline where non-LCE hits consume budget without contributing.
    pub fn observe(&mut self, index: &GksIndex, hit: &Hit, node: &DeweyId) {
        if self.observed >= self.max_hits {
            return;
        }
        self.observed += 1;
        if hit.kind != HitKind::Lce {
            return;
        }
        let analyzer = index.analyzer();
        let entity_label = index.node_table().label_name(node).unwrap_or("?").to_string();
        for entry in index.attr_store().entries(node) {
            self.attrs_evaluated += 1;
            if entry.source == AttrSource::RepeatingText && !self.include_repeating_text {
                continue;
            }
            // Skip values that restate the query.
            let value_terms = analyzer.analyze(&entry.value);
            if value_terms.is_empty()
                || value_terms.iter().any(|t| self.query_terms.contains(t.as_str()))
            {
                continue;
            }
            let mut path: Vec<String> = Vec::with_capacity(entry.path.len() + 1);
            path.push(entity_label.clone());
            path.extend(
                entry.path.iter().map(|&l| index.node_table().labels().name(l).to_string()),
            );
            let norm_value = value_terms.join(" ");
            let key = (path.clone(), norm_value);
            let insight = self.agg.entry(key).or_insert_with(|| Insight {
                value: entry.value.clone(),
                path,
                weight: 0.0,
                support: 0,
            });
            insight.weight += hit.rank;
            insight.support += 1;
        }
    }

    /// Finishes the accumulation: sorts by (weight desc, support desc,
    /// value asc) and truncates to the top-m.
    pub fn finish(self) -> Vec<Insight> {
        let mut insights: Vec<Insight> = self.agg.into_values().collect();
        insights.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.support.cmp(&a.support))
                .then_with(|| a.value.cmp(&b.value))
        });
        insights.truncate(self.top_m);
        insights
    }
}

/// Extracts DI from a response's LCE hits.
pub fn discover_di(index: &GksIndex, response: &Response, options: &DiOptions) -> Vec<Insight> {
    discover_di_counted(index, response, options).0
}

/// [`discover_di`] plus the number of attribute entries evaluated — the
/// `di_attrs` term of the request's [`CostLedger`](crate::CostLedger).
pub fn discover_di_counted(
    index: &GksIndex,
    response: &Response,
    options: &DiOptions,
) -> (Vec<Insight>, u64) {
    let _di_span = gks_trace::span(gks_trace::SpanKind::Di);
    let mut acc = DiAccumulator::new(response, options);
    for hit in response.hits() {
        acc.observe(index, hit, &hit.node);
    }
    let attrs = acc.attrs_evaluated();
    gks_trace::annotate("di_attrs", attrs);
    (acc.finish(), attrs)
}

/// One round of recursive DI.
#[derive(Debug, Clone)]
pub struct DiRound {
    /// The query this round searched (round 0 = the user query).
    pub query: Query,
    /// The response it produced.
    pub response: Response,
    /// The insights extracted from it.
    pub insights: Vec<Insight>,
}

/// Recursive DI (§2.3): run the query, extract DI, feed the top-m insight
/// values back as the next query, `rounds` times. Stops early when a round
/// yields no insights.
pub fn recursive_di(
    index: &GksIndex,
    query: &Query,
    search_options: SearchOptions,
    di_options: &DiOptions,
    rounds: usize,
) -> Result<Vec<DiRound>, QueryError> {
    let mut out = Vec::new();
    let mut current = query.clone();
    for _ in 0..=rounds {
        let response = search(index, &current, search_options)?;
        let insights = discover_di(index, &response, di_options);
        let next_keywords: Vec<String> = insights.iter().map(|i| i.value.clone()).collect();
        out.push(DiRound { query: current.clone(), response, insights });
        if next_keywords.is_empty() || out.len() > rounds {
            break;
        }
        current = Query::from_keywords(next_keywords)?;
    }
    Ok(out)
}

/// Convenience: the raw spellings of keywords matched nowhere, used by
/// refinement messages.
pub fn missing_keywords(response: &Response) -> Vec<&Keyword> {
    response
        .missing_keyword_indices()
        .iter()
        .map(|&i| &response.keywords()[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_index::{Corpus, IndexOptions};

    fn dblp_index() -> GksIndex {
        // Mirrors the Example 2 situation: three authors co-publish in
        // SIGMOD Record 2001; a fourth (Banerjee) publishes a lot in ICPP,
        // alone.
        let mut xml = String::from("<dblp>");
        for i in 0..3 {
            xml.push_str(&format!(
                "<inproceedings><title>Joint {i}</title>\
                 <author>Peter Buneman</author><author>Wenfei Fan</author>\
                 <author>Scott Weinstein</author>\
                 <journal>SIGMOD Record</journal><year>2001</year></inproceedings>"
            ));
        }
        for i in 0..6 {
            xml.push_str(&format!(
                "<inproceedings><title>Solo {i}</title>\
                 <author>Prithviraj Banerjee</author><author>Filler Person</author>\
                 <booktitle>ICPP</booktitle><year>1999</year></inproceedings>"
            ));
        }
        xml.push_str("</dblp>");
        let corpus = Corpus::from_named_strs([("dblp", xml)]).unwrap();
        GksIndex::build(&corpus, IndexOptions::default()).unwrap()
    }

    fn example2_response(ix: &GksIndex) -> Response {
        let q =
            Query::parse(r#""Peter Buneman" "Wenfei Fan" "Scott Weinstein" "Prithviraj Banerjee""#)
                .unwrap();
        search(ix, &q, SearchOptions::with_s(1)).unwrap()
    }

    #[test]
    fn rank_weighting_prefers_sigmod_over_icpp() {
        // ICPP is the most *popular* attribute (6 articles) but SIGMOD
        // Record is relevant to three query authors at once — rank-weighted
        // DI must put SIGMOD Record above ICPP (paper §6.2's central
        // example).
        let ix = dblp_index();
        let r = example2_response(&ix);
        let di = discover_di(&ix, &r, &DiOptions { top_m: 10, ..Default::default() });
        let pos = |needle: &str| {
            di.iter()
                .position(|i| i.value.contains(needle))
                .unwrap_or_else(|| panic!("{needle} not in DI: {di:?}"))
        };
        assert!(pos("SIGMOD") < pos("ICPP"), "{di:#?}");
    }

    #[test]
    fn di_excludes_query_keywords() {
        let ix = dblp_index();
        let r = example2_response(&ix);
        let di = discover_di(&ix, &r, &DiOptions { top_m: 50, ..Default::default() });
        assert!(di.iter().all(|i| !i.value.contains("Buneman")));
        assert!(di.iter().all(|i| !i.value.contains("Banerjee")));
    }

    #[test]
    fn di_paths_expose_semantics() {
        let ix = dblp_index();
        let r = example2_response(&ix);
        let di = discover_di(&ix, &r, &DiOptions { top_m: 20, ..Default::default() });
        let year = di.iter().find(|i| i.value == "2001").expect("year insight");
        assert_eq!(year.path, vec!["inproceedings", "year"]);
        assert_eq!(year.display(), "<inproceedings: year: 2001>");
    }

    #[test]
    fn repeating_text_sources_can_be_excluded() {
        let ix = dblp_index();
        let r = example2_response(&ix);
        let opts = DiOptions { top_m: 50, include_repeating_text: false, ..Default::default() };
        let di = discover_di(&ix, &r, &opts);
        // Co-author names come from repeating <author> nodes.
        assert!(di.iter().all(|i| i.path.last().map(String::as_str) != Some("author")));
        // Attribute-node insights (journal, year, title) remain.
        assert!(di.iter().any(|i| i.value == "2001"));
    }

    #[test]
    fn recursive_di_runs_multiple_rounds() {
        let ix = dblp_index();
        let q = Query::parse(r#""Peter Buneman""#).unwrap();
        let rounds = recursive_di(
            &ix,
            &q,
            SearchOptions::with_s(1),
            &DiOptions { top_m: 2, ..Default::default() },
            2,
        )
        .unwrap();
        assert!(rounds.len() >= 2, "initial round plus at least one recursion");
        assert_eq!(rounds[0].query, q);
        // The second round queries the first round's insight values.
        let first_values: Vec<&str> = rounds[0].insights.iter().map(|i| i.value.as_str()).collect();
        for kw in rounds[1].query.keywords() {
            assert!(first_values.contains(&kw.raw()));
        }
    }

    #[test]
    fn di_counts_attribute_entries_evaluated() {
        let ix = dblp_index();
        let r = example2_response(&ix);
        let (di, attrs) = discover_di_counted(&ix, &r, &DiOptions::default());
        assert!(!di.is_empty());
        // Every LCE hit carries at least title/journal-or-booktitle/year
        // attribute entries, and evaluation counts filtered entries too, so
        // the count strictly exceeds the kept-insight count.
        assert!(attrs as usize >= di.len(), "{attrs} evaluated vs {} kept", di.len());
        assert!(attrs > 0);
        let q = Query::parse("zzznothing").unwrap();
        let empty = search(&ix, &q, SearchOptions::with_s(1)).unwrap();
        assert_eq!(discover_di_counted(&ix, &empty, &DiOptions::default()).1, 0);
    }

    #[test]
    fn empty_response_yields_no_di() {
        let ix = dblp_index();
        let q = Query::parse("zzz").unwrap();
        let r = search(&ix, &q, SearchOptions::with_s(1)).unwrap();
        assert!(discover_di(&ix, &r, &DiOptions::default()).is_empty());
    }
}
