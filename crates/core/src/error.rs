//! Error types for query parsing and search.

use std::fmt;

/// Maximum keywords per query: matched-keyword sets are tracked as `u64`
/// bit masks. The paper's largest query has 16 keywords.
pub const MAX_KEYWORDS: usize = 64;

/// Errors from [`crate::query::Query::parse`] and search entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query has no keywords after normalization (empty input, or all
    /// terms were stop words).
    Empty,
    /// More than [`MAX_KEYWORDS`] keywords.
    TooManyKeywords(usize),
    /// An unterminated quoted phrase.
    UnclosedQuote,
    /// `s` was 0 — the threshold must be at least 1.
    ZeroThreshold,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Empty => write!(f, "query has no keywords after normalization"),
            QueryError::TooManyKeywords(n) => {
                write!(f, "query has {n} keywords; at most {MAX_KEYWORDS} are supported")
            }
            QueryError::UnclosedQuote => write!(f, "unterminated quoted phrase in query"),
            QueryError::ZeroThreshold => write!(f, "threshold s must be at least 1"),
        }
    }
}

impl std::error::Error for QueryError {}
