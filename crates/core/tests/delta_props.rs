//! Property test of the incremental update path: after any sequence of
//! add/modify/delete commits (with occasional compactions), searching the
//! base+delta shard set through the manifest must be **byte-identical on
//! the wire** to a full rebuild of the mutated corpus.
//!
//! This is the equivalence that makes delta shards safe to serve: masked
//! per-shard search plus the document-table renumbering reproduces exactly
//! the response a monolithic `gks index` of the current directory would
//! give, keywords, ranks, node ids, paths and all.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::{SearchOptions, Threshold};
use gks_core::shard::{load_manifest_engines, sharded_search_mapped};
use gks_core::wire;
use gks_index::delta::{commit_delta, compact, index_directory};
use gks_index::{Corpus, GksIndex, IndexFormat, IndexOptions, ShardManifest};
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

const WORDS: [&str; 6] = ["apple", "banana", "cherry", "durian", "elder", "fig"];

fn doc_xml(words: &[usize]) -> String {
    let mut xml = String::from("<course><students>");
    for &w in words {
        xml.push_str(&format!("<student>{}</student>", WORDS[w % WORDS.len()]));
    }
    xml.push_str("</students></course>");
    xml
}

/// One corpus mutation: which doc slot it touches and what happens to it.
#[derive(Debug, Clone)]
enum Op {
    /// (Re)write slot `slot` with the given words — an add if the file is
    /// absent, a modify otherwise.
    Write { slot: usize, words: Vec<usize> },
    /// Delete slot `slot` (no-op if absent).
    Delete { slot: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    // kind 0 deletes (1 in 5); anything else writes.
    (0usize..6, 0usize..5, prop::collection::vec(0usize..6, 1..5)).prop_map(
        |(slot, kind, words)| {
            if kind == 0 {
                Op::Delete { slot }
            } else {
                Op::Write { slot, words }
            }
        },
    )
}

/// One round of mutations followed by a commit; `compact_after` folds the
/// deltas down afterwards.
#[derive(Debug, Clone)]
struct Round {
    ops: Vec<Op>,
    compact_after: bool,
}

fn arb_round() -> impl Strategy<Value = Round> {
    (prop::collection::vec(arb_op(), 1..4), 0usize..10)
        .prop_map(|(ops, c)| Round { ops, compact_after: c < 3 })
}

fn doc_path(corpus: &Path, slot: usize) -> PathBuf {
    corpus.join(format!("d{slot}.xml"))
}

fn live_docs(corpus: &Path) -> usize {
    fs::read_dir(corpus)
        .map(|d| d.flatten().filter(|e| e.path().extension().is_some_and(|x| x == "xml")).count())
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn base_plus_deltas_match_full_rebuild_on_the_wire(
        initial in prop::collection::vec(prop::collection::vec(0usize..6, 1..5), 1..4),
        rounds in prop::collection::vec(arb_round(), 1..4),
        shards in 1usize..4,
        query_words in prop::collection::hash_set(0usize..6, 1..3),
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir()
            .join(format!("gks-delta-props-{}-{case}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let corpus = root.join("corpus");
        fs::create_dir_all(&corpus).unwrap();
        for (slot, words) in initial.iter().enumerate() {
            fs::write(doc_path(&corpus, slot), doc_xml(words)).unwrap();
        }
        let manifest_path = root.join("corpus.shards");
        index_directory(&corpus, &manifest_path, shards, IndexOptions::default()).unwrap();

        for round in &rounds {
            for op in &round.ops {
                match op {
                    Op::Write { slot, words } => {
                        fs::write(doc_path(&corpus, *slot), doc_xml(words)).unwrap();
                    }
                    Op::Delete { slot } => {
                        // Keep at least one live document so the rebuild
                        // oracle stays well-defined.
                        if live_docs(&corpus) > 1 {
                            let _ = fs::remove_file(doc_path(&corpus, *slot));
                        }
                    }
                }
            }
            commit_delta(&manifest_path).unwrap();
            if round.compact_after {
                compact(&manifest_path).unwrap();
            }
        }

        // Oracle: a monolithic rebuild of the directory as it stands now.
        let rebuilt = Corpus::from_directory(&corpus).unwrap();
        let whole = Engine::build(&rebuilt, IndexOptions::default()).unwrap();
        let query = Query::from_keywords(
            query_words.iter().map(|&w| WORDS[w].to_string()),
        )
        .unwrap();
        let options = SearchOptions { s: Threshold::Fixed(1), limit: 16 };
        let expected = whole.search(&query, options).unwrap();
        let expected_json = wire::search_response_json(&whole, &expected);

        // Subject: the manifest's base+delta shard set, masked and mapped.
        let manifest = ShardManifest::load(&manifest_path).unwrap();
        let loaded = load_manifest_engines(&manifest).unwrap();
        let engines: Vec<&Engine> = loaded.iter().map(|(e, _)| e).collect();
        let maps: Vec<_> = loaded.iter().map(|(_, m)| m.clone()).collect();
        let merged = sharded_search_mapped(&engines, &maps, &query, options).unwrap();
        let got_json = wire::search_response_json_sharded(&engines, &merged);

        prop_assert_eq!(
            got_json,
            expected_json,
            "wire divergence after {} rounds (shards={})",
            rounds.len(),
            shards
        );

        // Cost equivalence modulo masking: the work that survives the
        // tombstone mask is identical to the rebuild's — per-keyword
        // surviving posting counts, heap ops (2× survivors), sweep
        // advances, and rank candidates all agree exactly. Only the raw
        // scan counters legitimately differ: base+delta shards fetch (and
        // then mask) dead postings the rebuild never stores, so
        // `postings_scanned` ≥ the rebuild's and the excess is precisely
        // `tombstone_masked`.
        let got_cost = merged.response().cost();
        let want_cost = expected.cost();
        prop_assert_eq!(&got_cost.per_keyword, &want_cost.per_keyword);
        prop_assert_eq!(got_cost.heap_ops, want_cost.heap_ops);
        prop_assert_eq!(got_cost.sweep_advances, want_cost.sweep_advances);
        prop_assert_eq!(got_cost.rank_candidates, want_cost.rank_candidates);
        prop_assert_eq!(want_cost.tombstone_masked, 0, "a rebuild has no tombstones");
        prop_assert_eq!(
            got_cost.postings_scanned - got_cost.tombstone_masked,
            want_cost.postings_scanned,
            "masked-out postings are exactly the scan excess"
        );
        fs::remove_dir_all(&root).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Format equivalence on the wire: the same base+delta shard set must
    /// search **byte-identically** whether its shard files are stored in
    /// format v3 (block-compressed postings served off the mmap) or
    /// rewritten as eager v2 — tombstone masks, document renumbering, rank
    /// order, and the cost ledger included. This is the contract that lets
    /// `gks index --format` be a pure storage choice.
    #[test]
    fn v2_and_v3_shard_files_search_byte_identically(
        initial in prop::collection::vec(prop::collection::vec(0usize..6, 1..5), 1..4),
        rounds in prop::collection::vec(arb_round(), 1..3),
        shards in 1usize..4,
        query_words in prop::collection::hash_set(0usize..6, 1..3),
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir()
            .join(format!("gks-format-props-{}-{case}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let corpus = root.join("corpus");
        fs::create_dir_all(&corpus).unwrap();
        for (slot, words) in initial.iter().enumerate() {
            fs::write(doc_path(&corpus, slot), doc_xml(words)).unwrap();
        }
        let manifest_path = root.join("corpus.shards");
        index_directory(&corpus, &manifest_path, shards, IndexOptions::default()).unwrap();
        for round in &rounds {
            for op in &round.ops {
                match op {
                    Op::Write { slot, words } => {
                        fs::write(doc_path(&corpus, *slot), doc_xml(words)).unwrap();
                    }
                    Op::Delete { slot } => {
                        if live_docs(&corpus) > 1 {
                            let _ = fs::remove_file(doc_path(&corpus, *slot));
                        }
                    }
                }
            }
            commit_delta(&manifest_path).unwrap();
            if round.compact_after {
                compact(&manifest_path).unwrap();
            }
        }

        let query = Query::from_keywords(
            query_words.iter().map(|&w| WORDS[w].to_string()),
        )
        .unwrap();
        let options = SearchOptions { s: Threshold::Fixed(1), limit: 16 };
        let run = |manifest: &ShardManifest| {
            let loaded = load_manifest_engines(manifest).unwrap();
            let engines: Vec<&Engine> = loaded.iter().map(|(e, _)| e).collect();
            let maps: Vec<_> = loaded.iter().map(|(_, m)| m.clone()).collect();
            let merged = sharded_search_mapped(&engines, &maps, &query, options).unwrap();
            wire::search_response_json_sharded(&engines, &merged)
        };

        // Search the shard set as written (v3 everywhere: `index_directory`,
        // `commit_delta`, and `compact` all save the default format).
        let manifest = ShardManifest::load(&manifest_path).unwrap();
        let v3_json = run(&manifest);

        // Rewrite every shard file as eager v2 in place — the manifest
        // carries no per-file format knowledge, so nothing else changes —
        // and search the same manifest again.
        for entry in &manifest.shards {
            let ix = GksIndex::load(&entry.path).unwrap();
            prop_assert_eq!(ix.format_version(), 3, "shards are written v3 by default");
            ix.save_as(&entry.path, IndexFormat::V2).unwrap();
        }
        let v2_json = run(&ShardManifest::load(&manifest_path).unwrap());
        prop_assert_eq!(v2_json, v3_json, "wire bytes must not depend on the on-disk format");
        fs::remove_dir_all(&root).ok();
    }
}
