//! Equivalence property for the persistent shard executor: fanning a
//! sharded search out over [`ShardExecutor`] lanes must be **byte-identical
//! on the wire** to the `thread::scope` spawn-per-shard scatter it
//! replaces, on 1, 2 and 4 shards — same hits, same ranks, same costs,
//! same JSON. The whole run also proves lane reuse: after warm-up, no
//! thread is spawned no matter how many scatters execute.

use std::sync::{Arc, OnceLock};

use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::{Response, SearchOptions, Threshold};
use gks_core::shard::{merge_responses, DocMap};
use gks_core::{wire, QueryError, ShardExecutor};
use gks_index::{Corpus, IndexOptions};
use proptest::prelude::*;

const WORDS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "omega"];

fn doc_xml(words: &[usize]) -> String {
    let mut xml = String::from("<course><students>");
    for &w in words {
        xml.push_str(&format!("<student>{}</student>", WORDS[w % WORDS.len()]));
    }
    xml.push_str("</students></course>");
    xml
}

/// Per shard: a non-empty list of documents, each a non-empty word list.
fn arb_shard_docs() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..WORDS.len(), 1..6), 1..4)
}

fn build_shard(docs: &[Vec<usize>]) -> Engine {
    let named: Vec<(String, String)> = docs
        .iter()
        .enumerate()
        .map(|(i, words)| (format!("d{i}"), doc_xml(words)))
        .collect();
    let corpus = Corpus::from_named_strs(named).unwrap();
    Engine::build(&corpus, IndexOptions::default()).unwrap()
}

/// The executor under test, shared across all cases so the run as a whole
/// demonstrates lane reuse.
fn executor() -> &'static ShardExecutor {
    static EXEC: OnceLock<ShardExecutor> = OnceLock::new();
    EXEC.get_or_init(|| {
        let exec = ShardExecutor::new(1);
        exec.ensure_lanes(4).expect("spawn executor lanes");
        exec
    })
}

/// The scatter the server used before the executor existed: one scoped
/// thread per shard, joined in shard order.
fn scope_scatter(
    shards: &[Arc<Engine>],
    query: &Query,
    options: SearchOptions,
) -> Vec<Result<Response, QueryError>> {
    std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .map(|engine| s.spawn(move || engine.search(query, options)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
    })
}

/// The same fan-out through the persistent lanes.
fn pooled_scatter(
    shards: &[Arc<Engine>],
    query: &Query,
    options: SearchOptions,
) -> Vec<Result<Response, QueryError>> {
    let query = Arc::new(query.clone());
    let tasks: Vec<_> = shards
        .iter()
        .map(|engine| {
            let engine = Arc::clone(engine);
            let query = Arc::clone(&query);
            move || engine.search(&query, options)
        })
        .collect();
    executor()
        .scatter(tasks)
        .into_iter()
        .map(|slot| slot.expect("executor slot must resolve to the task result"))
        .collect()
}

fn merge(
    shards: &[Arc<Engine>],
    answers: Vec<Result<Response, QueryError>>,
    limit: usize,
) -> String {
    let mut base = 0u32;
    let mut paired = Vec::with_capacity(answers.len());
    for (engine, answer) in shards.iter().zip(answers) {
        paired.push((DocMap::base(base), answer.expect("search failed")));
        base += engine.index().doc_names().len() as u32;
    }
    let sharded = merge_responses(paired, limit).expect("merge failed");
    let refs: Vec<&Engine> = shards.iter().map(Arc::as_ref).collect();
    wire::search_response_json_sharded(&refs, &sharded)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pooled scatter/gather is byte-identical to the `thread::scope`
    /// scatter on 1, 2 and 4 shards, for random corpora and thresholds.
    #[test]
    fn pooled_scatter_matches_thread_scope(
        shard_docs in prop::collection::vec(arb_shard_docs(), 4),
        kws in prop::collection::hash_set(0usize..WORDS.len(), 1..4),
        s in 1usize..3,
        limit in prop::sample::select(vec![1usize, 5, usize::MAX]),
    ) {
        let engines: Vec<Arc<Engine>> =
            shard_docs.iter().map(|docs| Arc::new(build_shard(docs))).collect();
        let query =
            Query::from_keywords(kws.iter().map(|&k| WORDS[k].to_string())).unwrap();
        let options = SearchOptions { s: Threshold::Fixed(s.min(kws.len())), limit };

        for count in [1usize, 2, 4] {
            let shards = &engines[..count];
            // Warm the lanes, then prove the pooled path spawns nothing.
            let _ = pooled_scatter(shards, &query, options);
            let spawned_before = gks_exec::threads_spawned_total();
            let via_scope = merge(shards, scope_scatter(shards, &query, options), limit);
            let via_pool = merge(shards, pooled_scatter(shards, &query, options), limit);
            prop_assert_eq!(gks_exec::threads_spawned_total(), spawned_before,
                "pooled scatter must not spawn threads");
            prop_assert_eq!(via_scope, via_pool, "wire JSON diverged on {} shards", count);
        }
    }
}
