//! Property tests of the search pipeline's internal invariants, checked
//! directly against posting lists (no oracle needed).

use gks_core::merge::merge_posting_lists;
use gks_core::query::Query;
use gks_core::search::{search, SearchOptions};
use gks_core::window::lcp_candidates;
use gks_dewey::DeweyId;
use gks_index::{Corpus, GksIndex, IndexOptions};
use proptest::prelude::*;

fn arb_word() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["alpha", "beta", "gamma", "delta"]).prop_map(str::to_string)
}

/// Random flat-ish documents: groups of records with word leaves.
fn arb_doc() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::collection::vec(arb_word(), 1..4), 1..8).prop_map(|records| {
        let mut xml = String::from("<root>");
        for rec in records {
            xml.push_str("<rec>");
            for w in rec {
                xml.push_str(&format!("<w>{w}</w>"));
            }
            xml.push_str("</rec>");
        }
        xml.push_str("</root>");
        xml
    })
}

/// Does `list` have a posting inside `node`'s subtree?
fn contains(list: &[DeweyId], node: &DeweyId) -> bool {
    let lo = list.partition_point(|x| x < node);
    let ub = node.subtree_upper_bound();
    list.get(lo).is_some_and(|x| *x < ub)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The merged list is sorted and complete.
    #[test]
    fn merged_list_is_sorted_and_complete(xml in arb_doc(), kws in prop::collection::hash_set(arb_word(), 1..4)) {
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let query = Query::from_keywords(kws.iter().cloned()).unwrap();
        let lists: Vec<Vec<DeweyId>> = query
            .normalized(ix.analyzer())
            .iter()
            .map(|k| gks_core::postlist::keyword_postings(&ix, k))
            .collect();
        let total: usize = lists.iter().map(Vec::len).sum();
        let sl = merge_posting_lists(lists.clone());
        prop_assert_eq!(sl.len(), total);
        prop_assert!(sl.windows(2).all(|w| w[0].0 <= w[1].0), "SL unsorted");
        // Each entry really is a posting of its keyword.
        for (dewey, kw) in &sl {
            prop_assert!(lists[*kw as usize].binary_search(dewey).is_ok());
        }
    }

    /// Every window candidate's subtree contains at least s distinct
    /// keywords (soundness of the LCP generation + attribute promotion).
    #[test]
    fn candidates_contain_s_unique_keywords(
        xml in arb_doc(),
        kws in prop::collection::hash_set(arb_word(), 2..4),
        s in 1usize..3,
    ) {
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let query = Query::from_keywords(kws.iter().cloned()).unwrap();
        let normalized = query.normalized(ix.analyzer());
        let lists: Vec<Vec<DeweyId>> = normalized
            .iter()
            .map(|k| gks_core::postlist::keyword_postings(&ix, k))
            .collect();
        let s = s.min(normalized.len());
        let sl = merge_posting_lists(lists.clone());
        for cand in lcp_candidates(&ix, &sl, s, normalized.len()) {
            let unique = lists.iter().filter(|l| contains(l, &cand)).count();
            prop_assert!(unique >= s, "candidate {cand} has {unique} < {s} keywords");
        }
    }

    /// Response invariants: ranks are positive and finite; hits are unique;
    /// hit counts respect s; the order is by non-increasing rank.
    #[test]
    fn response_is_well_formed(
        xml in arb_doc(),
        kws in prop::collection::hash_set(arb_word(), 1..4),
        s in 1usize..3,
    ) {
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let query = Query::from_keywords(kws.iter().cloned()).unwrap();
        let resp = search(&ix, &query, SearchOptions::with_s(s)).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut prev_rank = f64::INFINITY;
        for hit in resp.hits() {
            prop_assert!(hit.rank.is_finite() && hit.rank > 0.0, "rank {}", hit.rank);
            prop_assert!(hit.rank <= prev_rank + 1e-9, "ranks not sorted");
            prev_rank = hit.rank;
            prop_assert!(hit.keyword_count as usize >= resp.s());
            prop_assert!(seen.insert(hit.node.clone()), "duplicate hit {}", hit.node);
            prop_assert_eq!(hit.keyword_count, hit.keyword_mask.count_ones());
        }
        // Trace counters reconcile with the hit list.
        let tr = resp.trace();
        prop_assert_eq!(
            resp.hits().len(),
            tr.witnessed_lce + tr.orphan_lcp - tr.pruned
        );
    }

    /// Lemma 2, generalized: hit counts are non-increasing in s.
    #[test]
    fn lemma2_hit_counts_monotone(
        xml in arb_doc(),
        kws in prop::collection::hash_set(arb_word(), 2..4),
    ) {
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let query = Query::from_keywords(kws.iter().cloned()).unwrap();
        let mut prev = usize::MAX;
        for s in 1..=query.len() {
            let resp = search(&ix, &query, SearchOptions::with_s(s)).unwrap();
            prop_assert!(resp.hits().len() <= prev, "s={s}");
            prev = resp.hits().len();
        }
    }
}
