//! Property tests for the Dewey id algebra and codecs.

use gks_dewey::{codec, DeweyId, DocId};
use proptest::prelude::*;

fn arb_id() -> impl Strategy<Value = DeweyId> {
    (0u32..4, proptest::collection::vec(0u32..8, 0..6))
        .prop_map(|(doc, steps)| DeweyId::new(DocId(doc), steps))
}

/// Ids for the blocked-run codec: documents from a small pool (so runs pack
/// many postings per document and masks overlap) plus a few at the top of
/// the u32 range, and steps spanning the full varint width at depths well
/// past anything the tree builder emits.
fn arb_deep_id() -> impl Strategy<Value = DeweyId> {
    let doc = (0u32..16).prop_map(|d| if d < 12 { d } else { u32::MAX - (d - 12) });
    (doc, proptest::collection::vec(0u32..u32::MAX, 0..24))
        .prop_map(|(doc, steps)| DeweyId::new(DocId(doc), steps))
}

proptest! {
    /// Ancestor iff strict prefix, and prefix-order sorts ancestors first.
    #[test]
    fn ancestor_implies_order(a in arb_id(), b in arb_id()) {
        if a.is_ancestor_of(&b) {
            prop_assert!(a < b);
            prop_assert!(a.depth() < b.depth());
            prop_assert!(a.subtree_upper_bound() > b);
        }
    }

    /// The common prefix is the lowest common ancestor: it is an
    /// ancestor-or-self of both, and no deeper id is.
    #[test]
    fn common_prefix_is_lowest(a in arb_id(), b in arb_id()) {
        match a.common_prefix(&b) {
            None => prop_assert_ne!(a.doc(), b.doc()),
            Some(p) => {
                prop_assert!(p.is_ancestor_or_self(&a));
                prop_assert!(p.is_ancestor_or_self(&b));
                // Any strictly deeper ancestor-or-self of a is not one of b
                // (unless a == b == p handles equality).
                if p != a && p != b {
                    let deeper = a.ancestor_at_depth(p.depth() + 1);
                    prop_assert!(!deeper.is_ancestor_or_self(&b));
                }
            }
        }
    }

    /// Subtree interval: x in [id, ub) iff id ⪯a x... the forward direction:
    /// descendants always land inside, non-descendants outside.
    #[test]
    fn subtree_interval_contains_exactly_descendants(a in arb_id(), b in arb_id()) {
        let ub = a.subtree_upper_bound();
        let inside = a <= b && b < ub;
        prop_assert_eq!(inside, a.is_ancestor_or_self(&b));
    }

    /// Display/parse round trip.
    #[test]
    fn display_parse_round_trip(a in arb_id()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<DeweyId>().unwrap(), a);
    }

    /// Standalone codec round trip.
    #[test]
    fn codec_id_round_trip(a in arb_id()) {
        let mut buf = bytes::BytesMut::new();
        codec::encode_id(&a, &mut buf);
        let mut slice = buf.freeze();
        prop_assert_eq!(codec::decode_id(&mut slice).unwrap(), a);
    }

    /// Sorted-run codec round trip over arbitrary sorted, deduped runs.
    #[test]
    fn codec_run_round_trip(mut ids in proptest::collection::vec(arb_id(), 0..40)) {
        ids.sort();
        ids.dedup();
        let mut buf = bytes::BytesMut::new();
        codec::encode_sorted_run(&ids, &mut buf);
        let mut slice = buf.freeze();
        prop_assert_eq!(codec::decode_sorted_run(&mut slice).unwrap(), ids);
    }

    /// Parent/child are inverses.
    #[test]
    fn parent_child_inverse(a in arb_id(), ord in 0u32..16) {
        prop_assert_eq!(a.child(ord).parent().unwrap(), a);
    }

    /// Blocked-run codec round trip, over runs long enough to span several
    /// blocks and ids at extreme depth and step values (full-width varints).
    /// Beyond the round trip itself, the skip table must cohere with the
    /// blocks it indexes: each entry names its block's first id, last
    /// document, and posting count. The length-1 case covers single-posting
    /// terms, whose skip entry is reconstructed from the block leader.
    #[test]
    fn codec_blocked_run_round_trip(mut ids in proptest::collection::vec(arb_deep_id(), 0..300)) {
        ids.sort();
        ids.dedup();
        let mut buf = bytes::BytesMut::new();
        codec::encode_blocked_run(&ids, &mut buf);
        let frozen = buf.freeze();
        let mut slice = frozen.as_ref();
        let reader = codec::BlockedRunReader::parse(&mut slice, ids.len()).unwrap();
        prop_assert!(slice.is_empty(), "parse must consume the run exactly");
        prop_assert_eq!(reader.total(), ids.len());
        prop_assert_eq!(reader.decode_all().unwrap(), ids.clone());
        prop_assert_eq!(reader.skip_entries().len(), ids.len().div_ceil(codec::BLOCK_SIZE));
        for (i, entry) in reader.skip_entries().iter().enumerate() {
            let block = reader.decode_block(i).unwrap();
            prop_assert_eq!(&entry.first, block.first().unwrap());
            prop_assert_eq!(entry.last_doc, block.last().unwrap().doc());
            prop_assert_eq!(entry.count, block.len());
        }
    }

    /// Masked block decode equals decode-then-filter, and reports exactly
    /// the number of postings it dropped — the law `postings_masked`
    /// relies on to keep tombstoned v3 search byte-identical to eager v2.
    #[test]
    fn codec_blocked_masked_equals_filter(
        mut ids in proptest::collection::vec(arb_deep_id(), 0..260),
        mut dead in proptest::collection::vec(0u32..12, 0..8),
    ) {
        ids.sort();
        ids.dedup();
        dead.sort();
        dead.dedup();
        let mut buf = bytes::BytesMut::new();
        codec::encode_blocked_run(&ids, &mut buf);
        let frozen = buf.freeze();
        let mut slice = frozen.as_ref();
        let reader = codec::BlockedRunReader::parse(&mut slice, ids.len()).unwrap();
        let expected: Vec<DeweyId> = ids
            .iter()
            .filter(|id| dead.binary_search(&id.doc().0).is_err())
            .cloned()
            .collect();
        let (masked, dropped) = reader.decode_masked(&dead).unwrap();
        prop_assert_eq!(dropped, (ids.len() - expected.len()) as u64);
        prop_assert_eq!(masked, expected);
    }
}
