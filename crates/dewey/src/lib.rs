//! Dewey identifiers for ordered XML trees.
//!
//! Every node of an XML document is labelled with a *Dewey id* ([`DeweyId`]):
//! the sequence of sibling ordinals on the path from the document root to the
//! node, prefixed by the identifier of the document it belongs to
//! ([`DocId`]). A node with Dewey id `0.2.3` is the fourth child of its parent
//! node `0.2` (GKS paper, §2.1). Dewey ids have two properties every GKS
//! algorithm relies on:
//!
//! 1. **Document order.** Sorting Dewey ids lexicographically (document id
//!    first, then path steps, with a shorter prefix ordering before its
//!    extensions) recovers the pre-order traversal of the forest. This is how
//!    the merged posting list `SL` of §4.1 is ordered.
//! 2. **Prefix algebra.** `v` is an ancestor of `u` iff `v`'s id is a strict
//!    prefix of `u`'s id, so lowest-common-ancestor computations reduce to
//!    longest-common-prefix computations (Lemma 6 of the paper: in a sorted
//!    block, the LCP of the first and last id is the LCP of the whole block).
//!
//! The crate also provides a compact varint codec ([`codec`]) used by the
//! index persistence layer, so that on-disk index size (Table 4 of the paper)
//! reflects a realistic encoding rather than `Vec<u32>` overhead.

pub mod codec;
mod id;

pub use id::{DeweyId, DocId, Step};

#[cfg(test)]
mod tests {
    use super::*;

    fn d(doc: u32, steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(doc), steps.to_vec())
    }

    #[test]
    fn document_order_matches_preorder() {
        // Pre-order of a small tree in document 0, then a root in document 1.
        let order = vec![
            d(0, &[]),
            d(0, &[0]),
            d(0, &[0, 0]),
            d(0, &[0, 1]),
            d(0, &[1]),
            d(0, &[1, 0, 5]),
            d(0, &[2]),
            d(1, &[]),
            d(1, &[0]),
        ];
        let mut shuffled = order.clone();
        shuffled.reverse();
        shuffled.sort();
        assert_eq!(shuffled, order);
    }

    #[test]
    fn ancestor_is_strict_prefix_same_document() {
        let root = d(0, &[]);
        let a = d(0, &[0, 1]);
        let b = d(0, &[0, 1, 2]);
        assert!(root.is_ancestor_of(&a));
        assert!(a.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a), "ancestor is strict");
        assert!(a.is_ancestor_or_self(&a));
        // Different documents never relate.
        assert!(!d(1, &[]).is_ancestor_of(&a));
    }

    #[test]
    fn common_prefix_is_lca() {
        let a = d(0, &[0, 1, 2]);
        let b = d(0, &[0, 1, 5, 7]);
        assert_eq!(a.common_prefix(&b), Some(d(0, &[0, 1])));
        // LCA with an ancestor is the ancestor itself.
        let anc = d(0, &[0]);
        assert_eq!(a.common_prefix(&anc), Some(anc));
        // Cross-document pairs have no common ancestor.
        assert_eq!(a.common_prefix(&d(1, &[0])), None);
    }

    #[test]
    fn parent_child_depth() {
        let n = d(3, &[0, 2, 3]);
        assert_eq!(n.depth(), 3);
        assert_eq!(n.parent(), Some(d(3, &[0, 2])));
        assert_eq!(n.child(4), d(3, &[0, 2, 3, 4]));
        assert_eq!(d(3, &[]).parent(), None);
        assert_eq!(d(3, &[]).depth(), 0);
    }

    #[test]
    fn subtree_upper_bound_brackets_descendants() {
        let n = d(0, &[1, 2]);
        let ub = n.subtree_upper_bound();
        // Everything in the subtree sorts in [n, ub).
        for inside in [d(0, &[1, 2]), d(0, &[1, 2, 0]), d(0, &[1, 2, 99, 4])] {
            assert!(n <= inside && inside < ub, "{inside} should be in range");
        }
        for outside in [d(0, &[1, 3]), d(0, &[2]), d(1, &[]), d(0, &[1])] {
            assert!(outside < n || outside >= ub, "{outside} should be outside");
        }
    }

    #[test]
    fn subtree_upper_bound_carries_at_max_step() {
        // A final step of Step::MAX must carry into the parent position.
        let n = d(0, &[1, Step::MAX]);
        let ub = n.subtree_upper_bound();
        assert_eq!(ub, d(0, &[2]));
        // Root of the last representable subtree: bound moves to next document.
        let deep = d(0, &[Step::MAX]);
        assert_eq!(deep.subtree_upper_bound(), d(1, &[]));
    }

    #[test]
    fn display_and_parse_round_trip() {
        let n = d(7, &[0, 12, 3]);
        let s = n.to_string();
        assert_eq!(s, "7:0.12.3");
        assert_eq!(s.parse::<DeweyId>().unwrap(), n);
        let root = d(2, &[]);
        assert_eq!(root.to_string(), "2:");
        assert_eq!("2:".parse::<DeweyId>().unwrap(), root);
        assert!("x:1".parse::<DeweyId>().is_err());
        assert!("1:a.b".parse::<DeweyId>().is_err());
    }

    #[test]
    fn steps_accessors() {
        let n = d(0, &[5, 6]);
        assert_eq!(n.steps(), &[5, 6]);
        assert_eq!(n.doc(), DocId(0));
        assert_eq!(n.last_step(), Some(6));
        assert_eq!(d(0, &[]).last_step(), None);
    }

    #[test]
    fn ancestors_iterator_walks_to_root() {
        let n = d(0, &[1, 2, 3]);
        let anc: Vec<DeweyId> = n.ancestors().collect();
        assert_eq!(anc, vec![d(0, &[1, 2]), d(0, &[1]), d(0, &[])]);
        assert_eq!(d(0, &[]).ancestors().count(), 0);
    }
}
