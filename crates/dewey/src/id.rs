//! The [`DeweyId`] type and its prefix algebra.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A sibling ordinal within a Dewey path.
pub type Step = u32;

/// Identifier of one document within a corpus.
///
/// GKS search "is seamlessly expanded over multiple documents by prefixing
/// Dewey ids with corresponding document id" (paper §2.4); `DocId` is that
/// prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A Dewey identifier: a document id plus the path of sibling ordinals from
/// the document root down to the node.
///
/// The document root itself has an empty path. Ordering is document order:
/// first by [`DocId`], then lexicographically by path, with a prefix sorting
/// before all of its extensions — i.e. an ancestor sorts immediately before
/// its first descendant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeweyId {
    doc: DocId,
    steps: Vec<Step>,
}

impl DeweyId {
    /// Creates an id from a document id and a path of sibling ordinals.
    pub fn new(doc: DocId, steps: Vec<Step>) -> Self {
        DeweyId { doc, steps }
    }

    /// The root of document `doc` (empty path).
    pub fn root(doc: DocId) -> Self {
        DeweyId { doc, steps: Vec::new() }
    }

    /// The document this node belongs to.
    pub fn doc(&self) -> DocId {
        self.doc
    }

    /// The sibling-ordinal path from the document root.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Depth of the node: number of edges from the document root (the root
    /// has depth 0).
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// The last sibling ordinal, or `None` for a document root.
    pub fn last_step(&self) -> Option<Step> {
        self.steps.last().copied()
    }

    /// The parent id, or `None` for a document root.
    pub fn parent(&self) -> Option<DeweyId> {
        if self.steps.is_empty() {
            None
        } else {
            Some(DeweyId { doc: self.doc, steps: self.steps[..self.steps.len() - 1].to_vec() })
        }
    }

    /// The id of this node's `ordinal`-th child.
    pub fn child(&self, ordinal: Step) -> DeweyId {
        let mut steps = Vec::with_capacity(self.steps.len() + 1);
        steps.extend_from_slice(&self.steps);
        steps.push(ordinal);
        DeweyId { doc: self.doc, steps }
    }

    /// Returns `true` iff `self` is a **strict** ancestor of `other`
    /// (`self ≺a other` in the paper's notation).
    pub fn is_ancestor_of(&self, other: &DeweyId) -> bool {
        self.doc == other.doc
            && self.steps.len() < other.steps.len()
            && other.steps[..self.steps.len()] == self.steps[..]
    }

    /// Returns `true` iff `self` is an ancestor of `other` or equal to it
    /// (`self ⪯a other`).
    pub fn is_ancestor_or_self(&self, other: &DeweyId) -> bool {
        self == other || self.is_ancestor_of(other)
    }

    /// Longest common prefix of two ids — the Dewey id of their lowest common
    /// ancestor. `None` when the ids belong to different documents.
    pub fn common_prefix(&self, other: &DeweyId) -> Option<DeweyId> {
        if self.doc != other.doc {
            return None;
        }
        let n = self.steps.iter().zip(other.steps.iter()).take_while(|(a, b)| a == b).count();
        Some(DeweyId { doc: self.doc, steps: self.steps[..n].to_vec() })
    }

    /// Number of leading path steps shared with `other` in the same document,
    /// or `None` across documents. Cheaper than [`Self::common_prefix`] when
    /// only the length is needed.
    pub fn common_prefix_len(&self, other: &DeweyId) -> Option<usize> {
        if self.doc != other.doc {
            return None;
        }
        Some(self.steps.iter().zip(other.steps.iter()).take_while(|(a, b)| a == b).count())
    }

    /// The smallest id that sorts strictly after **every** node in the
    /// subtree rooted at `self`, so that the subtree occupies the half-open
    /// interval `[self, self.subtree_upper_bound())` in document order.
    ///
    /// Used to binary-search the contiguous subtree range of a candidate node
    /// within the sorted merged list `SL` (§4.1).
    pub fn subtree_upper_bound(&self) -> DeweyId {
        let mut steps = self.steps.clone();
        // Increment the last step; on overflow carry into the parent, and if
        // the carry escapes the root, move to the next document.
        loop {
            match steps.pop() {
                Some(s) if s < Step::MAX => {
                    steps.push(s + 1);
                    return DeweyId { doc: self.doc, steps };
                }
                Some(_) => continue, // carry
                None => {
                    return DeweyId { doc: DocId(self.doc.0 + 1), steps: Vec::new() };
                }
            }
        }
    }

    /// Iterates over the strict ancestors of this node, from the parent up to
    /// the document root.
    pub fn ancestors(&self) -> Ancestors<'_> {
        Ancestors { doc: self.doc, steps: &self.steps, len: self.steps.len() }
    }

    /// The ancestor-or-self at the given depth. Panics if `depth` exceeds the
    /// node's own depth.
    pub fn ancestor_at_depth(&self, depth: usize) -> DeweyId {
        assert!(depth <= self.steps.len(), "depth {depth} exceeds node depth");
        DeweyId { doc: self.doc, steps: self.steps[..depth].to_vec() }
    }
}

/// Iterator over strict ancestors, nearest first. See [`DeweyId::ancestors`].
#[derive(Debug)]
pub struct Ancestors<'a> {
    doc: DocId,
    steps: &'a [Step],
    len: usize,
}

impl Iterator for Ancestors<'_> {
    type Item = DeweyId;

    fn next(&mut self) -> Option<DeweyId> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(DeweyId { doc: self.doc, steps: self.steps[..self.len].to_vec() })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.len, Some(self.len))
    }
}

impl ExactSizeIterator for Ancestors<'_> {}

impl Ord for DeweyId {
    fn cmp(&self, other: &Self) -> Ordering {
        self.doc.cmp(&other.doc).then_with(|| self.steps.cmp(&other.steps))
    }
}

impl PartialOrd for DeweyId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for DeweyId {
    /// Formats as `doc:step.step.step`, e.g. `0:0.1.1.0`; a document root is
    /// `doc:` with an empty path.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.doc)?;
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Error produced when parsing a malformed Dewey id string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDeweyIdError(String);

impl fmt::Display for ParseDeweyIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Dewey id: {}", self.0)
    }
}

impl std::error::Error for ParseDeweyIdError {}

impl FromStr for DeweyId {
    type Err = ParseDeweyIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (doc, path) = s
            .split_once(':')
            .ok_or_else(|| ParseDeweyIdError(format!("missing ':' in {s:?}")))?;
        let doc: u32 = doc
            .parse()
            .map_err(|_| ParseDeweyIdError(format!("bad document id in {s:?}")))?;
        let steps = if path.is_empty() {
            Vec::new()
        } else {
            path.split('.')
                .map(|p| {
                    p.parse::<Step>()
                        .map_err(|_| ParseDeweyIdError(format!("bad step {p:?} in {s:?}")))
                })
                .collect::<Result<Vec<_>, _>>()?
        };
        Ok(DeweyId { doc: DocId(doc), steps })
    }
}
