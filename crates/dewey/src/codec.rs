//! Compact binary codec for Dewey ids and sorted Dewey-id runs.
//!
//! Two encodings are provided:
//!
//! * [`encode_id`] / [`decode_id`] — a standalone id as LEB128 varints
//!   (document id, path length, then each step).
//! * [`encode_sorted_run`] / [`decode_sorted_run`] — a **delta-prefix**
//!   encoding for a document-ordered run of ids, as stored in inverted-index
//!   posting lists. Consecutive Dewey ids share long prefixes (they are
//!   pre-order neighbours), so each entry stores only the number of leading
//!   steps shared with its predecessor plus the fresh suffix. This is what
//!   keeps the on-disk index roughly the size of the input data, as the paper
//!   reports in Table 4.
//! * [`encode_blocked_run`] / [`BlockedRunReader`] — the format-v3 layout:
//!   delta-prefix entries restarted every [`BLOCK_SIZE`] postings behind a
//!   skip table (first id, last document id and byte offset per block), so a
//!   reader can decode one block, skip fully-tombstoned blocks, or count
//!   postings without touching the block bytes at all. Block entries are
//!   denser than run entries: the per-entry document flag is folded into the
//!   shared-prefix varint (`0` marks a document change, otherwise the value
//!   is `shared + 1`), and the first entry of a block is always absolute so
//!   it carries neither flag nor shared-prefix field.
//!
//! All integers use unsigned LEB128 ([`write_varint`] / [`read_varint`]).

use bytes::{Buf, BufMut};

use crate::{DeweyId, DocId, Step};

/// Error returned when decoding malformed or truncated bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended in the middle of a value.
    UnexpectedEof,
    /// A varint ran past the 32-bit range.
    VarintOverflow,
    /// A shared-prefix length exceeded the previous id's depth.
    BadSharedPrefix { shared: usize, prev_depth: usize },
    /// A blocked run's skip table disagrees with its block bytes.
    BadBlockLayout(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of encoded data"),
            DecodeError::VarintOverflow => write!(f, "varint exceeds 32-bit range"),
            DecodeError::BadSharedPrefix { shared, prev_depth } => {
                write!(f, "shared prefix length {shared} exceeds previous id depth {prev_depth}")
            }
            DecodeError::BadBlockLayout(reason) => {
                write!(f, "inconsistent blocked run: {reason}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends `value` as unsigned LEB128.
pub fn write_varint(out: &mut impl BufMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 value, bounded to 64 bits.
pub fn read_varint(input: &mut impl Buf) -> Result<u64, DecodeError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !input.has_remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        let byte = input.get_u8();
        if shift >= 64 {
            return Err(DecodeError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn read_varint_u32(input: &mut impl Buf) -> Result<u32, DecodeError> {
    let v = read_varint(input)?;
    u32::try_from(v).map_err(|_| DecodeError::VarintOverflow)
}

/// Encodes a standalone Dewey id.
pub fn encode_id(id: &DeweyId, out: &mut impl BufMut) {
    write_varint(out, u64::from(id.doc().0));
    write_varint(out, id.steps().len() as u64);
    for &s in id.steps() {
        write_varint(out, u64::from(s));
    }
}

/// Decodes a standalone Dewey id encoded by [`encode_id`].
pub fn decode_id(input: &mut impl Buf) -> Result<DeweyId, DecodeError> {
    let doc = read_varint_u32(input)?;
    let len = read_varint(input)? as usize;
    let mut steps = Vec::with_capacity(len);
    for _ in 0..len {
        steps.push(read_varint_u32(input)?);
    }
    Ok(DeweyId::new(DocId(doc), steps))
}

/// Encodes one run entry relative to its predecessor: document id delta flag
/// + shared prefix length + suffix length + suffix steps.
fn encode_run_entry(prev: Option<&DeweyId>, id: &DeweyId, out: &mut impl BufMut) {
    let shared = match prev {
        Some(p) if p.doc() == id.doc() => p.common_prefix_len(id).unwrap_or(0),
        _ => 0,
    };
    // Document id is re-stated whenever it changes (or at the start).
    let new_doc = prev.is_none_or(|p| p.doc() != id.doc());
    write_varint(out, u64::from(new_doc));
    if new_doc {
        write_varint(out, u64::from(id.doc().0));
    }
    write_varint(out, shared as u64);
    let suffix = &id.steps()[shared..];
    write_varint(out, suffix.len() as u64);
    for &s in suffix {
        write_varint(out, u64::from(s));
    }
}

/// Streaming decoder for delta-prefix run entries; one per run (or per
/// block, since blocks restart the prefix chain).
struct RunDecoder {
    doc: DocId,
    prev_steps: Vec<Step>,
    first: bool,
}

impl RunDecoder {
    fn new() -> Self {
        RunDecoder { doc: DocId(0), prev_steps: Vec::new(), first: true }
    }

    fn next(&mut self, input: &mut impl Buf) -> Result<DeweyId, DecodeError> {
        let new_doc = read_varint(input)? != 0;
        if new_doc {
            self.doc = DocId(read_varint_u32(input)?);
            self.prev_steps.clear();
        } else if self.first {
            return Err(DecodeError::UnexpectedEof);
        }
        self.first = false;
        let shared = read_varint(input)? as usize;
        if shared > self.prev_steps.len() {
            return Err(DecodeError::BadSharedPrefix { shared, prev_depth: self.prev_steps.len() });
        }
        let suffix_len = read_varint(input)? as usize;
        self.prev_steps.truncate(shared);
        for _ in 0..suffix_len {
            self.prev_steps.push(read_varint_u32(input)?);
        }
        Ok(DeweyId::new(self.doc, self.prev_steps.clone()))
    }
}

/// Encodes a document-ordered run of Dewey ids with prefix sharing.
///
/// Layout: count, then for each id: document id delta flag + shared prefix
/// length + suffix length + suffix steps. The first id shares nothing.
pub fn encode_sorted_run(ids: &[DeweyId], out: &mut impl BufMut) {
    write_varint(out, ids.len() as u64);
    let mut prev: Option<&DeweyId> = None;
    for id in ids {
        encode_run_entry(prev, id, out);
        prev = Some(id);
    }
}

/// Decodes a run produced by [`encode_sorted_run`].
pub fn decode_sorted_run(input: &mut impl Buf) -> Result<Vec<DeweyId>, DecodeError> {
    let count = read_varint(input)? as usize;
    let mut ids: Vec<DeweyId> = Vec::with_capacity(count.min(MAX_PREALLOC));
    let mut decoder = RunDecoder::new();
    for _ in 0..count {
        ids.push(decoder.next(input)?);
    }
    Ok(ids)
}

/// Cap speculative pre-allocation from untrusted counts: corrupt input can
/// claim any count, so reserve at most this many entries up front.
const MAX_PREALLOC: usize = 1 << 16;

/// Postings per block in a blocked run (format v3). 128 keeps a block a few
/// hundred bytes on DBLP-shaped data: small enough that decoding one block
/// on a point lookup is cheap, large enough that the skip table stays under
/// 1% of the postings bytes.
pub const BLOCK_SIZE: usize = 128;

/// Encodes one block entry. The first entry of a block is absolute: document
/// id, depth, steps. Later entries start with a header varint: `0` means the
/// document changed (absolute form follows), any other value `h` means the
/// entry shares `h - 1` leading steps with its predecessor and is followed by
/// the suffix length and suffix steps. Compared with [`encode_run_entry`]
/// this saves one byte on every same-document posting and two on block
/// leaders, which is what lets the blocked format beat the v2 run layout
/// despite its skip tables.
fn encode_block_entry(prev: Option<&DeweyId>, id: &DeweyId, out: &mut impl BufMut) {
    match prev {
        None => write_varint(out, u64::from(id.doc().0)),
        Some(p) if p.doc() != id.doc() => {
            write_varint(out, 0);
            write_varint(out, u64::from(id.doc().0));
        }
        Some(p) => {
            let shared = p.common_prefix_len(id).unwrap_or(0);
            write_varint(out, shared as u64 + 1);
            let suffix = &id.steps()[shared..];
            write_varint(out, suffix.len() as u64);
            for &s in suffix {
                write_varint(out, u64::from(s));
            }
            return;
        }
    }
    write_varint(out, id.steps().len() as u64);
    for &s in id.steps() {
        write_varint(out, u64::from(s));
    }
}

/// Streaming decoder for [`encode_block_entry`] entries; one per block.
struct BlockDecoder {
    doc: DocId,
    prev_steps: Vec<Step>,
    first: bool,
}

impl BlockDecoder {
    fn new() -> Self {
        BlockDecoder { doc: DocId(0), prev_steps: Vec::new(), first: true }
    }

    fn next(&mut self, input: &mut impl Buf) -> Result<DeweyId, DecodeError> {
        let shared = if self.first {
            self.first = false;
            self.doc = DocId(read_varint_u32(input)?);
            self.prev_steps.clear();
            0
        } else {
            let header = read_varint(input)? as usize;
            if header == 0 {
                self.doc = DocId(read_varint_u32(input)?);
                self.prev_steps.clear();
                0
            } else {
                let shared = header - 1;
                if shared > self.prev_steps.len() {
                    return Err(DecodeError::BadSharedPrefix {
                        shared,
                        prev_depth: self.prev_steps.len(),
                    });
                }
                shared
            }
        };
        let suffix_len = read_varint(input)? as usize;
        self.prev_steps.truncate(shared);
        for _ in 0..suffix_len {
            self.prev_steps.push(read_varint_u32(input)?);
        }
        Ok(DeweyId::new(self.doc, self.prev_steps.clone()))
    }
}

/// Skip-table entry describing one block of a blocked run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkipEntry {
    /// First Dewey id in the block (stored absolute in the skip table for
    /// multi-block runs, so a reader can seek here without decoding the
    /// previous block; reconstructed from the block leader for single-block
    /// runs).
    pub first: DeweyId,
    /// Document id of the block's last posting. Together with `first.doc()`
    /// this bounds the documents the block can contain.
    pub last_doc: DocId,
    /// Number of postings in the block (implicit on disk: every block holds
    /// [`BLOCK_SIZE`] postings except the last).
    pub count: usize,
    /// Byte offset of the block within the run's blocks region.
    pub offset: usize,
}

/// Encodes a document-ordered run as [`BLOCK_SIZE`]-posting blocks behind a
/// skip table (the format-v3 posting layout).
///
/// The run carries **no framing of its own**: the posting count and the
/// run's byte extent both live in the format-v3 term dictionary, so
/// duplicating them here would cost several bytes on every single-posting
/// term. [`BlockedRunReader::parse`] takes the count as a parameter and
/// consumes its entire input slice. An empty run encodes to zero bytes.
///
/// Layout: the skip data, then the concatenated blocks (the rest of the
/// run). The block count is implicit (`total.div_ceil(BLOCK_SIZE)`), as are
/// the per-block posting counts. A multi-block run stores one skip entry per
/// block ([`encode_id`] of the first id, last document id, byte offset); a
/// single-block run stores only the last document id, since its first id is
/// the block leader and its offset is zero. Each block is an
/// [`encode_block_entry`] chain that restarts at the block boundary, so any
/// block decodes independently.
pub fn encode_blocked_run(ids: &[DeweyId], out: &mut impl BufMut) {
    if ids.is_empty() {
        return;
    }
    let mut blocks: Vec<u8> = Vec::new();
    let mut skips: Vec<(&DeweyId, DocId, usize)> = Vec::new();
    for chunk in ids.chunks(BLOCK_SIZE) {
        let offset = blocks.len();
        let mut prev: Option<&DeweyId> = None;
        for id in chunk {
            encode_block_entry(prev, id, &mut blocks);
            prev = Some(id);
        }
        skips.push((&chunk[0], chunk[chunk.len() - 1].doc(), offset));
    }
    if let [(_, last_doc, _)] = skips.as_slice() {
        write_varint(out, u64::from(last_doc.0));
    } else {
        for (first, last_doc, offset) in &skips {
            encode_id(first, out);
            write_varint(out, u64::from(last_doc.0));
            write_varint(out, *offset as u64);
        }
    }
    out.put_slice(&blocks);
}

/// Zero-copy reader over one blocked run produced by [`encode_blocked_run`].
///
/// Parsing reads only the header and skip table; the block bytes themselves
/// are borrowed, not decoded, until a `decode_*` call asks for them.
#[derive(Debug)]
pub struct BlockedRunReader<'a> {
    total: usize,
    skips: Vec<SkipEntry>,
    blocks: &'a [u8],
}

impl<'a> BlockedRunReader<'a> {
    /// Parses a blocked run of `total` postings, consuming **all** of
    /// `input` — the caller delimits the run (in format v3 the byte extent
    /// comes from the term dictionary) and supplies the posting count the
    /// encoder never wrote. Parsing reads the skip table and validates it
    /// against the region bounds; block bytes stay untouched.
    pub fn parse(input: &mut &'a [u8], total: usize) -> Result<Self, DecodeError> {
        if total == 0 {
            if !input.is_empty() {
                return Err(DecodeError::BadBlockLayout("bytes after an empty run"));
            }
            return Ok(BlockedRunReader { total: 0, skips: Vec::new(), blocks: &[] });
        }
        let block_count = total.div_ceil(BLOCK_SIZE);
        let last_count = total - (block_count - 1) * BLOCK_SIZE;
        let mut skips = Vec::with_capacity(block_count.min(MAX_PREALLOC));
        if block_count == 1 {
            let last_doc = DocId(read_varint_u32(input)?);
            let blocks = Self::take_blocks(input)?;
            // The single block's first id is its leader entry; decoding one
            // entry materializes the skip entry without touching the rest.
            let mut peek = blocks;
            let first = BlockDecoder::new().next(&mut peek)?;
            if last_doc < first.doc() {
                return Err(DecodeError::BadBlockLayout("block last_doc before first doc"));
            }
            skips.push(SkipEntry { first, last_doc, count: total, offset: 0 });
            return Ok(BlockedRunReader { total, skips, blocks });
        }
        for i in 0..block_count {
            let first = decode_id(input)?;
            let last_doc = DocId(read_varint_u32(input)?);
            let offset = read_varint(input)? as usize;
            if let Some(prev) = skips.last() {
                let prev: &SkipEntry = prev;
                if offset <= prev.offset {
                    return Err(DecodeError::BadBlockLayout("skip offsets not increasing"));
                }
            } else if offset != 0 {
                return Err(DecodeError::BadBlockLayout("first block not at offset 0"));
            }
            if last_doc < first.doc() {
                return Err(DecodeError::BadBlockLayout("block last_doc before first doc"));
            }
            let count = if i + 1 == block_count {
                last_count
            } else {
                BLOCK_SIZE
            };
            skips.push(SkipEntry { first, last_doc, count, offset });
        }
        let blocks = Self::take_blocks(input)?;
        if let Some(last) = skips.last() {
            if last.offset >= blocks.len() {
                return Err(DecodeError::BadBlockLayout("skip offset past blocks region"));
            }
        }
        Ok(BlockedRunReader { total, skips, blocks })
    }

    /// Takes the rest of `input` as the blocks region — the run owns its
    /// whole slice, so everything after the skip data is block bytes.
    fn take_blocks(input: &mut &'a [u8]) -> Result<&'a [u8], DecodeError> {
        let blocks = *input;
        *input = &[];
        if blocks.is_empty() {
            return Err(DecodeError::BadBlockLayout("empty blocks region"));
        }
        Ok(blocks)
    }

    /// Total postings in the run — known from the header without decoding.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The skip table.
    pub fn skip_entries(&self) -> &[SkipEntry] {
        &self.skips
    }

    /// Byte length of the blocks region.
    pub fn blocks_len(&self) -> usize {
        self.blocks.len()
    }

    fn block_bytes(&self, i: usize) -> &'a [u8] {
        let start = self.skips[i].offset;
        let end = self.skips.get(i + 1).map_or(self.blocks.len(), |s| s.offset);
        &self.blocks[start..end]
    }

    /// Decodes block `i` into owned ids.
    pub fn decode_block(&self, i: usize) -> Result<Vec<DeweyId>, DecodeError> {
        let entry = &self.skips[i];
        let mut input = self.block_bytes(i);
        let mut decoder = BlockDecoder::new();
        let mut ids = Vec::with_capacity(entry.count.min(MAX_PREALLOC));
        for _ in 0..entry.count {
            ids.push(decoder.next(&mut input)?);
        }
        if ids.first() != Some(&entry.first) {
            return Err(DecodeError::BadBlockLayout("block first id disagrees with skip entry"));
        }
        Ok(ids)
    }

    /// Decodes the whole run.
    pub fn decode_all(&self) -> Result<Vec<DeweyId>, DecodeError> {
        let mut ids = Vec::with_capacity(self.total.min(MAX_PREALLOC));
        for i in 0..self.skips.len() {
            ids.extend(self.decode_block(i)?);
        }
        Ok(ids)
    }

    /// Index of the first block that can contain `doc` (first block whose
    /// `last_doc` is ≥ `doc`); `skips.len()` if every block ends earlier.
    /// This is the seek primitive the merge heap and tombstone masking use
    /// to land on a block without decoding its predecessors.
    pub fn find_block(&self, doc: DocId) -> usize {
        self.skips.partition_point(|s| s.last_doc < doc)
    }

    /// Decodes the run while masking out postings whose document id appears
    /// in the sorted `dead` list. Blocks that lie entirely within one dead
    /// document are skipped without decoding — their posting counts are
    /// known from the skip table, so the masked tally stays exact.
    ///
    /// Returns the surviving ids and the number of postings masked out.
    pub fn decode_masked(&self, dead: &[u32]) -> Result<(Vec<DeweyId>, u64), DecodeError> {
        let mut ids = Vec::new();
        let mut masked = 0u64;
        for (i, entry) in self.skips.iter().enumerate() {
            if entry.first.doc() == entry.last_doc
                && dead.binary_search(&entry.first.doc().0).is_ok()
            {
                masked += entry.count as u64;
                continue;
            }
            for id in self.decode_block(i)? {
                if dead.binary_search(&id.doc().0).is_ok() {
                    masked += 1;
                } else {
                    ids.push(id);
                }
            }
        }
        Ok((ids, masked))
    }

    /// Whether [`Self::decode_masked`] would skip at least one whole block
    /// for this `dead` list (sorted document ids).
    pub fn any_block_skippable(&self, dead: &[u32]) -> bool {
        self.skips
            .iter()
            .any(|s| s.first.doc() == s.last_doc && dead.binary_search(&s.first.doc().0).is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn d(doc: u32, steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(doc), steps.to_vec())
    }

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            write_varint(&mut buf, v);
            let mut slice = buf.freeze();
            assert_eq!(read_varint(&mut slice).unwrap(), v);
            assert!(!slice.has_remaining());
        }
    }

    #[test]
    fn varint_eof_detected() {
        let mut buf = BytesMut::new();
        write_varint(&mut buf, 1u64 << 40);
        let frozen = buf.freeze();
        let mut truncated = frozen.slice(..frozen.len() - 1);
        assert_eq!(read_varint(&mut truncated), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn id_round_trip() {
        for id in [d(0, &[]), d(7, &[0, 1, 2]), d(u32::MAX, &[u32::MAX])] {
            let mut buf = BytesMut::new();
            encode_id(&id, &mut buf);
            let mut slice = buf.freeze();
            assert_eq!(decode_id(&mut slice).unwrap(), id);
        }
    }

    #[test]
    fn sorted_run_round_trip_and_compression() {
        // Pre-order neighbours in a deep tree share long prefixes, which is
        // the case posting lists actually exhibit.
        let mut ids = Vec::new();
        for i in 0..32u32 {
            ids.push(d(0, &[0, 3, 1, 4, 1, 5, i]));
            ids.push(d(0, &[0, 3, 1, 4, 1, 5, i, 2]));
        }
        ids.push(d(1, &[]));
        ids.push(d(1, &[0, 0]));
        let mut buf = BytesMut::new();
        encode_sorted_run(&ids, &mut buf);
        let run = buf.freeze();
        // Prefix sharing must beat the naive per-id encoding.
        let mut naive = BytesMut::new();
        for id in &ids {
            encode_id(id, &mut naive);
        }
        assert!(run.len() < naive.len(), "{} !< {}", run.len(), naive.len());
        let mut slice = run;
        assert_eq!(decode_sorted_run(&mut slice).unwrap(), ids);
    }

    #[test]
    fn empty_run_round_trip() {
        let mut buf = BytesMut::new();
        encode_sorted_run(&[], &mut buf);
        let mut slice = buf.freeze();
        assert_eq!(decode_sorted_run(&mut slice).unwrap(), Vec::<DeweyId>::new());
    }

    fn blocked_round_trip(ids: &[DeweyId]) {
        let mut buf = BytesMut::new();
        encode_blocked_run(ids, &mut buf);
        let frozen = buf.freeze();
        let mut slice: &[u8] = frozen.as_slice();
        let reader = BlockedRunReader::parse(&mut slice, ids.len()).unwrap();
        assert!(slice.is_empty(), "parse must consume the whole run");
        assert_eq!(reader.total(), ids.len());
        assert_eq!(reader.decode_all().unwrap(), ids);
    }

    #[test]
    fn blocked_run_round_trips() {
        blocked_round_trip(&[]);
        blocked_round_trip(&[d(3, &[0, 1, 2])]);
        // Exactly one block, one short of two, and several blocks.
        for n in [128u32, 129, 500] {
            let ids: Vec<_> = (0..n).map(|i| d(i / 40, &[0, 3, i % 40])).collect();
            blocked_round_trip(&ids);
        }
    }

    #[test]
    fn blocked_run_skip_table_bounds_blocks() {
        let ids: Vec<_> = (0..300u32).map(|i| d(i / 100, &[0, i % 100])).collect();
        let mut buf = BytesMut::new();
        encode_blocked_run(&ids, &mut buf);
        let frozen = buf.freeze();
        let mut slice: &[u8] = frozen.as_slice();
        let reader = BlockedRunReader::parse(&mut slice, ids.len()).unwrap();
        let skips = reader.skip_entries();
        assert_eq!(skips.len(), 3);
        assert_eq!(skips[0].offset, 0);
        for (i, s) in skips.iter().enumerate() {
            assert_eq!(s.count, ids[i * 128..].len().min(128));
            assert_eq!(&s.first, &ids[i * 128]);
            assert_eq!(s.last_doc, ids[(i * 128 + s.count) - 1].doc());
            assert_eq!(reader.decode_block(i).unwrap(), &ids[i * 128..i * 128 + s.count]);
        }
        // Seeks land on the right block without decoding predecessors.
        assert_eq!(reader.find_block(DocId(0)), 0);
        assert_eq!(reader.find_block(ids[128].doc()), reader.find_block(ids[128].doc()));
        assert_eq!(reader.find_block(DocId(9999)), skips.len());
    }

    #[test]
    fn blocked_run_masked_skips_dead_blocks() {
        // 256 postings in doc 5 (two full blocks), then 10 in doc 9.
        let mut ids: Vec<_> = (0..256u32).map(|i| d(5, &[0, i])).collect();
        ids.extend((0..10u32).map(|i| d(9, &[1, i])));
        let mut buf = BytesMut::new();
        encode_blocked_run(&ids, &mut buf);
        let frozen = buf.freeze();
        let mut slice: &[u8] = frozen.as_slice();
        let reader = BlockedRunReader::parse(&mut slice, ids.len()).unwrap();
        assert!(reader.any_block_skippable(&[5]));
        let (live, masked) = reader.decode_masked(&[5]).unwrap();
        assert_eq!(masked, 256);
        assert_eq!(live, &ids[256..]);
        // Masking nothing decodes everything.
        let (all, none) = reader.decode_masked(&[]).unwrap();
        assert_eq!(none, 0);
        assert_eq!(all, ids);
        // The trailing partial block holds only doc 9, so it is skippable too.
        assert!(reader.any_block_skippable(&[9]));
        let (live9, masked9) = reader.decode_masked(&[9]).unwrap();
        assert_eq!(masked9, 10);
        assert_eq!(live9, &ids[..256]);
    }

    #[test]
    fn blocked_run_corrupt_layouts_rejected() {
        let ids: Vec<_> = (0..200u32).map(|i| d(0, &[i])).collect();
        let mut buf = BytesMut::new();
        encode_blocked_run(&ids, &mut buf);
        let good = buf.freeze().to_vec();

        // Truncation inside the blocks region surfaces at decode time —
        // parse cannot see it (the region length is external now), but the
        // entry chain runs off the end of the shortened slice.
        let mut truncated: &[u8] = &good[..good.len() - 1];
        let reader = BlockedRunReader::parse(&mut truncated, ids.len()).unwrap();
        assert!(reader.decode_all().is_err());

        // Truncation inside the skip table fails at parse.
        let mut skip_cut: &[u8] = &good[..2];
        assert!(BlockedRunReader::parse(&mut skip_cut, ids.len()).is_err());

        // A single-block run whose last_doc precedes its leader's document.
        let mut bad = BytesMut::new();
        write_varint(&mut bad, 2); // last_doc — but the leader is in doc 5
        let mut block = Vec::new();
        encode_block_entry(None, &d(5, &[0]), &mut block);
        bad.put_slice(&block);
        let frozen = bad.freeze();
        let mut slice: &[u8] = frozen.as_slice();
        assert!(matches!(
            BlockedRunReader::parse(&mut slice, 1),
            Err(DecodeError::BadBlockLayout(_))
        ));

        // An empty blocks region is rejected.
        let mut empty = BytesMut::new();
        write_varint(&mut empty, 0); // last_doc, then no block bytes at all
        let frozen = empty.freeze();
        let mut slice: &[u8] = frozen.as_slice();
        assert!(matches!(
            BlockedRunReader::parse(&mut slice, 1),
            Err(DecodeError::BadBlockLayout(_))
        ));

        // A non-empty slice claiming zero postings is rejected.
        let mut nonempty: &[u8] = &good[..4];
        assert!(matches!(
            BlockedRunReader::parse(&mut nonempty, 0),
            Err(DecodeError::BadBlockLayout(_))
        ));
    }

    #[test]
    fn blocked_run_denser_than_sorted_run() {
        // The folded document flag must make the blocked layout smaller than
        // the v2 run layout on a same-document posting list, even counting
        // the blocked framing (this is what pays for format v3's skip data).
        let ids: Vec<_> = (0..300u32).map(|i| d(0, &[0, 3, 1, i / 10, i % 10])).collect();
        let mut run = BytesMut::new();
        encode_sorted_run(&ids, &mut run);
        let mut blocked = BytesMut::new();
        encode_blocked_run(&ids, &mut blocked);
        assert!(blocked.len() < run.len(), "blocked {} !< run {}", blocked.len(), run.len());
    }

    #[test]
    fn corrupt_shared_prefix_rejected() {
        // Hand-craft a run whose second entry claims a longer shared prefix
        // than the first entry's depth.
        let mut buf = BytesMut::new();
        write_varint(&mut buf, 2); // count
        write_varint(&mut buf, 1); // new doc
        write_varint(&mut buf, 0); // doc id
        write_varint(&mut buf, 0); // shared
        write_varint(&mut buf, 1); // suffix len
        write_varint(&mut buf, 5); // suffix
        write_varint(&mut buf, 0); // same doc
        write_varint(&mut buf, 9); // bogus shared prefix
        write_varint(&mut buf, 0); // suffix len
        let mut slice = buf.freeze();
        assert!(matches!(
            decode_sorted_run(&mut slice),
            Err(DecodeError::BadSharedPrefix { shared: 9, prev_depth: 1 })
        ));
    }
}
