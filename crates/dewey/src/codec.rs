//! Compact binary codec for Dewey ids and sorted Dewey-id runs.
//!
//! Two encodings are provided:
//!
//! * [`encode_id`] / [`decode_id`] — a standalone id as LEB128 varints
//!   (document id, path length, then each step).
//! * [`encode_sorted_run`] / [`decode_sorted_run`] — a **delta-prefix**
//!   encoding for a document-ordered run of ids, as stored in inverted-index
//!   posting lists. Consecutive Dewey ids share long prefixes (they are
//!   pre-order neighbours), so each entry stores only the number of leading
//!   steps shared with its predecessor plus the fresh suffix. This is what
//!   keeps the on-disk index roughly the size of the input data, as the paper
//!   reports in Table 4.
//!
//! All integers use unsigned LEB128 ([`write_varint`] / [`read_varint`]).

use bytes::{Buf, BufMut};

use crate::{DeweyId, DocId, Step};

/// Error returned when decoding malformed or truncated bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended in the middle of a value.
    UnexpectedEof,
    /// A varint ran past the 32-bit range.
    VarintOverflow,
    /// A shared-prefix length exceeded the previous id's depth.
    BadSharedPrefix { shared: usize, prev_depth: usize },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of encoded data"),
            DecodeError::VarintOverflow => write!(f, "varint exceeds 32-bit range"),
            DecodeError::BadSharedPrefix { shared, prev_depth } => {
                write!(f, "shared prefix length {shared} exceeds previous id depth {prev_depth}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends `value` as unsigned LEB128.
pub fn write_varint(out: &mut impl BufMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 value, bounded to 64 bits.
pub fn read_varint(input: &mut impl Buf) -> Result<u64, DecodeError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !input.has_remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        let byte = input.get_u8();
        if shift >= 64 {
            return Err(DecodeError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn read_varint_u32(input: &mut impl Buf) -> Result<u32, DecodeError> {
    let v = read_varint(input)?;
    u32::try_from(v).map_err(|_| DecodeError::VarintOverflow)
}

/// Encodes a standalone Dewey id.
pub fn encode_id(id: &DeweyId, out: &mut impl BufMut) {
    write_varint(out, u64::from(id.doc().0));
    write_varint(out, id.steps().len() as u64);
    for &s in id.steps() {
        write_varint(out, u64::from(s));
    }
}

/// Decodes a standalone Dewey id encoded by [`encode_id`].
pub fn decode_id(input: &mut impl Buf) -> Result<DeweyId, DecodeError> {
    let doc = read_varint_u32(input)?;
    let len = read_varint(input)? as usize;
    let mut steps = Vec::with_capacity(len);
    for _ in 0..len {
        steps.push(read_varint_u32(input)?);
    }
    Ok(DeweyId::new(DocId(doc), steps))
}

/// Encodes a document-ordered run of Dewey ids with prefix sharing.
///
/// Layout: count, then for each id: document id delta flag + shared prefix
/// length + suffix length + suffix steps. The first id shares nothing.
pub fn encode_sorted_run(ids: &[DeweyId], out: &mut impl BufMut) {
    write_varint(out, ids.len() as u64);
    let mut prev: Option<&DeweyId> = None;
    for id in ids {
        let shared = match prev {
            Some(p) if p.doc() == id.doc() => p.common_prefix_len(id).unwrap_or(0),
            _ => 0,
        };
        // Document id is re-stated whenever it changes (or at the start).
        let new_doc = prev.is_none_or(|p| p.doc() != id.doc());
        write_varint(out, u64::from(new_doc));
        if new_doc {
            write_varint(out, u64::from(id.doc().0));
        }
        write_varint(out, shared as u64);
        let suffix = &id.steps()[shared..];
        write_varint(out, suffix.len() as u64);
        for &s in suffix {
            write_varint(out, u64::from(s));
        }
        prev = Some(id);
    }
}

/// Decodes a run produced by [`encode_sorted_run`].
pub fn decode_sorted_run(input: &mut impl Buf) -> Result<Vec<DeweyId>, DecodeError> {
    let count = read_varint(input)? as usize;
    let mut ids: Vec<DeweyId> = Vec::with_capacity(count);
    let mut doc = DocId(0);
    let mut prev_steps: Vec<Step> = Vec::new();
    for i in 0..count {
        let new_doc = read_varint(input)? != 0;
        if new_doc {
            doc = DocId(read_varint_u32(input)?);
            prev_steps.clear();
        } else if i == 0 {
            return Err(DecodeError::UnexpectedEof);
        }
        let shared = read_varint(input)? as usize;
        if shared > prev_steps.len() {
            return Err(DecodeError::BadSharedPrefix { shared, prev_depth: prev_steps.len() });
        }
        let suffix_len = read_varint(input)? as usize;
        prev_steps.truncate(shared);
        for _ in 0..suffix_len {
            prev_steps.push(read_varint_u32(input)?);
        }
        ids.push(DeweyId::new(doc, prev_steps.clone()));
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn d(doc: u32, steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(doc), steps.to_vec())
    }

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            write_varint(&mut buf, v);
            let mut slice = buf.freeze();
            assert_eq!(read_varint(&mut slice).unwrap(), v);
            assert!(!slice.has_remaining());
        }
    }

    #[test]
    fn varint_eof_detected() {
        let mut buf = BytesMut::new();
        write_varint(&mut buf, 1u64 << 40);
        let frozen = buf.freeze();
        let mut truncated = frozen.slice(..frozen.len() - 1);
        assert_eq!(read_varint(&mut truncated), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn id_round_trip() {
        for id in [d(0, &[]), d(7, &[0, 1, 2]), d(u32::MAX, &[u32::MAX])] {
            let mut buf = BytesMut::new();
            encode_id(&id, &mut buf);
            let mut slice = buf.freeze();
            assert_eq!(decode_id(&mut slice).unwrap(), id);
        }
    }

    #[test]
    fn sorted_run_round_trip_and_compression() {
        // Pre-order neighbours in a deep tree share long prefixes, which is
        // the case posting lists actually exhibit.
        let mut ids = Vec::new();
        for i in 0..32u32 {
            ids.push(d(0, &[0, 3, 1, 4, 1, 5, i]));
            ids.push(d(0, &[0, 3, 1, 4, 1, 5, i, 2]));
        }
        ids.push(d(1, &[]));
        ids.push(d(1, &[0, 0]));
        let mut buf = BytesMut::new();
        encode_sorted_run(&ids, &mut buf);
        let run = buf.freeze();
        // Prefix sharing must beat the naive per-id encoding.
        let mut naive = BytesMut::new();
        for id in &ids {
            encode_id(id, &mut naive);
        }
        assert!(run.len() < naive.len(), "{} !< {}", run.len(), naive.len());
        let mut slice = run;
        assert_eq!(decode_sorted_run(&mut slice).unwrap(), ids);
    }

    #[test]
    fn empty_run_round_trip() {
        let mut buf = BytesMut::new();
        encode_sorted_run(&[], &mut buf);
        let mut slice = buf.freeze();
        assert_eq!(decode_sorted_run(&mut slice).unwrap(), Vec::<DeweyId>::new());
    }

    #[test]
    fn corrupt_shared_prefix_rejected() {
        // Hand-craft a run whose second entry claims a longer shared prefix
        // than the first entry's depth.
        let mut buf = BytesMut::new();
        write_varint(&mut buf, 2); // count
        write_varint(&mut buf, 1); // new doc
        write_varint(&mut buf, 0); // doc id
        write_varint(&mut buf, 0); // shared
        write_varint(&mut buf, 1); // suffix len
        write_varint(&mut buf, 5); // suffix
        write_varint(&mut buf, 0); // same doc
        write_varint(&mut buf, 9); // bogus shared prefix
        write_varint(&mut buf, 0); // suffix len
        let mut slice = buf.freeze();
        assert!(matches!(
            decode_sorted_run(&mut slice),
            Err(DecodeError::BadSharedPrefix { shared: 9, prev_depth: 1 })
        ));
    }
}
