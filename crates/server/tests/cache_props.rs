//! Property: the result cache is invisible. For any document and query, the
//! bytes a cache hit returns are identical to the bytes a fresh computation
//! returns — which holds only because the wire format is deterministic
//! (timing travels in a header, never the body). A second family of
//! properties checks the LRU bookkeeping under random workloads.

use std::sync::Arc;
use std::time::Instant;

use gks_core::engine::Engine;
use gks_index::{Corpus, IndexOptions};
use gks_server::cache::{ResultCache, ENTRY_OVERHEAD};
use gks_server::http::{parse_request, HttpResponse};
use gks_server::{ServeConfig, ServeState};
use proptest::prelude::*;

fn arb_word() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["alpha", "beta", "gamma", "delta", "epsilon"])
        .prop_map(str::to_string)
}

fn arb_doc() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::collection::vec(arb_word(), 1..4), 1..8).prop_map(|records| {
        let mut xml = String::from("<root>");
        for rec in records {
            xml.push_str("<rec>");
            for w in rec {
                xml.push_str(&format!("<w>{w}</w>"));
            }
            xml.push_str("</rec>");
        }
        xml.push_str("</root>");
        xml
    })
}

fn state_for(xml: &str, cache_bytes: usize) -> ServeState {
    let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
    let engine = Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap());
    let config = ServeConfig { cache_bytes, ..ServeConfig::default() };
    ServeState::new(engine, config).unwrap()
}

fn get(state: &ServeState, target: &str) -> HttpResponse {
    let request = parse_request(&format!("GET {target} HTTP/1.1\r\n\r\n")).unwrap();
    state.handle(&request, Instant::now())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cached bytes == fresh bytes, for /search and /suggest alike.
    #[test]
    fn cached_response_byte_equals_fresh(
        xml in arb_doc(),
        kws in prop::collection::hash_set(arb_word(), 1..4),
        s in 1usize..3,
        suggest in prop::sample::select(vec![false, true]),
    ) {
        let words: Vec<String> = kws.into_iter().collect();
        let target = format!(
            "/{}?q={}&s={s}",
            if suggest { "suggest" } else { "search" },
            words.join("+"),
        );
        let cached = state_for(&xml, 1 << 20);
        let miss = get(&cached, &target);
        let hit = get(&cached, &target);
        let uncached = state_for(&xml, 0);
        let fresh = get(&uncached, &target);
        prop_assert_eq!(miss.status, 200);
        prop_assert_eq!(hit.status, 200);
        prop_assert_eq!(&miss.body, &hit.body, "hit must replay the miss bytes");
        prop_assert_eq!(&miss.body, &fresh.body, "cache must be invisible");
    }

    /// LRU invariants under random put/get interleavings: accounted bytes
    /// never exceed capacity, a fitting insert is immediately readable at
    /// its exact length, and an oversized insert is skipped.
    #[test]
    fn lru_accounting_holds_under_random_workloads(
        ops in prop::collection::vec((0u8..16, 0usize..200), 1..200),
    ) {
        let capacity = ENTRY_OVERHEAD * 8;
        let cache = ResultCache::new(capacity, 1, 0);
        for (key_id, value_len) in ops {
            let key = format!("k{key_id:02}");
            let value: Arc<[u8]> = vec![b'x'; value_len].into();
            cache.put(key.clone(), value);
            let stats = cache.stats();
            prop_assert!(stats.bytes <= capacity, "{} > {capacity}", stats.bytes);
            let charge = key.len() + value_len + ENTRY_OVERHEAD;
            if charge <= capacity {
                prop_assert!(cache.get(&key).is_some(), "fitting insert must be readable");
                prop_assert_eq!(cache.get(&key).map(|v| v.len()), Some(value_len));
            } else {
                prop_assert!(cache.get(&key).is_none(), "oversized insert must be skipped");
            }
        }
    }
}
