//! End-to-end liveness of the incremental update path: a corpus mutation
//! becomes visible to `/search` without a restart, `POST /admin/compact`
//! folds the delta backlog while serving, the watcher thread picks up
//! changes on its own, and no request observes a 5xx through any of it.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gks_index::delta::index_directory;
use gks_index::IndexOptions;
use gks_server::client::http_get;
use gks_server::http::parse_request;
use gks_server::metrics::metric_value;
use gks_server::{catalog::IndexSpec, serve_catalog, ServeConfig, ServeState};

fn write_doc(corpus: &Path, name: &str, words: &str) {
    let mut xml = String::from("<course><students>");
    for w in words.split_whitespace() {
        xml.push_str(&format!("<student>{w}</student>"));
    }
    xml.push_str("</students></course>");
    std::fs::write(corpus.join(format!("{name}.xml")), xml).unwrap();
}

/// Builds a corpus directory + sharded manifest; returns the manifest path.
fn seed_corpus(root: &Path) -> PathBuf {
    let corpus = root.join("corpus");
    std::fs::create_dir_all(&corpus).unwrap();
    write_doc(&corpus, "d0", "apple banana");
    write_doc(&corpus, "d1", "banana cherry");
    write_doc(&corpus, "d2", "cherry durian");
    let manifest = root.join("corpus.shards");
    index_directory(&corpus, &manifest, 2, IndexOptions::default()).unwrap();
    manifest
}

fn get(state: &ServeState, target: &str) -> gks_server::http::HttpResponse {
    let request = parse_request(&format!("GET {target} HTTP/1.1\r\n\r\n")).unwrap();
    state.handle(&request, Instant::now())
}

fn post(state: &ServeState, target: &str) -> gks_server::http::HttpResponse {
    let request = parse_request(&format!("POST {target} HTTP/1.1\r\n\r\n")).unwrap();
    state.handle(&request, Instant::now())
}

fn body(state: &ServeState, target: &str) -> String {
    String::from_utf8(get(state, target).body).unwrap()
}

/// True when a search body reports at least one hit. The response echoes
/// the query keywords, so substring checks on the keyword are vacuous —
/// the `total_hits` counter is the real signal.
fn has_hits(body: &str) -> bool {
    !body.contains("\"total_hits\":0")
}

/// Mutations committed through `poll_corpus` are served by `/search`
/// immediately — adds, modifies, and deletes alike — and `/admin/compact`
/// folds the backlog without changing what queries see.
#[test]
fn mutations_become_visible_without_restart() {
    let root = std::env::temp_dir().join(format!("gks-live-update-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let manifest = seed_corpus(&root);
    let corpus = root.join("corpus");
    let specs = vec![IndexSpec::with_manifest("live", &manifest).unwrap()];
    let state = ServeState::with_catalog(specs, Some("live"), ServeConfig::default()).unwrap();
    let resident = state.catalog().default_index();

    assert_eq!(get(&state, "/search?q=apple").status, 200);
    assert!(has_hits(&body(&state, "/search?q=apple")));
    assert!(!has_hits(&body(&state, "/search?q=elderberry")));

    // Add a document: visible right after the poll commits the delta.
    write_doc(&corpus, "d3", "elderberry fig");
    let stats = resident.poll_corpus().unwrap().expect("a delta was committed");
    assert_eq!(stats.added, 1);
    let response = get(&state, "/search?q=elderberry");
    assert_eq!(response.status, 200);
    let text = String::from_utf8(response.body).unwrap();
    assert!(has_hits(&text), "new doc is searchable: {text}");
    assert!(resident.delta_shards() >= 1, "the add lives in a delta shard");

    // Modify: the old content stops matching, the new content matches.
    write_doc(&corpus, "d0", "grape banana");
    resident.poll_corpus().unwrap().expect("modify commits");
    assert!(has_hits(&body(&state, "/search?q=grape")), "modified content matches");
    assert!(!has_hits(&body(&state, "/search?q=apple")), "old content stops matching");

    // Delete: the document disappears from results.
    std::fs::remove_file(corpus.join("d2.xml")).unwrap();
    resident.poll_corpus().unwrap().expect("delete commits");
    assert!(!has_hits(&body(&state, "/search?q=durian")), "deleted doc stops matching");

    // An unchanged corpus commits nothing.
    assert!(resident.poll_corpus().unwrap().is_none(), "clean poll is a no-op");

    // Freshness is exported and small right after a commit.
    let text = String::from_utf8(get(&state, "/metrics").body).unwrap();
    let fresh = metric_value(&text, "gks_index_freshness_seconds{index=\"live\"}").unwrap();
    assert!((0..60).contains(&fresh), "freshness just after a commit: {fresh}");
    assert!(metric_value(&text, "gks_delta_shards{index=\"live\"}").unwrap() >= 1);
    assert!(metric_value(&text, "gks_delta_commits_total{index=\"live\"}").unwrap() >= 3);

    // Compaction folds the backlog; queries answer the same before/after.
    let grape_before = get(&state, "/search?q=grape+banana&s=1").body;
    let response = post(&state, "/admin/compact");
    assert_eq!(response.status, 200);
    let body = String::from_utf8(response.body).unwrap();
    assert!(body.contains("\"compacted\":true"), "{body}");
    assert_eq!(resident.delta_shards(), 0, "backlog folded");
    assert_eq!(
        get(&state, "/search?q=grape+banana&s=1").body,
        grape_before,
        "compaction preserves answers byte-for-byte"
    );
    // A second compaction has nothing to fold.
    let body = String::from_utf8(post(&state, "/admin/compact").body).unwrap();
    assert!(body.contains("\"compacted\":false"), "{body}");
    let text = String::from_utf8(get(&state, "/metrics").body).unwrap();
    assert_eq!(metric_value(&text, "gks_compactions_total{index=\"live\"}"), Some(1));
    assert_eq!(metric_value(&text, "gks_delta_shards{index=\"live\"}"), Some(0));

    // Method and target validation.
    assert_eq!(get(&state, "/admin/compact").status, 405, "compact requires POST");
    assert_eq!(post(&state, "/admin/compact?index=nope").status, 404);
    std::fs::remove_dir_all(&root).ok();
}

/// Indexes without a manifest have no update path: compact is a 400.
#[test]
fn compact_without_manifest_is_rejected() {
    let corpus = gks_index::Corpus::from_named_strs([("x", "<r><a>word</a></r>")]).unwrap();
    let engine =
        Arc::new(gks_core::engine::Engine::build(&corpus, IndexOptions::default()).unwrap());
    let state = ServeState::new(engine, ServeConfig::default()).unwrap();
    assert_eq!(post(&state, "/admin/compact").status, 400);
}

fn wait_for<F: Fn() -> bool>(what: &str, deadline: Duration, f: F) {
    let started = Instant::now();
    while !f() {
        assert!(started.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn body_of(addr: SocketAddr, target: &str) -> String {
    http_get(addr, target, Duration::from_secs(5)).unwrap().body_text()
}

/// The full background loop over real sockets: `serve --watch` with a
/// compaction threshold picks up a corpus mutation on its own, serves it,
/// compacts the backlog down, and never answers 5xx while clients hammer
/// the index throughout.
#[test]
fn watcher_thread_picks_up_changes_under_load() {
    let root = std::env::temp_dir().join(format!("gks-live-watch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let manifest = seed_corpus(&root);
    let corpus = root.join("corpus");
    let specs = vec![IndexSpec::with_manifest("live", &manifest).unwrap()];
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        watch_interval: Some(Duration::from_millis(40)),
        compact_threshold: Some(1),
        ..ServeConfig::default()
    };
    let server = serve_catalog(specs, Some("live"), config).unwrap();
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let fivexx = Arc::new(AtomicU64::new(0));
    let hammer = {
        let stop = Arc::clone(&stop);
        let fivexx = Arc::clone(&fivexx);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Ok(r) = http_get(addr, "/search?q=banana", Duration::from_secs(5)) {
                    if r.status >= 500 {
                        fivexx.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        })
    };

    write_doc(&corpus, "d9", "kumquat banana");
    wait_for("the watcher to serve the new doc", Duration::from_secs(30), || {
        !body_of(addr, "/search?q=kumquat").contains("\"total_hits\":0")
    });
    wait_for("the compactor to fold the backlog", Duration::from_secs(30), || {
        metric_value(&body_of(addr, "/metrics"), "gks_compactions_total{index=\"live\"}")
            .is_some_and(|n| n >= 1)
    });
    // Still serving the mutation after compaction folded the backlog.
    assert!(!body_of(addr, "/search?q=kumquat").contains("\"total_hits\":0"));
    let metrics = body_of(addr, "/metrics");
    assert!(metric_value(&metrics, "gks_delta_commits_total{index=\"live\"}").unwrap() >= 1);
    assert_eq!(metric_value(&metrics, "gks_delta_shards{index=\"live\"}"), Some(0));

    stop.store(true, Ordering::Relaxed);
    hammer.join().unwrap();
    server.shutdown();
    assert_eq!(fivexx.load(Ordering::Relaxed), 0, "no 5xx during live updates");
    std::fs::remove_dir_all(&root).ok();
}
