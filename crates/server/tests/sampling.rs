//! Trace head-sampling through a whole [`ServeState`]: with `--trace-sample
//! 1/N` only every Nth request writes a trace into the ring and the latency
//! histograms, yet the per-kind span *counters* still count every request —
//! so `gks_trace_spans_total` stays an accurate request tally.
//!
//! Sampling state (`set_sample_every`, the sampling sequence) is process
//! global, which is why this test owns its binary.

use std::sync::Arc;
use std::time::Instant;

use gks_core::engine::Engine;
use gks_core::json::Json;
use gks_index::{Corpus, IndexOptions};
use gks_server::http::{parse_request, HttpResponse};
use gks_server::metrics::metric_value;
use gks_server::{ServeConfig, ServeState};

fn small_engine() -> Arc<Engine> {
    let xml = "<r><rec><w>alpha</w><w>beta</w></rec><rec><w>gamma</w></rec></r>";
    let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
    Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap())
}

fn get(state: &ServeState, target: &str) -> HttpResponse {
    let request = parse_request(&format!("GET {target} HTTP/1.1\r\n\r\n")).unwrap();
    state.handle(&request, Instant::now())
}

#[test]
fn sampled_out_requests_still_count_in_span_totals() {
    let config = ServeConfig {
        trace: true,
        trace_ring: 64,
        trace_sample: 4,
        // No cache: every request exercises the engine phases, so the
        // sampled share of histogram writes is exact.
        cache_bytes: 0,
        ..ServeConfig::default()
    };
    let state = ServeState::new(small_engine(), config).unwrap();
    // Clear counters/ring/sampling sequence; the 1-in-4 rate is kept.
    gks_trace::reset();

    // 40 requests, single-threaded: the deterministic 1-in-4 head sampler
    // keeps exactly requests 0, 4, 8, …, 36 — ten traces.
    for i in 0..40 {
        let response = get(&state, &format!("/search?q=alpha&limit={}", 1 + i % 5));
        assert_eq!(response.status, 200);
        let has_timing = response.headers.iter().any(|(k, _)| *k == "Server-Timing");
        assert_eq!(has_timing, i % 4 == 0, "request {i}: timing header only when sampled");
    }

    let text = String::from_utf8(get(&state, "/metrics").body).unwrap();
    // Aggregate span counts tally every request, sampled or not.
    assert_eq!(metric_value(&text, "gks_trace_spans_total{kind=\"request\"}"), Some(40));
    assert_eq!(metric_value(&text, "gks_requests{endpoint=\"search\"}"), Some(40));
    // Histograms only see the sampled share.
    let sampled =
        metric_value(&text, "gks_phase_latency_micros_count{phase=\"postings\"}").unwrap();
    assert_eq!(sampled, 10, "histograms record only 1-in-4 requests");

    // The ring holds the ten sampled traces, nothing more.
    let dump = get(&state, "/debug/traces?n=64");
    let v = Json::parse(&String::from_utf8(dump.body).unwrap()).unwrap();
    let traces = v.get("traces").and_then(Json::as_array).unwrap();
    assert_eq!(traces.len(), 10);
}
