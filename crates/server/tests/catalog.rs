//! Catalog integration tests over real sockets plus a property test for the
//! hot-swap/cache contract: a multi-index server routes `/ix/<name>/…`
//! prefixes to isolated engines and caches, `/admin/reload` swaps a
//! path-backed index atomically under concurrent load with zero 5xx, and a
//! cache hit is never served across an identity change.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gks_core::engine::Engine;
use gks_index::{Corpus, IndexOptions};
use gks_server::catalog::IndexSpec;
use gks_server::client::{http_get, http_post};
use gks_server::http::{parse_request, HttpResponse};
use gks_server::metrics::metric_value;
use gks_server::{index_identity, serve_catalog, ServeConfig, ServeState};
use proptest::prelude::*;

const TIMEOUT: Duration = Duration::from_secs(10);

/// A tiny engine whose result bytes are distinguishable per `tag`: the tag
/// is both a document name (distinct identities) and an indexed term.
fn tagged_engine(tag: &str) -> Arc<Engine> {
    let xml = format!(
        "<catalog><item><name>{tag} alpha</name></item>\
         <item><name>{tag} beta gamma</name></item></catalog>"
    );
    let corpus = Corpus::from_named_strs([(tag, xml.as_str())]).unwrap();
    Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap())
}

fn ephemeral_config() -> ServeConfig {
    ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() }
}

#[test]
fn two_index_server_routes_and_isolates() {
    let specs = vec![
        IndexSpec::with_engine("nasa", tagged_engine("nasa")),
        IndexSpec::with_engine("dblp", tagged_engine("dblp")),
    ];
    let server = serve_catalog(specs, Some("nasa"), ephemeral_config()).unwrap();
    let addr = server.local_addr();

    // The same query against each prefix reaches a different engine: the
    // keyword "nasa" only exists in the nasa corpus, so the dblp response
    // reports it unmatched.
    let nasa = http_get(addr, "/ix/nasa/search?q=alpha+nasa", TIMEOUT).unwrap();
    let dblp = http_get(addr, "/ix/dblp/search?q=alpha+nasa", TIMEOUT).unwrap();
    assert_eq!(nasa.status, 200);
    assert_eq!(dblp.status, 200);
    assert_ne!(nasa.body, dblp.body, "indexes must serve distinct corpora");
    assert!(nasa.body_text().contains("\"missing\":[]"), "{}", nasa.body_text());
    assert!(dblp.body_text().contains("\"missing\":[\"nasa\"]"), "{}", dblp.body_text());

    // A bare path addresses the default index and shares its cache with the
    // prefixed route: the prefixed request above already warmed the key.
    let bare = http_get(addr, "/search?q=alpha+nasa", TIMEOUT).unwrap();
    assert_eq!(bare.body, nasa.body, "bare path must hit the default index");
    assert_eq!(bare.header("x-gks-cache"), Some("hit"));

    // Normalization: case/slash variants are the same route and cache key.
    let variant = http_get(addr, "/ix/DBLP//search/?q=alpha+nasa", TIMEOUT).unwrap();
    assert_eq!(variant.status, 200);
    assert_eq!(variant.body, dblp.body);
    assert_eq!(variant.header("x-gks-cache"), Some("hit"));

    // Unknown index names are a clean 404, not a fallback to the default.
    assert_eq!(http_get(addr, "/ix/imdb/search?q=alpha", TIMEOUT).unwrap().status, 404);

    // Both indexes surface in /metrics with their own counters.
    let text = http_get(addr, "/metrics", TIMEOUT).unwrap().body_text();
    let requests = |ix: &str| {
        metric_value(&text, &format!("gks_index_requests_total{{index=\"{ix}\"}}")).unwrap()
    };
    assert_eq!(requests("nasa"), 2);
    assert_eq!(requests("dblp"), 2);
    // The identity fingerprint is a full u64 (can exceed i64), so check the
    // exposition line textually rather than through `metric_value`.
    assert!(text.contains("gks_index_identity{index=\"nasa\"}"), "{text}");
    assert!(text.contains("gks_index_identity{index=\"dblp\"}"), "{text}");

    // Per-index doctor answers on the prefix; the bare endpoint covers all.
    let doctor = http_get(addr, "/ix/dblp/doctor", TIMEOUT).unwrap();
    assert_eq!(doctor.status, 200);
    assert!(doctor.body_text().contains("\"index\":\"dblp\""));
    let all = http_get(addr, "/doctor", TIMEOUT).unwrap().body_text();
    assert!(
        all.contains("\"index\":\"nasa\"") && all.contains("\"index\":\"dblp\""),
        "{all}"
    );

    server.shutdown();
}

/// Saves a freshly built index generation at `path` (the reload source).
/// The item count varies per generation, so both the identity fingerprint
/// and the result bytes for `q=alpha` change across saves.
fn save_index(generation: usize, path: &std::path::Path) {
    let mut xml = String::from("<catalog>");
    for i in 0..=generation {
        xml.push_str(&format!("<item><name>alpha entry{i}</name></item>"));
    }
    xml.push_str("</catalog>");
    let name = format!("gen{generation}");
    let corpus = Corpus::from_named_strs([(name.as_str(), xml.as_str())]).unwrap();
    let engine = Engine::build(&corpus, IndexOptions::default()).unwrap();
    engine.index().save(path).unwrap();
}

#[test]
fn admin_reload_swaps_identity_and_invalidates_the_cache() {
    let dir = std::env::temp_dir().join(format!("gks-catalog-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("live.gksix");
    save_index(0, &path);

    let specs = vec![
        IndexSpec::with_source("live", &path),
        IndexSpec::with_engine("static", tagged_engine("static")),
    ];
    let server = serve_catalog(specs, None, ephemeral_config()).unwrap();
    let addr = server.local_addr();

    // Method and lookup errors first: reload is POST-only and index-aware.
    assert_eq!(http_get(addr, "/admin/reload", TIMEOUT).unwrap().status, 405);
    assert_eq!(http_post(addr, "/admin/reload?index=nope", TIMEOUT).unwrap().status, 404);
    // An engine-backed index has no source path to re-read.
    assert_eq!(http_post(addr, "/admin/reload?index=static", TIMEOUT).unwrap().status, 400);

    // Warm the cache on the old generation, then swap the file underneath.
    let before = http_get(addr, "/ix/live/search?q=alpha&s=1", TIMEOUT).unwrap();
    assert_eq!(before.status, 200);
    save_index(1, &path);
    let reload = http_post(addr, "/admin/reload?index=live", TIMEOUT).unwrap();
    assert_eq!(reload.status, 200);
    let body = reload.body_text();
    assert!(body.contains("\"index\":\"live\""), "{body}");
    assert!(body.contains("\"changed\":true"), "{body}");

    // The warmed key must not replay the old generation's bytes: same
    // target, but the new generation holds one more matching document node.
    let after = http_get(addr, "/ix/live/search?q=alpha&s=1", TIMEOUT).unwrap();
    assert_eq!(after.status, 200);
    assert_eq!(after.header("x-gks-cache"), Some("miss"), "stale hit across reload");
    assert_ne!(after.body, before.body);

    // /metrics reports the new identity and the reload count.
    let text = http_get(addr, "/metrics", TIMEOUT).unwrap().body_text();
    assert_eq!(metric_value(&text, "gks_index_reloads_total{index=\"live\"}"), Some(1));

    // The path-backed index was loaded from a format-v3 file, so its
    // postings serve straight off the mmap; the in-memory engine maps
    // nothing. Both expose the same gauge set regardless.
    assert!(
        metric_value(&text, "gks_index_bytes_mapped{index=\"live\"}").unwrap() > 0,
        "v3 load must serve postings off the mmap: {text}"
    );
    assert_eq!(metric_value(&text, "gks_index_bytes_mapped{index=\"static\"}"), Some(0));
    assert!(metric_value(&text, "gks_index_open_millis{index=\"live\"}").is_some(), "{text}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_mid_flight_never_yields_5xx() {
    let dir = std::env::temp_dir().join(format!("gks-catalog-midflight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hot.gksix");
    save_index(0, &path);

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        queue_depth: 256,
        ..ServeConfig::default()
    };
    let server = serve_catalog(vec![IndexSpec::with_source("hot", &path)], None, config).unwrap();
    let addr = server.local_addr();

    // 8 clients hammer the index while the main thread re-saves and reloads
    // it repeatedly. Every response must be 200 — never a 5xx, never a
    // malformed body — because requests pin their generation snapshot.
    let clients: Vec<_> = (0..8)
        .map(|c| {
            std::thread::spawn(move || {
                let mut statuses = Vec::with_capacity(30);
                for i in 0..30 {
                    let target = format!("/ix/hot/search?q=alpha&limit={}", 1 + (c + i) % 5);
                    let response = http_get(addr, &target, TIMEOUT).unwrap();
                    statuses.push(response.status);
                }
                statuses
            })
        })
        .collect();
    for round in 1..=5 {
        save_index(round, &path);
        let reload = http_post(addr, "/admin/reload?index=hot", TIMEOUT).unwrap();
        assert_eq!(reload.status, 200);
        std::thread::sleep(Duration::from_millis(20));
    }
    for client in clients {
        let statuses = client.join().unwrap();
        assert!(statuses.iter().all(|&s| s == 200), "non-200 under reload: {statuses:?}");
    }

    // The catalog/pool/cache locks are instrumented with the debug-build
    // lock-order registry; this storm of concurrent acquisitions must have
    // flowed through it (and any inversion would have panicked above).
    if cfg!(debug_assertions) {
        assert!(
            gks_trace::lockorder::acquisition_count() > 0,
            "the lock-order registry must observe the instrumented server locks"
        );
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn get(state: &ServeState, target: &str) -> HttpResponse {
    let request = parse_request(&format!("GET {target} HTTP/1.1\r\n\r\n")).unwrap();
    state.handle(&request, Instant::now())
}

/// Builds the two generations used by the swap property: same vocabulary,
/// different documents, therefore different result bytes and identities.
fn generation_engine(generation: bool) -> Arc<Engine> {
    let (name, xml) = if generation {
        (
            "gen-b",
            "<r><rec><w>alpha</w><w>beta</w></rec><rec><w>alpha</w><w>gamma</w></rec></r>",
        )
    } else {
        ("gen-a", "<r><rec><w>alpha</w></rec><rec><w>beta</w><w>gamma</w></rec></r>")
    };
    let corpus = Corpus::from_named_strs([(name, xml)]).unwrap();
    Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any interleaving of queries and hot swaps, the bytes served —
    /// cached or not — always come from the *current* generation: a cache
    /// hit implies the entry's identity matches the live engine's.
    #[test]
    fn served_bytes_always_match_the_live_generation(
        ops in prop::collection::vec(0u8..4, 1..40),
    ) {
        let engines = [generation_engine(false), generation_engine(true)];
        // Uncached reference states: ground truth per generation.
        let reference: Vec<ServeState> = engines
            .iter()
            .map(|e| {
                let config = ServeConfig { cache_bytes: 0, ..ServeConfig::default() };
                ServeState::new(Arc::clone(e), config).unwrap()
            })
            .collect();
        let state = ServeState::new(Arc::clone(&engines[0]), ServeConfig::default()).unwrap();
        let resident = state.catalog().default_index();
        let mut generation = 0usize;
        for op in ops {
            if op == 3 {
                generation = 1 - generation;
                let engine = Arc::clone(&engines[generation]);
                let identity = index_identity(engine.index());
                resident.swap_engine(engine, identity);
                continue;
            }
            let target = format!("/search?q={}&s=1", ["alpha", "beta", "gamma"][op as usize]);
            let served = get(&state, &target);
            let fresh = get(&reference[generation], &target);
            prop_assert_eq!(served.status, 200);
            prop_assert_eq!(
                &served.body,
                &fresh.body,
                "served bytes must come from generation {}",
                generation
            );
        }
    }
}
