//! End-to-end smoke tests over a real in-process server: concurrent load
//! through actual sockets, admission-control overload behaviour, and a
//! clean drain. This is the test the CI serve-smoke job mirrors with curl.

use std::sync::Arc;
use std::time::Duration;

use gks_core::engine::Engine;
use gks_index::{Corpus, IndexOptions};
use gks_server::client::http_get;
use gks_server::loadgen::{self, LoadgenConfig, WorkloadEntry};
use gks_server::metrics::metric_value;
use gks_server::{serve, ServeConfig};

fn dblp_engine() -> Arc<Engine> {
    let xml = gks_datagen::Dataset::Dblp.generate(300, 2016);
    let corpus = Corpus::from_named_strs([("dblp", xml)]).unwrap();
    Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap())
}

fn ephemeral_config() -> ServeConfig {
    ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() }
}

const TIMEOUT: Duration = Duration::from_secs(10);

#[test]
fn concurrent_load_is_clean_and_drains() {
    let server = serve(dblp_engine(), ephemeral_config()).unwrap();
    let addr = server.local_addr();

    // A skewed workload: a few hot queries dominate, so the LRU cache
    // must produce a majority of hits (the ISSUE's acceptance bar).
    let workload: Vec<WorkloadEntry> = [
        ("keyword search", "1"),
        ("xml data", "2"),
        ("query processing", "1"),
        ("agarwal", "1"),
        ("database systems", "half"),
        ("index structures", "1"),
        ("information retrieval", "2"),
        ("semistructured", "1"),
    ]
    .iter()
    .map(|(q, s)| WorkloadEntry { query: (*q).to_string(), s: (*s).to_string() })
    .collect();

    let config = LoadgenConfig {
        addr,
        clients: 8,
        requests_per_client: 50,
        zipf_s: 1.1,
        seed: 42,
        timeout: TIMEOUT,
        pacing: loadgen::Pacing::Closed,
        targets: Vec::new(),
        explain: true,
        keep_alive: false,
        connections: 0,
        slow_clients: 0,
    };
    let report = loadgen::run(&config, &workload);

    assert_eq!(report.total, 400);
    assert_eq!(report.transport_errors, 0, "no dropped connections under load");
    assert_eq!(report.server_errors, 0, "no unexpected 5xx: {report:?}");
    assert_eq!(report.client_errors, 0, "workload queries are all valid");
    assert_eq!(report.ok, 400);
    assert!(
        report.hit_rate() > 0.5,
        "zipf-skewed workload must be >50% cache hits, got {:.2}",
        report.hit_rate()
    );
    assert!(report.percentile(0.99) > 0, "latencies were recorded");
    // --explain: every engine run (cache miss) reported its cost summary,
    // so the report can state work per query alongside QPS.
    assert_eq!(
        report.work_postings.len() as u64,
        400 - report.cache_hits,
        "one work sample per engine run"
    );
    assert!(report.work_percentile(0.5) > 0, "queries scanned postings");
    assert!(report.render().contains("work p50"), "{}", report.render());

    // Metrics surface agrees with the client-side tally and is monotonic.
    let text = http_get(addr, "/metrics", TIMEOUT).unwrap().body_text();
    let searches = metric_value(&text, "gks_requests{endpoint=\"search\"}").unwrap();
    assert_eq!(searches, 400);
    let hits = metric_value(&text, "gks_cache_hits_total").unwrap();
    let misses = metric_value(&text, "gks_cache_misses_total").unwrap();
    assert_eq!(hits, i64::try_from(report.cache_hits).unwrap());
    assert_eq!(hits + misses, 400);
    assert_eq!(metric_value(&text, "gks_responses{class=\"5xx\"}"), Some(0));
    assert!(metric_value(&text, "gks_latency_micros_count").unwrap() >= 400);

    let later = http_get(addr, "/metrics", TIMEOUT).unwrap().body_text();
    let total_before = metric_value(&text, "gks_requests_total").unwrap();
    let total_after = metric_value(&later, "gks_requests_total").unwrap();
    assert!(total_after > total_before, "counters only move forward");

    let report = server.shutdown();
    assert!(report.accepted >= 402, "400 queries + 2 metrics scrapes");
    assert_eq!(report.rejected, 0);
    assert!(report.served >= 402);
}

#[test]
fn open_loop_paces_and_reports_send_lag() {
    let server = serve(dblp_engine(), ephemeral_config()).unwrap();
    let addr = server.local_addr();
    let workload = vec![WorkloadEntry { query: "keyword search".to_string(), s: "1".to_string() }];
    let config = LoadgenConfig {
        addr,
        clients: 4,
        requests_per_client: 25,
        zipf_s: 0.0,
        seed: 7,
        timeout: TIMEOUT,
        pacing: loadgen::Pacing::Open { rate_qps: 400.0 },
        targets: Vec::new(),
        explain: false,
        keep_alive: false,
        connections: 0,
        slow_clients: 0,
    };
    let report = loadgen::run(&config, &workload);
    assert_eq!(report.total, 100);
    assert_eq!(report.transport_errors, 0);
    assert_eq!(report.ok, 100);
    assert_eq!(report.send_lags_micros.len(), 100, "every request records its send lag");
    // 100 requests at 400 qps occupy a 250ms schedule; pacing must actually
    // stretch the run to roughly that (closed loop on localhost would
    // finish far faster).
    assert!(
        report.elapsed >= Duration::from_millis(200),
        "open loop must honour the schedule, finished in {:?}",
        report.elapsed
    );
    assert!(report.render().contains("send lag p50"));
    server.shutdown();
}

#[test]
fn overload_rejects_with_503_and_retry_after() {
    // One worker, one queue slot. Under the old blocking design an *idle*
    // connection wedged the worker; the reactor now parks those for free,
    // so overload means a burst of COMPLETE requests outrunning the pool.
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 1,
        deadline: Duration::from_secs(2),
        ..ServeConfig::default()
    };
    let server = serve(dblp_engine(), config).unwrap();
    let addr = server.local_addr();

    // Slowloris immunity first: connections that never finish their request
    // head used to consume the worker; now a real request sails past them.
    let _idle = std::net::TcpStream::connect_timeout(&addr, TIMEOUT).unwrap();
    let mut slow = std::net::TcpStream::connect_timeout(&addr, TIMEOUT).unwrap();
    use std::io::Write as _;
    slow.write_all(b"GET /search?q=stall HTTP/1.1\r\nHost: gks\r\n").unwrap();
    let healthy = http_get(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(healthy.status, 200, "parked readers must not starve the worker");

    // Now saturate for real: bursts of simultaneous requests against a
    // worker+queue capacity of 2. Distinct queries dodge the result cache,
    // and the reactor dispatches a whole poll round before the single
    // worker runs, so some dispatch must fail admission with a 503.
    let mut rejected = 0u64;
    'rounds: for round in 0..5 {
        let probes: Vec<_> = (0..24)
            .map(|i| {
                std::thread::spawn(move || {
                    http_get(addr, &format!("/search?q=burst{round}x{i}&s=1"), TIMEOUT)
                })
            })
            .collect();
        for probe in probes {
            if let Ok(Ok(response)) = probe.join() {
                if response.status == 503 {
                    assert_eq!(response.header("retry-after"), Some("1"));
                    rejected += 1;
                }
            }
        }
        if rejected > 0 {
            break 'rounds;
        }
    }
    assert!(rejected > 0, "admission control must shed load");

    // Once the burst clears, service recovers.
    let ok = (0..20).any(|_| {
        std::thread::sleep(Duration::from_millis(100));
        http_get(addr, "/healthz", TIMEOUT).is_ok_and(|r| r.status == 200)
    });
    assert!(ok, "server must recover after overload");

    let report = server.shutdown();
    assert!(report.rejected >= rejected, "rejects show up in the drain report");
}

#[test]
fn keep_alive_connections_are_reused_and_counted() {
    let server = serve(dblp_engine(), ephemeral_config()).unwrap();
    let addr = server.local_addr();

    let mut client = gks_server::client::HttpClient::connect(addr, TIMEOUT).unwrap();
    for _ in 0..5 {
        let response = client.get("/search?q=keyword+search&s=1").unwrap();
        assert_eq!(response.status, 200);
    }

    let text = http_get(addr, "/metrics", TIMEOUT).unwrap().body_text();
    // Requests 2..=5 rode the same socket as request 1.
    assert!(
        metric_value(&text, "gks_conn_keepalive_requests_total").unwrap() >= 4,
        "keep-alive reuse must be visible in metrics: {text}"
    );
    assert!(
        metric_value(&text, "gks_conn_accept_to_dispatch_micros_count").unwrap() >= 5,
        "dispatch histogram samples every request"
    );
    server.shutdown();
}

#[test]
fn slow_readers_are_evicted_with_408_and_healthz_reports_connections() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        deadline: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = serve(dblp_engine(), config).unwrap();
    let addr = server.local_addr();

    // A partial request head, then silence: the reactor must 408 it once
    // the read deadline passes rather than hold the parked buffer forever.
    let mut slow = std::net::TcpStream::connect_timeout(&addr, TIMEOUT).unwrap();
    slow.set_read_timeout(Some(TIMEOUT)).unwrap();
    use std::io::{Read as _, Write as _};
    slow.write_all(b"GET /search?q=late HTTP/1.1\r\nHost: gks\r\n").unwrap();
    let mut raw = Vec::new();
    slow.read_to_end(&mut raw).unwrap();
    let response = gks_server::client::parse_response(&raw).unwrap();
    assert_eq!(response.status, 408, "stalled reads time out");

    // While another partial connection is parked, /healthz stays 200 and
    // its body carries the live connection summary.
    let mut parked = std::net::TcpStream::connect_timeout(&addr, TIMEOUT).unwrap();
    parked.write_all(b"GET /x HTTP/1.1\r\n").unwrap();
    let healthy = http_get(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(healthy.status, 200);
    let body = healthy.body_text();
    assert!(body.starts_with("ok\n"), "first line stays `ok`: {body}");
    assert!(body.contains("connections: open="), "{body}");

    let text = http_get(addr, "/metrics", TIMEOUT).unwrap().body_text();
    assert!(metric_value(&text, "gks_conn_evictions_total").unwrap() >= 1, "{text}");
    server.shutdown();
}

#[test]
fn drain_finishes_cleanly_with_parked_connections() {
    let server = serve(dblp_engine(), ephemeral_config()).unwrap();
    let addr = server.local_addr();

    // Park connections in every off-worker state: idle keep-alive sockets
    // and half-written request heads. None of these may stall shutdown or
    // turn an in-flight request into a 5xx.
    let mut keep_alive = gks_server::client::HttpClient::connect(addr, TIMEOUT).unwrap();
    assert_eq!(keep_alive.get("/search?q=keyword&s=1").unwrap().status, 200);
    let _idle: Vec<_> = (0..8)
        .map(|_| std::net::TcpStream::connect_timeout(&addr, TIMEOUT).unwrap())
        .collect();
    use std::io::Write as _;
    let mut partial = std::net::TcpStream::connect_timeout(&addr, TIMEOUT).unwrap();
    partial.write_all(b"GET /search?q=half HTTP/1.1\r\n").unwrap();

    // In-flight traffic racing the shutdown must either complete cleanly or
    // fail at the transport layer (connect refused after the listener
    // closes) — never a 5xx. The shutdown itself must not hang on the
    // parked sockets above.
    let probes: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                http_get(addr, &format!("/search?q=drain{i}&s=1"), TIMEOUT)
                    .map(|r| r.status)
                    .unwrap_or(0)
            })
        })
        .collect();
    let report = std::thread::spawn(move || server.shutdown()).join().unwrap();
    for probe in probes {
        let status = probe.join().unwrap();
        assert!(status == 200 || status == 0, "no 5xx during drain, got {status}");
    }
    assert!(report.served >= 1);
}

#[test]
fn doctor_and_suggest_round_trip_over_sockets() {
    let server = serve(dblp_engine(), ephemeral_config()).unwrap();
    let addr = server.local_addr();

    let doctor = http_get(addr, "/doctor", TIMEOUT).unwrap();
    assert_eq!(doctor.status, 200);
    assert!(doctor.body_text().contains("\"healthy\":true"), "{}", doctor.body_text());

    let suggest = http_get(addr, "/suggest?q=keyword+zzznothing", TIMEOUT).unwrap();
    assert_eq!(suggest.status, 200);
    assert!(
        suggest.body_text().contains("\"unmatched\":[\"zzznothing\"]"),
        "{}",
        suggest.body_text()
    );

    let bad = http_get(addr, "/search?q=x&limit=nope", TIMEOUT).unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.header("x-gks-micros").is_some(), "even errors report timing");

    server.shutdown();
}
