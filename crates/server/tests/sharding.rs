//! Sharded serving properties. The load-bearing one: a catalog index backed
//! by N shards over a document-partitioned corpus returns **byte-identical**
//! wire JSON to a single-engine index over the same corpus, for `/search`
//! and `/suggest` alike — the gather stage's merge is lossless. A second
//! test hammers a sharded index while one shard hot-reloads under it and
//! asserts no request ever fails or observes a mixed generation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gks_core::engine::Engine;
use gks_index::{split_corpus, Corpus, GksIndex, IndexOptions, ShardManifest};
use gks_server::catalog::IndexSpec;
use gks_server::http::{parse_request, HttpResponse};
use gks_server::metrics::metric_value;
use gks_server::{ServeConfig, ServeState};
use proptest::prelude::*;

fn arb_word() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["alpha", "beta", "gamma", "delta", "epsilon"])
        .prop_map(str::to_string)
}

fn arb_doc() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::collection::vec(arb_word(), 1..4), 1..6).prop_map(|records| {
        let mut xml = String::from("<root>");
        for rec in records {
            xml.push_str("<rec>");
            for w in rec {
                xml.push_str(&format!("<w>{w}</w>"));
            }
            xml.push_str("</rec>");
        }
        xml.push_str("</root>");
        xml
    })
}

fn corpus_of(docs: &[String]) -> Corpus {
    let mut corpus = Corpus::new();
    for (i, xml) in docs.iter().enumerate() {
        corpus.push(format!("doc{i}"), xml.clone());
    }
    corpus
}

fn unsharded_state(corpus: &Corpus) -> ServeState {
    let engine = Arc::new(Engine::build(corpus, IndexOptions::default()).unwrap());
    ServeState::new(engine, ServeConfig::default()).unwrap()
}

fn sharded_state(corpus: &Corpus, shards: usize) -> ServeState {
    let engines: Vec<Arc<Engine>> = split_corpus(corpus, shards)
        .iter()
        .map(|part| Arc::new(Engine::build(part, IndexOptions::default()).unwrap()))
        .collect();
    let specs = vec![IndexSpec::with_shard_engines("default", engines)];
    ServeState::with_catalog(specs, None, ServeConfig::default()).unwrap()
}

fn get(state: &ServeState, target: &str) -> HttpResponse {
    let request = parse_request(&format!("GET {target} HTTP/1.1\r\n\r\n")).unwrap();
    state.handle(&request, Instant::now())
}

fn header<'a>(response: &'a HttpResponse, name: &str) -> Option<&'a str> {
    response.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded == unsharded, byte for byte, for N ∈ {2, 3, 4}.
    #[test]
    fn sharded_search_byte_equals_unsharded(
        docs in prop::collection::vec(arb_doc(), 2..8),
        kws in prop::collection::hash_set(arb_word(), 1..4),
        s in 1usize..3,
        shards in 2usize..5,
        suggest in prop::sample::select(vec![false, true]),
    ) {
        let words: Vec<String> = kws.into_iter().collect();
        let target = format!(
            "/{}?q={}&s={s}",
            if suggest { "suggest" } else { "search" },
            words.join("+"),
        );
        let corpus = corpus_of(&docs);
        let mono = unsharded_state(&corpus);
        let split = sharded_state(&corpus, shards);
        let expected = get(&mono, &target);
        let actual = get(&split, &target);
        prop_assert_eq!(expected.status, 200);
        prop_assert_eq!(actual.status, 200);
        prop_assert_eq!(
            &actual.body, &expected.body,
            "sharded wire bytes must equal unsharded"
        );
        // The scatter announces its width; a cached replay announces it too.
        let want = split.catalog().default_index().shard_count().to_string();
        prop_assert_eq!(header(&actual, "x-gks-shards"), Some(want.as_str()));
        let replay = get(&split, &target);
        prop_assert_eq!(header(&replay, "x-gks-cache"), Some("hit"));
        prop_assert_eq!(&replay.body, &expected.body, "cache hit must replay the merge");

        // Cost accounting must gather losslessly too: every ledger counter
        // is a per-document sum and shards partition documents, so the
        // field-wise sum of the per-shard ledgers equals the unsharded
        // ledger exactly. The summary header carries all scalar counters.
        let explain_target = format!("{target}&explain=1");
        let mono_explained = get(&mono, &explain_target);
        let split_explained = get(&split, &explain_target);
        prop_assert_eq!(mono_explained.status, 200);
        prop_assert_eq!(split_explained.status, 200);
        prop_assert_eq!(
            header(&mono_explained, "x-gks-cost"),
            header(&split_explained, "x-gks-cost"),
            "gathered cost summary must equal the unsharded one"
        );
        if !suggest {
            // The explained bodies agree on everything up to the per-shard
            // breakdown (`shard_costs` legitimately differs: [] vs N
            // entries) — the merged `cost` object itself is byte-identical.
            let mono_body = String::from_utf8(mono_explained.body).unwrap();
            let split_body = String::from_utf8(split_explained.body).unwrap();
            let up_to_shards = |body: &str| body.split("\"shard_costs\":").next().unwrap().to_string();
            prop_assert_eq!(
                up_to_shards(&mono_body),
                up_to_shards(&split_body),
                "merged cost object must byte-equal the unsharded one"
            );
            let shard_count = split.catalog().default_index().shard_count();
            let tail = split_body.split("\"shard_costs\":[").nth(1).unwrap();
            let per_shard = tail.matches("\"postings_scanned\":").count();
            prop_assert_eq!(per_shard, shard_count, "one ledger per shard in the breakdown");
        }
    }
}

/// Satellite checks on one deterministic sharded request: the
/// `Server-Timing` header covers the scatter/gather phases, `explain=1`
/// adds a parseable `x-gks-cost` summary and the in-body per-shard
/// breakdown, and the engine run lands in the `/debug/top` offender table.
#[test]
fn sharded_explain_carries_scatter_timing_cost_and_top_entry() {
    let corpus = {
        let mut c = Corpus::new();
        for i in 0..6 {
            c.push(format!("doc{i}"), format!("<r><a>alpha beta</a><b>gamma doc{i}</b></r>"));
        }
        c
    };
    let split = sharded_state(&corpus, 2);
    let response = get(&split, "/search?q=alpha+gamma&s=1&explain=1");
    assert_eq!(response.status, 200);
    let timing = header(&response, "Server-Timing").expect("sharded responses carry Server-Timing");
    assert!(timing.contains("scatter"), "scatter phase in Server-Timing: {timing}");
    assert!(timing.contains("gather"), "gather phase in Server-Timing: {timing}");
    let summary = header(&response, "x-gks-cost").expect("explain=1 adds the cost summary header");
    let ledger = gks_core::CostLedger::parse_summary_header(summary).expect("parseable summary");
    assert!(ledger.postings_scanned > 0, "work was accounted: {summary}");
    assert!(ledger.result_bytes > 0, "result bytes were accounted: {summary}");
    let body = String::from_utf8(response.body).unwrap();
    assert!(body.contains("\"cost\":{\"postings_scanned\":"), "{body}");
    assert!(body.contains("\"shard_costs\":[{"), "per-shard breakdown present: {body}");
    // Non-explain requests carry no cost header.
    let plain = get(&split, "/search?q=alpha+gamma&s=1");
    assert_eq!(header(&plain, "x-gks-cost"), None);
    // Both engine runs above aggregated into the offender table.
    let top = get(&split, "/debug/top?n=5");
    assert_eq!(top.status, 200);
    let top_body = String::from_utf8(top.body).unwrap();
    assert!(top_body.contains("\"query\":\"alpha gamma\""), "{top_body}");
    assert!(top_body.contains("\"count\":2"), "two engine runs aggregated: {top_body}");
    let filtered = get(&split, "/ix/default/debug/top?n=5");
    assert!(String::from_utf8(filtered.body).unwrap().contains("\"index\":\"default\""));
    let bad = get(&split, "/debug/top?n=wat");
    assert_eq!(bad.status, 400);
}

/// The ISSUE's acceptance bar for the persistent shard executor: once the
/// resident index is warm, a sharded `/search` issues **zero** thread
/// spawns on the request path — scatter is a channel send into per-shard
/// lanes that already exist. `gks_exec` counts every pool thread it ever
/// spawns, so a flat counter across a burst of cache-missing requests
/// proves the fan-out is spawn-free.
#[test]
fn sharded_search_spawns_no_threads_on_the_request_path() {
    let corpus = {
        let mut c = Corpus::new();
        for i in 0..8 {
            c.push(format!("doc{i}"), format!("<r><a>alpha beta</a><b>gamma doc{i}</b></r>"));
        }
        c
    };
    let split = sharded_state(&corpus, 4);
    // Warm-up: the first request may lazily grow executor lanes.
    assert_eq!(get(&split, "/search?q=alpha&s=1").status, 200);
    let spawned_before = gks_exec::threads_spawned_total();
    for i in 0..20 {
        // Distinct queries dodge the result cache, forcing a real scatter.
        let response = get(&split, &format!("/search?q=alpha+gamma+doc{i}&s=1"));
        assert_eq!(response.status, 200);
        assert_eq!(header(&response, "x-gks-shards"), Some("4"));
    }
    assert_eq!(
        gks_exec::threads_spawned_total(),
        spawned_before,
        "warm sharded scatter must not spawn threads per request"
    );
}

/// Builds a 2-shard on-disk index set (plus manifest) for the reload test.
fn persist_shards(dir: &std::path::Path, corpus: &Corpus) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).unwrap();
    let mut manifest = ShardManifest::default();
    let mut base = 0u32;
    for (i, part) in split_corpus(corpus, 2).iter().enumerate() {
        let index = GksIndex::build(part, IndexOptions::default()).unwrap();
        let path = dir.join(format!("shard-{i}.gksix"));
        index.save(&path).unwrap();
        let mut entry = ShardManifest::entry_for(&index, &path, base);
        entry.id = u64::try_from(i).unwrap();
        manifest.shards.push(entry);
        base += u32::try_from(part.len()).unwrap();
    }
    let manifest_path = dir.join("corpus.shards");
    manifest.save(&manifest_path).unwrap();
    manifest_path
}

/// Reloading one shard under concurrent query load never surfaces a 5xx
/// and never merges a mixed-generation answer: every response is
/// byte-identical to the quiescent answer (the corpus on disk never
/// changes, so any deviation would be a torn merge).
#[test]
fn reload_one_shard_under_load_is_invisible() {
    let dir = std::env::temp_dir().join(format!("gks-shard-reload-{}", std::process::id()));
    let corpus = {
        let mut c = Corpus::new();
        for i in 0..6 {
            c.push(format!("doc{i}"), format!("<r><a>alpha beta</a><b>gamma doc{i}</b></r>"));
        }
        c
    };
    let manifest_path = persist_shards(&dir, &corpus);
    let specs = vec![IndexSpec::with_manifest("default", &manifest_path).unwrap()];
    // Cache off so every request exercises the scatter/gather path.
    let config = ServeConfig { cache_bytes: 0, ..ServeConfig::default() };
    let state = Arc::new(ServeState::with_catalog(specs, None, config).unwrap());

    let expected = get(&state, "/search?q=alpha+gamma&s=1").body;
    let stop = Arc::new(AtomicBool::new(false));
    let failures = Arc::new(AtomicU64::new(0));
    let requests = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let failures = Arc::clone(&failures);
            let requests = Arc::clone(&requests);
            let expected = expected.clone();
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let response = get(&state, "/search?q=alpha+gamma&s=1");
                    requests.fetch_add(1, Ordering::Relaxed);
                    if response.status >= 500 || response.body != expected {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // Reload shard 1 repeatedly while the query threads hammer.
        let resident = Arc::clone(state.catalog().default_index());
        for _ in 0..25 {
            resident.reload_shard(1).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // And a few full (shard-at-a-time) reload sweeps.
        for _ in 0..5 {
            resident.reload().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(requests.load(Ordering::Relaxed) > 0, "query threads made progress");
    assert_eq!(failures.load(Ordering::Relaxed), 0, "no 5xx, no torn merges");
    let text = {
        let request = parse_request("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        String::from_utf8(state.handle(&request, Instant::now()).body).unwrap()
    };
    assert_eq!(
        metric_value(&text, "gks_shard_mixed_generation_total"),
        Some(0),
        "a single in-flight retry must always land on the new generation"
    );
    assert_eq!(metric_value(&text, "gks_index_shards{index=\"default\"}"), Some(2));
    assert!(
        metric_value(&text, "gks_index_reloads_total{index=\"default\"}").unwrap() >= 30,
        "reloads were recorded"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The shard-granular reload rejects out-of-range slots, and a manifest
/// spec round-trips through the catalog (doc bases derived from the loaded
/// shards match the manifest's record).
#[test]
fn shard_reload_validation_and_manifest_spec() {
    let dir = std::env::temp_dir().join(format!("gks-shard-spec-{}", std::process::id()));
    let corpus = {
        let mut c = Corpus::new();
        for i in 0..5 {
            c.push(format!("doc{i}"), format!("<r><a>word{i}</a></r>"));
        }
        c
    };
    let manifest_path = persist_shards(&dir, &corpus);
    let specs = vec![IndexSpec::with_manifest("m", &manifest_path).unwrap()];
    let state = ServeState::with_catalog(specs, Some("m"), ServeConfig::default()).unwrap();
    let resident = state.catalog().default_index();
    assert_eq!(resident.shard_count(), 2);
    assert!(resident.is_sharded());
    assert!(resident.reload_shard(7).is_err(), "out-of-range shard slot");
    let set = resident.snapshot_all().expect("no reload racing; snapshot converges");
    let manifest = ShardManifest::load(&manifest_path).unwrap();
    let expected: Vec<gks_core::shard::DocMap> = manifest
        .shards
        .iter()
        .map(|s| gks_core::shard::DocMap::base(s.doc_base))
        .collect();
    assert_eq!(set.doc_maps, expected, "loaded doc maps match the manifest split");
    assert_eq!(set.identity, resident.identity());
    // A shard-granular reload of the same bytes keeps the identity.
    let (before, after) = resident.reload_shard(0).unwrap();
    assert_eq!(before, after, "same bytes on disk, same combined identity");
    std::fs::remove_dir_all(&dir).ok();
}
