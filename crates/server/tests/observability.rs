//! End-to-end round-trip of the observability surface: queries handled by a
//! [`ServeState`] must leave parseable artifacts in every sink — the JSONL
//! query log, the slow-query log (span tree embedded), `/debug/traces`, the
//! `Server-Timing` header, and the per-phase `/metrics` histograms. All
//! parsing goes through `gks_core::json`, the same reader the CI smoke job
//! uses, so "deterministic JSON" is checked by an actual parser rather than
//! by string inspection.
//!
//! Everything here shares the process-global tracer, so the whole flow
//! lives in one test function.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gks_core::engine::Engine;
use gks_core::json::Json;
use gks_index::{Corpus, IndexOptions};
use gks_server::http::{parse_request, HttpResponse};
use gks_server::metrics::metric_value;
use gks_server::{ServeConfig, ServeState};

fn small_engine() -> Arc<Engine> {
    let xml = "<dblp>\
        <article><title>Generic Keyword Search</title>\
            <author>Manoj Agarwal</author><author>Krithi Ramamritham</author>\
            <year>2016</year></article>\
        <article><title>Holistic Twig Joins</title>\
            <author>Nicolas Bruno</author><author>Divesh Srivastava</author>\
            <year>2002</year></article>\
    </dblp>";
    let corpus = Corpus::from_named_strs([("dblp", xml)]).unwrap();
    Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap())
}

fn get(state: &ServeState, target: &str) -> HttpResponse {
    let request = parse_request(&format!("GET {target} HTTP/1.1\r\n\r\n")).unwrap();
    state.handle(&request, Instant::now())
}

fn header<'r>(response: &'r HttpResponse, name: &str) -> Option<&'r str> {
    response.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
}

/// Recursively checks a `/debug/traces` span object: known kind label,
/// numeric timing fields, children well-formed, child durations within the
/// parent's.
fn assert_span_well_formed(span: &Json) {
    let kind = span.get("kind").and_then(Json::as_str).expect("span has kind");
    assert!(gks_trace::SpanKind::from_label(kind).is_some(), "unknown span kind {kind:?}");
    let micros = span.get("micros").and_then(Json::as_u64).expect("span has micros");
    span.get("offset_micros")
        .and_then(Json::as_u64)
        .expect("span has offset_micros");
    let children = span.get("children").and_then(Json::as_array).expect("span has children");
    let mut child_sum = 0u64;
    for child in children {
        assert_span_well_formed(child);
        child_sum += child.get("micros").and_then(Json::as_u64).unwrap_or(0);
    }
    assert!(child_sum <= micros, "children ({child_sum}µs) exceed parent ({micros}µs)");
}

#[test]
fn sinks_round_trip_through_the_json_parser() {
    let dir = std::env::temp_dir().join(format!("gks-observability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let qlog_path = dir.join("query.jsonl");
    let slow_path = dir.join("slow.jsonl");
    let config = ServeConfig {
        query_log: Some(qlog_path.clone()),
        slow_log: Some(slow_path.clone()),
        // Threshold zero: every query is "slow", so the slow log is
        // exercised without needing an actually slow corpus.
        slow_threshold: Duration::from_micros(0),
        ..ServeConfig::default()
    };
    let state = ServeState::new(small_engine(), config).unwrap();

    let search = get(&state, "/search?q=twig+joins&s=2");
    assert_eq!(search.status, 200);
    let timing = header(&search, "Server-Timing").expect("Server-Timing header on /search");
    assert!(timing.contains("request;dur="), "{timing}");
    assert!(timing.contains("search;dur="), "{timing}");
    // A cache hit and a client error must be logged too.
    assert_eq!(header(&get(&state, "/search?q=twig+joins&s=2"), "x-gks-cache"), Some("hit"));
    assert_eq!(get(&state, "/search?q=%22unclosed").status, 400);
    let suggest = get(&state, "/suggest?q=agarwal");
    assert_eq!(suggest.status, 200);

    // Query log: every line parses, carries the required fields, and the
    // specific requests above are all present.
    let qlog_text = std::fs::read_to_string(&qlog_path).unwrap();
    let lines: Vec<Json> = qlog_text
        .lines()
        .map(|line| Json::parse(line).expect("query-log line parses as JSON"))
        .collect();
    assert_eq!(lines.len(), 4, "one line per /search|/suggest request:\n{qlog_text}");
    for v in &lines {
        for field in [
            "ts_ms", "endpoint", "index", "query", "s", "limit", "status", "micros", "cached",
        ] {
            assert!(v.get(field).is_some(), "query-log line missing {field}");
        }
    }
    assert_eq!(lines[0].get("query").and_then(Json::as_str), Some("twig joins"));
    assert_eq!(lines[0].get("cached"), Some(&Json::Bool(false)));
    assert_eq!(lines[1].get("cached"), Some(&Json::Bool(true)));
    assert_eq!(lines[2].get("status").and_then(Json::as_u64), Some(400));
    assert_eq!(lines[3].get("endpoint").and_then(Json::as_str), Some("suggest"));
    // Engine runs carry their cost ledger in the wide event; cache hits and
    // errors did no engine work, so theirs is null.
    let cost = lines[0].get("cost").expect("engine run logs its cost ledger");
    assert!(cost.get("postings_scanned").and_then(Json::as_u64).is_some(), "{cost:?}");
    assert!(cost.get("sweep_advances").and_then(Json::as_u64).is_some(), "{cost:?}");
    assert_eq!(lines[1].get("cost"), Some(&Json::Null), "cache hit carries no ledger");
    assert_eq!(lines[2].get("cost"), Some(&Json::Null), "parse error carries no ledger");
    let di_attrs = lines[3]
        .get("cost")
        .and_then(|c| c.get("di_attrs"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(di_attrs > 0, "suggest runs DI and accounts its attribute scans");

    // Slow log (threshold 0): same lines, each embedding a span tree whose
    // root is the request span.
    let slow_text = std::fs::read_to_string(&slow_path).unwrap();
    assert_eq!(slow_text.lines().count(), 4);
    for line in slow_text.lines() {
        let v = Json::parse(line).expect("slow-log line parses as JSON");
        let trace = v.get("trace").expect("slow-log line embeds trace");
        trace.get("seq").and_then(Json::as_u64).expect("trace has seq");
        let root = trace.get("root").expect("trace has root");
        assert_eq!(root.get("kind").and_then(Json::as_str), Some("request"));
        assert_span_well_formed(root);
    }

    // /debug/traces: deterministic JSON, well-formed spans, n= respected.
    let dump = get(&state, "/debug/traces?n=2");
    assert_eq!(dump.status, 200);
    let v = Json::parse(&String::from_utf8(dump.body).unwrap()).expect("traces dump parses");
    assert_eq!(v.get("enabled"), Some(&Json::Bool(true)));
    let traces = v.get("traces").and_then(Json::as_array).expect("traces array");
    assert!(traces.len() <= 2, "n=2 limits the dump");
    assert!(!traces.is_empty(), "queries above must have left traces");
    for t in traces {
        assert_span_well_formed(t.get("root").expect("trace root"));
    }
    assert_eq!(get(&state, "/debug/traces?n=wat").status, 400);

    // /metrics: per-phase percentiles exist and the postings phase has
    // recorded samples from the searches above.
    let metrics = get(&state, "/metrics");
    let text = String::from_utf8(metrics.body).unwrap();
    for phase in ["parse", "postings", "sweep", "rank", "di"] {
        let count =
            metric_value(&text, &format!("gks_phase_latency_micros_count{{phase=\"{phase}\"}}"))
                .expect("per-phase count line");
        let samples = metric_value(&text, &format!("gks_phase_samples_total{{phase=\"{phase}\"}}"))
            .expect("per-phase samples counter");
        assert_eq!(samples, count, "samples counter mirrors the histogram count");
        // Quantile lines exist exactly when the phase has samples — the
        // zero-sample `-1` sentinel was retired for this family.
        let p50 = metric_value(
            &text,
            &format!("gks_phase_latency_micros{{phase=\"{phase}\",quantile=\"0.5\"}}"),
        );
        if count > 0 {
            assert!(p50.is_some_and(|v| v >= 0), "phase {phase} has samples but no p50");
        } else {
            assert!(p50.is_none(), "phase {phase} has no samples, p50 must be omitted");
        }
    }
    let postings =
        metric_value(&text, "gks_phase_latency_micros_count{phase=\"postings\"}").unwrap();
    assert!(postings >= 2, "both engine searches recorded postings spans, got {postings}");
    assert!(metric_value(&text, "gks_slow_queries_total").unwrap() >= 4);

    let _ = std::fs::remove_dir_all(&dir);
}
