//! Structured query logging: one JSON object per line (JSONL).
//!
//! Two sinks share the same record shape:
//!
//! * the **query log** (`--query-log`) gets every `/search` and `/suggest`
//!   request — outcome, latency, cache disposition;
//! * the **slow-query log** (`--slow-log`) gets only requests slower than
//!   the configured threshold, and each record additionally embeds the full
//!   span tree from `gks-trace`, so a slow query arrives with its own
//!   per-phase breakdown attached.
//!
//! Lines are written under a mutex with a single `write_all` per record, so
//! concurrent workers never interleave partial lines. Append errors are
//! dropped deliberately: losing a log line must never fail a query.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use gks_core::wire::push_json_str;
use gks_core::CostLedger;
use gks_trace::{CompletedTrace, SpanKind};

/// An append-only JSONL sink shared by worker threads.
#[derive(Debug)]
pub struct LogFile {
    file: Mutex<File>,
}

impl LogFile {
    /// Opens (creating or appending to) the log at `path`.
    pub fn open(path: &Path) -> std::io::Result<LogFile> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(LogFile { file: Mutex::new(file) })
    }

    /// Appends one record as a single line. Errors are swallowed — logging
    /// is best-effort and must never fail the request being logged.
    pub fn append(&self, record: &str) {
        let mut line = String::with_capacity(record.len() + 1);
        line.push_str(record);
        line.push('\n');
        let mut file = gks_trace::lockorder::track(
            "server/qlog.file",
            self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        let _ = file.write_all(line.as_bytes());
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn unix_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Everything logged about one `/search` or `/suggest` request.
#[derive(Debug)]
pub struct QueryRecord {
    /// `"search"` or `"suggest"`.
    pub endpoint: &'static str,
    /// Route key of the catalog index that served the request.
    pub index: String,
    /// The raw `q` parameter (empty when missing).
    pub query: String,
    /// The raw `s` spelling (`all`, `half`, or an integer).
    pub s: String,
    /// The effective result limit.
    pub limit: usize,
    /// HTTP status of the response.
    pub status: u16,
    /// End-to-end handler latency (µs).
    pub micros: u64,
    /// Whether the response came from the result cache.
    pub cached: bool,
    /// Hits returned (engine runs only; `None` for cache hits and errors).
    pub hits: Option<usize>,
    /// |SL| of the search (engine runs only).
    pub sl_len: Option<usize>,
    /// The request's cost ledger (engine runs only; `None` for cache hits
    /// and errors) — the work half of the canonical wide event.
    pub cost: Option<CostLedger>,
}

impl QueryRecord {
    /// A record for `endpoint` with everything else at its zero value.
    pub fn new(endpoint: &'static str) -> QueryRecord {
        QueryRecord {
            endpoint,
            index: String::new(),
            query: String::new(),
            s: String::new(),
            limit: 0,
            status: 0,
            micros: 0,
            cached: false,
            hits: None,
            sl_len: None,
            cost: None,
        }
    }

    /// Renders the JSONL line, stamping the wall-clock time. When `trace` is
    /// given (the slow-log path) the full span tree is embedded under
    /// `"trace"`.
    pub fn to_json(&self, trace: Option<&CompletedTrace>) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"ts_ms\":{},\"endpoint\":\"{}\",\"index\":",
            unix_millis(),
            self.endpoint
        );
        push_json_str(&mut out, &self.index);
        out.push_str(",\"query\":");
        push_json_str(&mut out, &self.query);
        out.push_str(",\"s\":");
        push_json_str(&mut out, &self.s);
        let _ = write!(
            out,
            ",\"limit\":{},\"status\":{},\"micros\":{},\"cached\":{}",
            self.limit, self.status, self.micros, self.cached
        );
        match self.hits {
            Some(h) => {
                let _ = write!(out, ",\"hits\":{h}");
            }
            None => out.push_str(",\"hits\":null"),
        }
        match self.sl_len {
            Some(n) => {
                let _ = write!(out, ",\"sl_len\":{n}");
            }
            None => out.push_str(",\"sl_len\":null"),
        }
        match &self.cost {
            Some(cost) => {
                out.push_str(",\"cost\":");
                cost.write_json(&mut out);
            }
            None => out.push_str(",\"cost\":null"),
        }
        if let Some(trace) = trace {
            out.push_str(",\"trace\":");
            trace.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

/// Builds the `Server-Timing` header value from a completed trace: one
/// `<phase>;dur=<ms>` entry per span kind present, in [`SpanKind::ALL`]
/// order (the root `request` span included as the total).
pub fn server_timing(trace: &CompletedTrace) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (kind, micros) in trace.phase_micros() {
        if !out.is_empty() {
            out.push_str(", ");
        }
        let _ = write!(out, "{};dur={:.3}", kind.label(), micros as f64 / 1000.0);
    }
    if out.is_empty() {
        // A trace always has at least its root span; keep the header valid
        // regardless.
        let _ = write!(out, "{};dur={:.3}", SpanKind::Request.label(), 0.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_core::json::Json;
    use gks_trace::SpanNode;

    fn sample_trace() -> CompletedTrace {
        CompletedTrace {
            seq: 3,
            root: SpanNode {
                kind: SpanKind::Request,
                label: None,
                offset_micros: 0,
                micros: 1500,
                counters: Vec::new(),
                children: vec![SpanNode {
                    kind: SpanKind::Search,
                    label: None,
                    offset_micros: 10,
                    micros: 1200,
                    counters: Vec::new(),
                    children: Vec::new(),
                }],
            },
        }
    }

    #[test]
    fn record_round_trips_through_parser() {
        let mut record = QueryRecord::new("search");
        record.index = "dblp".to_string();
        record.query = "twig \"joins\"\nweird".to_string();
        record.s = "half".to_string();
        record.limit = 20;
        record.status = 200;
        record.micros = 777;
        record.hits = Some(3);
        record.sl_len = Some(41);
        record.cost = Some(CostLedger {
            postings_scanned: 9,
            heap_ops: 18,
            per_keyword: vec![4, 5],
            ..CostLedger::default()
        });
        let line = record.to_json(None);
        let v = Json::parse(&line).expect("qlog line parses");
        for field in [
            "ts_ms", "endpoint", "index", "query", "s", "limit", "status", "micros", "cached",
            "cost",
        ] {
            assert!(v.get(field).is_some(), "missing {field} in {line}");
        }
        let cost = v.get("cost").expect("cost object");
        assert_eq!(cost.get("postings_scanned").and_then(Json::as_u64), Some(9));
        assert_eq!(cost.get("heap_ops").and_then(Json::as_u64), Some(18));
        assert_eq!(v.get("index").and_then(Json::as_str), Some("dblp"));
        assert_eq!(v.get("query").and_then(Json::as_str), Some("twig \"joins\"\nweird"));
        assert_eq!(v.get("status").and_then(Json::as_u64), Some(200));
        assert_eq!(v.get("hits").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("cached"), Some(&Json::Bool(false)));
    }

    #[test]
    fn slow_record_embeds_span_tree() {
        let mut record = QueryRecord::new("search");
        record.status = 200;
        record.micros = 1500;
        let line = record.to_json(Some(&sample_trace()));
        let v = Json::parse(&line).expect("slow-log line parses");
        let trace = v.get("trace").expect("embedded trace");
        assert_eq!(trace.get("seq").and_then(Json::as_u64), Some(3));
        let root = trace.get("root").expect("root span");
        assert_eq!(root.get("kind").and_then(Json::as_str), Some("request"));
        let children = root.get("children").and_then(Json::as_array).unwrap();
        assert_eq!(children[0].get("kind").and_then(Json::as_str), Some("search"));
    }

    #[test]
    fn server_timing_lists_phases() {
        let header = server_timing(&sample_trace());
        assert_eq!(header, "request;dur=1.500, search;dur=1.200");
    }

    #[test]
    fn log_file_appends_lines() {
        let dir = std::env::temp_dir().join(format!("gks-qlog-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.jsonl");
        let log = LogFile::open(&path).unwrap();
        log.append("{\"a\":1}");
        log.append("{\"a\":2}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"a\":2}\n");
        for line in text.lines() {
            Json::parse(line).expect("every appended line is one JSON doc");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
