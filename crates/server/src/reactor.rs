//! The event-driven connection layer: one reactor thread owns **every**
//! client socket and multiplexes them with [`poller`] readiness (poll(2)
//! on Unix), so a slow or idle connection costs a poll-set entry instead
//! of a parked worker thread. Workers receive only **fully-read**
//! requests ([`WorkItem`]) through the bounded admission queue; after
//! answering they either close the socket, hand it back idle for the
//! next keep-alive request, or hand back a partially-flushed response
//! for the reactor to finish ([`Retired`]). Slowloris-style readers and
//! slow-to-drain writers therefore cannot exhaust the worker pool.
//!
//! Invariants the reactor maintains:
//!
//! * Admission control is unchanged: a fully-read request that does not
//!   fit the bounded queue is answered `503 + Retry-After` immediately,
//!   counted in `rejected_total`, without touching a worker.
//! * The per-request deadline anchors at the **first byte** of the
//!   request (previously: at accept). A request that cannot finish
//!   arriving within the deadline is evicted with `408`; a connection
//!   idle past `idle_timeout` between requests is closed silently.
//! * Graceful drain: on stop the reactor stops polling the listener,
//!   closes idle and mid-read connections (no request was accepted on
//!   them), finishes every in-progress response flush, and exits only
//!   once every dispatched request has been answered — zero 5xx from
//!   the drain itself.
//!
//! The reactor is the only thread allowed to block in `poll`; everything
//! it does to a socket is a nonblocking single shot. Workers wake it
//! through a loopback self-pipe ([`ReactorShared::wake`]) when they
//! retire a socket or finish the last pending request of a drain.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use gks_trace::lockorder::{self, Tracked};

use crate::conn::{self, ConnState, ReadOutcome, Retired, RetiredKind, WorkItem, WriteOutcome};
use crate::http::{self, HttpResponse};
use crate::poller::{self, Slot, Source};
use crate::pool::BoundedQueue;
use crate::ServeState;

/// Poll tick: bounds deadline-sweep latency and the portable fallback's
/// nap. Readiness and wakes interrupt it early on Unix.
const POLL_MS: i32 = 25;

/// State shared between the reactor and the workers: the hand-back list
/// of retired sockets, the count of dispatched-but-unanswered requests
/// (the drain barrier), and the write end of the reactor's wake pipe.
#[derive(Debug)]
pub(crate) struct ReactorShared {
    retired: Mutex<Vec<Retired>>,
    /// Requests handed to the worker queue whose final socket disposition
    /// (retire or drop) has not happened yet. Incremented by the reactor
    /// *before* enqueueing, decremented by the worker *after* retiring —
    /// so `pending == 0` implies every retired socket is already visible.
    pub(crate) pending: AtomicUsize,
    wake_tx: TcpStream,
}

/// Poison-tolerant, lock-order-tracked access to the retired list.
fn lock_retired(m: &Mutex<Vec<Retired>>) -> Tracked<MutexGuard<'_, Vec<Retired>>> {
    lockorder::track("server/reactor.retired", m.lock().unwrap_or_else(PoisonError::into_inner))
}

impl ReactorShared {
    pub(crate) fn new(wake_tx: TcpStream) -> ReactorShared {
        ReactorShared { retired: Mutex::new(Vec::new()), pending: AtomicUsize::new(0), wake_tx }
    }

    /// Nudges the reactor out of `poll` — one byte down the self-pipe.
    /// Best-effort: if the pipe is full the reactor is already waking.
    pub(crate) fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }

    /// Hands a socket back to the reactor and wakes it.
    pub(crate) fn retire(&self, retired: Retired) {
        lock_retired(&self.retired).push(retired);
        self.wake();
    }

    fn drain_retired(&self) -> Vec<Retired> {
        std::mem::take(&mut *lock_retired(&self.retired))
    }
}

/// A reactor-owned connection.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// When the connection entered its current state — the idle-timeout
    /// and flush-stall anchor (`ConnState::Reading::started` anchors the
    /// request deadline).
    since: Instant,
    /// Requests already answered on this connection.
    requests_served: u64,
}

/// What one readiness pass decided to do with a connection. Produced
/// inside the borrow of [`ConnState`], acted on outside it, so socket
/// ownership can move into a [`WorkItem`].
enum Step {
    Keep,
    Close,
    Dispatch {
        request: http::Request,
        residual: Vec<u8>,
        started: Instant,
    },
    Respond {
        response: HttpResponse,
        started: Option<Instant>,
        count_served: bool,
    },
    NextRequest {
        residual: Vec<u8>,
    },
}

/// The reactor thread's whole world; constructed by `serve_catalog`,
/// consumed by [`Reactor::run`].
#[derive(Debug)]
pub(crate) struct Reactor {
    pub listener: TcpListener,
    pub wake_rx: TcpStream,
    pub shared: Arc<ReactorShared>,
    pub queue: Arc<BoundedQueue<WorkItem>>,
    pub stop: Arc<AtomicBool>,
    pub state: Arc<ServeState>,
}

impl Reactor {
    pub(crate) fn run(self) {
        let Reactor { listener, wake_rx, shared, queue, stop, state } = self;
        let mut r = Loop { listener, wake_rx, shared, queue, stop, state, conns: Vec::new() };
        r.run();
    }
}

struct Loop {
    listener: TcpListener,
    wake_rx: TcpStream,
    shared: Arc<ReactorShared>,
    queue: Arc<BoundedQueue<WorkItem>>,
    stop: Arc<AtomicBool>,
    state: Arc<ServeState>,
    conns: Vec<Conn>,
}

impl Loop {
    fn run(&mut self) {
        loop {
            let stopping = self.stop.load(Ordering::SeqCst);
            // Read `pending` *before* draining the hand-back list: workers
            // decrement after pushing, so pending == 0 here means every
            // retired socket is in the drain we are about to take.
            let pending = self.shared.pending.load(Ordering::SeqCst);
            let retired = self.shared.drain_retired();
            let quiet = retired.is_empty();
            let now = Instant::now();
            for entry in retired {
                self.adopt(entry, stopping, now);
            }
            if stopping {
                // No request was accepted on an idle or mid-read
                // connection; closing them is the drain contract.
                self.conns.retain(|c| matches!(c.state, ConnState::Writing { .. }));
                if pending == 0 && quiet && self.conns.is_empty() {
                    break;
                }
            }
            self.publish_gauges();

            let accept_open = !stopping && self.conns.len() < self.state.config().max_connections;
            let mut slots = Vec::with_capacity(self.conns.len() + 2);
            if accept_open {
                slots.push(Slot { token: 0, src: Source::Listener(&self.listener), write: false });
            }
            slots.push(Slot { token: 1, src: Source::Stream(&self.wake_rx), write: false });
            for (i, c) in self.conns.iter().enumerate() {
                slots.push(Slot {
                    token: 2 + i,
                    src: Source::Stream(&c.stream),
                    write: matches!(c.state, ConnState::Writing { .. }),
                });
            }
            let mut ready = poller::wait(&slots, POLL_MS);
            drop(slots);
            let now = Instant::now();
            // Descending token order keeps swap_remove indices valid: a
            // removed slot is only ever backfilled from a higher index.
            ready.sort_unstable_by(|a, b| b.cmp(a));
            for token in ready {
                match token {
                    0 => self.accept_burst(now),
                    1 => self.drain_wake(),
                    t => {
                        let i = t - 2;
                        if i < self.conns.len() {
                            let c = self.conns.swap_remove(i);
                            if let Some(c) = self.drive(c, now) {
                                self.conns.push(c);
                            }
                        }
                    }
                }
            }
            self.sweep_deadlines(now);
        }
        self.publish_gauges();
    }

    /// Re-adopts a worker-retired socket: idle keep-alive connections go
    /// back to reading (the residual may already hold a pipelined
    /// request), partial flushes go back to writing. Driven immediately —
    /// the socket may be ready right now and must not wait a poll tick.
    fn adopt(&mut self, entry: Retired, stopping: bool, now: Instant) {
        let Retired { stream, kind, requests_served } = entry;
        let conn = match kind {
            RetiredKind::Idle { residual } => {
                if stopping {
                    return; // drain: close idle connections, no request is lost
                }
                Conn {
                    stream,
                    state: ConnState::Reading { buf: residual, started: None },
                    since: now,
                    requests_served,
                }
            }
            RetiredKind::Flush { buf, written, keep_alive, residual } => Conn {
                stream,
                state: ConnState::Writing {
                    buf,
                    written,
                    keep_alive: keep_alive && !stopping,
                    residual,
                    // The worker recorded status and latency but deferred
                    // the served count to flush completion.
                    count_served: true,
                },
                since: now,
                requests_served,
            },
        };
        if let Some(conn) = self.drive(conn, now) {
            self.conns.push(conn);
        }
    }

    fn accept_burst(&mut self, now: Instant) {
        let max = self.state.config().max_connections;
        while self.conns.len() < max {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.state.accepted.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let conn = Conn {
                        stream,
                        state: ConnState::Reading { buf: Vec::new(), started: None },
                        since: now,
                        requests_served: 0,
                    };
                    // On loopback the request bytes usually arrive with the
                    // connection itself; driving now dispatches in this poll
                    // round instead of waiting out another.
                    if let Some(conn) = self.drive(conn, now) {
                        self.conns.push(conn);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Advances one connection as far as it will go without blocking.
    /// Returns the connection to keep polling, or `None` when its socket
    /// moved to a worker or closed.
    fn drive(&mut self, mut conn: Conn, now: Instant) -> Option<Conn> {
        loop {
            let step = match &mut conn.state {
                ConnState::Reading { buf, started } => {
                    match conn::drive_read(&mut conn.stream, buf) {
                        ReadOutcome::NeedMore => {
                            if !buf.is_empty() && started.is_none() {
                                // First bytes of a request: start the clock.
                                *started = Some(now);
                            }
                            Step::Keep
                        }
                        ReadOutcome::Complete { request, residual } => {
                            Step::Dispatch { request, residual, started: started.unwrap_or(now) }
                        }
                        ReadOutcome::TooLarge => Step::Respond {
                            response: HttpResponse::error(400, "request too large"),
                            started: *started,
                            count_served: true,
                        },
                        ReadOutcome::Malformed(m) => Step::Respond {
                            response: HttpResponse::error(
                                400,
                                &format!("{}", http::HttpError::Malformed(m)),
                            ),
                            started: *started,
                            count_served: true,
                        },
                        ReadOutcome::Closed => Step::Close,
                    }
                }
                ConnState::Writing { buf, written, keep_alive, residual, count_served } => {
                    match conn::write_some(&mut conn.stream, buf, written) {
                        WriteOutcome::Done => {
                            if *count_served {
                                self.state.served.fetch_add(1, Ordering::Relaxed);
                            }
                            if *keep_alive {
                                Step::NextRequest { residual: std::mem::take(residual) }
                            } else {
                                Step::Close
                            }
                        }
                        WriteOutcome::Blocked => Step::Keep,
                        WriteOutcome::Closed => Step::Close,
                    }
                }
            };
            match step {
                Step::Keep => return Some(conn),
                Step::Close => return None,
                Step::NextRequest { residual } => {
                    conn.state = ConnState::Reading { buf: residual, started: None };
                    conn.since = now;
                    // The residual may already frame a pipelined request.
                }
                Step::Dispatch { request, residual, started } => {
                    let metrics = self.state.metrics();
                    let waited =
                        u64::try_from(now.duration_since(started).as_micros()).unwrap_or(u64::MAX);
                    metrics.conn_accept_to_dispatch_micros.record(waited);
                    if conn.requests_served > 0 {
                        metrics.conn_keepalive_requests_total.fetch_add(1, Ordering::Relaxed);
                    }
                    // pending++ strictly before the push: a worker may
                    // answer and decrement before try_push even returns.
                    self.shared.pending.fetch_add(1, Ordering::SeqCst);
                    let item = WorkItem {
                        stream: conn.stream,
                        request,
                        accepted_at: started,
                        residual,
                        requests_served: conn.requests_served,
                    };
                    match self.queue.try_push(item) {
                        Ok(()) => return None, // the worker owns the socket now
                        Err(_) if self.stop.load(Ordering::SeqCst) => {
                            // The queue was shut down mid-round (stop is set
                            // strictly before queue.shutdown()): this is the
                            // drain, not overload. Close instead of 503 —
                            // same outcome as a still-mid-read connection.
                            self.shared.pending.fetch_sub(1, Ordering::SeqCst);
                            return None;
                        }
                        Err(item) => {
                            // Admission reject: answer 503 without touching
                            // a worker (same contract as the old accept
                            // loop — rejected_total only, no status/latency
                            // accounting, not counted as served).
                            self.shared.pending.fetch_sub(1, Ordering::SeqCst);
                            metrics.rejected_total.fetch_add(1, Ordering::Relaxed);
                            let buf = HttpResponse::error(503, "server overloaded, retry shortly")
                                .with_header("Retry-After", "1".to_string())
                                .serialize(false);
                            conn = Conn {
                                stream: item.stream,
                                state: ConnState::Writing {
                                    buf,
                                    written: 0,
                                    keep_alive: false,
                                    residual: Vec::new(),
                                    count_served: false,
                                },
                                since: now,
                                requests_served: conn.requests_served,
                            };
                        }
                    }
                }
                Step::Respond { response, started, count_served } => {
                    // Reactor-built error responses mirror the worker path:
                    // status + latency recorded, `x-gks-micros` attached.
                    let micros = started
                        .map(|t| {
                            u64::try_from(now.duration_since(t).as_micros()).unwrap_or(u64::MAX)
                        })
                        .unwrap_or(0);
                    let metrics = self.state.metrics();
                    metrics.record_status(response.status);
                    metrics.latency.record(micros);
                    let buf =
                        response.with_header("x-gks-micros", micros.to_string()).serialize(false);
                    conn.state = ConnState::Writing {
                        buf,
                        written: 0,
                        keep_alive: false,
                        residual: Vec::new(),
                        count_served,
                    };
                    conn.since = now;
                }
            }
        }
    }

    /// Applies the request deadline to mid-read connections (`408` and
    /// evict), the idle timeout to between-request connections (silent
    /// close), and a flush-stall bound to writers.
    fn sweep_deadlines(&mut self, now: Instant) {
        let deadline = self.state.config().deadline;
        let idle_timeout = self.state.config().idle_timeout;
        let mut evicted = 0u64;
        let mut timed_out = Vec::new();
        let mut i = 0;
        while i < self.conns.len() {
            let keep = match &self.conns[i].state {
                ConnState::Reading { started: Some(t), .. } => now.duration_since(*t) < deadline,
                ConnState::Reading { started: None, .. } => {
                    now.duration_since(self.conns[i].since) < idle_timeout
                }
                ConnState::Writing { .. } => now.duration_since(self.conns[i].since) < deadline,
            };
            if keep {
                i += 1;
                continue;
            }
            evicted += 1;
            let conn = self.conns.swap_remove(i);
            if let ConnState::Reading { started: Some(started), .. } = conn.state {
                // A request that started arriving but never completed:
                // tell the client its time is up before closing.
                timed_out.push((conn, started));
            }
            // Idle and flush-stalled connections just close.
        }
        if evicted > 0 {
            self.state.metrics().conn_evictions_total.fetch_add(evicted, Ordering::Relaxed);
        }
        for (mut conn, started) in timed_out {
            let response = HttpResponse::error(408, "request deadline exceeded while reading");
            let micros = u64::try_from(now.duration_since(started).as_micros()).unwrap_or(u64::MAX);
            let metrics = self.state.metrics();
            metrics.record_status(response.status);
            metrics.latency.record(micros);
            let buf = response.with_header("x-gks-micros", micros.to_string()).serialize(false);
            conn.state = ConnState::Writing {
                buf,
                written: 0,
                keep_alive: false,
                residual: Vec::new(),
                count_served: true,
            };
            conn.since = now;
            if let Some(conn) = self.drive(conn, now) {
                self.conns.push(conn);
            }
        }
    }

    fn publish_gauges(&self) {
        let metrics = self.state.metrics();
        metrics.conn_open.store(self.conns.len() as u64, Ordering::Relaxed);
        let parked = self
            .conns
            .iter()
            .filter(|c| match &c.state {
                ConnState::Reading { started, .. } => started.is_some(),
                ConnState::Writing { .. } => true,
            })
            .count();
        metrics.conn_parked.store(parked as u64, Ordering::Relaxed);
        metrics.conn_queue_depth.store(self.queue.len() as u64, Ordering::Relaxed);
    }
}
