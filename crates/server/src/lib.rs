//! # gks-serve — a resident, concurrent query service over a GKS index
//!
//! The paper's headline claim is *interactive* keyword search: sub-second
//! queries and a DI-driven refinement loop in which a user issues several
//! related queries against the same corpus. That only makes sense with a
//! long-lived index whose per-query setup cost is amortized away — so this
//! crate keeps a **catalog** of resident [`Engine`]s ([`catalog`]) and
//! serves them over HTTP/1.1, std-only (the workspace vendors its
//! dependencies; the listener is a hand-rolled subset on `std::net`).
//! `/ix/<name>/search` addresses a specific index; bare `/search` goes to
//! the catalog's default. Each index can be hot-swap reloaded
//! (`POST /admin/reload?index=<name>`, or SIGHUP for the default) without
//! dropping in-flight requests.
//!
//! Architecture, front to back:
//!
//! * **reactor** — one event-driven thread owns every client socket
//!   (nonblocking, multiplexed with poll(2) on Unix) and does all the
//!   accepting, request reading, and keep-alive parking. Slow readers and
//!   writers cost a poll-set entry, not a thread. Only **fully-read**
//!   requests cross the *admission control* boundary: a **bounded** queue
//!   ([`pool::BoundedQueue`]); when it is full the request is answered
//!   `503 + Retry-After` immediately instead of queueing unboundedly.
//! * **worker pool** — a fixed number of threads pop parsed requests,
//!   route them ([`ServeState::handle`]), and write the response,
//!   handing the socket back to the reactor if the write would block or
//!   the connection is keep-alive. Each request carries a **deadline**
//!   from its first byte; work still pending past the deadline
//!   (including time spent queued) is aborted with `503` and counted.
//! * **shard executor** — sharded indexes scatter each query over a
//!   persistent per-shard worker pool ([`gks_core::ShardExecutor`]); the
//!   fan-out is a channel send, never a thread spawn on the request path.
//! * **result cache** — one sharded LRU per index ([`cache::ResultCache`])
//!   keyed on the normalized `(endpoint, query, s, limit)` tuple, storing
//!   the exact response bytes; the deterministic wire format
//!   (`gks_core::wire`) makes a hit byte-identical to recomputation. Every
//!   entry is tagged with the index identity ([`index_identity`]) it was
//!   computed against, so a hot-swap can never serve stale bytes.
//! * **metrics** — lock-free counters and a latency histogram
//!   ([`metrics::Metrics`]) exposed at `GET /metrics`.
//! * **graceful shutdown** — [`Server::shutdown`] stops accepting, drains
//!   queued and in-flight requests, joins every thread, and reports totals;
//!   the CLI wires SIGTERM/ctrl-c ([`signal`]) to it so `kill` never drops
//!   accepted work.
//!
//! * **observability** — every query runs under a `gks-trace` root span
//!   ([`qlog`]): per-phase percentiles join `/metrics`, the completed-trace
//!   ring is dumped by `GET /debug/traces?n=`, `/search` responses carry a
//!   `Server-Timing` header, and the server can write a JSONL query log plus
//!   a threshold-gated slow-query log embedding the full span tree.
//!
//! * **live updates** — an index registered from a shard manifest follows
//!   the incremental update path (`gks_index::delta`): an optional watcher
//!   thread polls the corpus directory and commits delta shards for
//!   whatever changed, and a background compactor folds the delta backlog
//!   into base shards once it crosses `--compact-threshold` (or on demand
//!   via `POST /admin/compact`). Both publish through the same hot-swap
//!   protocol, so a mutation becomes visible to `/search` without a
//!   restart and without a dropped request; `gks_index_freshness_seconds`
//!   tracks the corpus-to-serving lag.
//!
//! * **cost accounting** — every engine run carries a
//!   [`gks_core::CostLedger`] of the work it did (postings scanned, heap
//!   ops, sweep advances, …). `?explain=1` splices the per-phase /
//!   per-shard breakdown into the response body and adds an `x-gks-cost`
//!   summary header; `/metrics` exposes `gks_cost_*` totals and
//!   work-per-query histograms per index; the query log gains a `cost`
//!   field; and `GET /debug/top?n=` serves a rolling top-K
//!   most-expensive-query table ([`topk`]).
//!
//! Endpoints: `GET /search`, `GET /suggest`, `GET /doctor`, `GET /healthz`,
//! `GET /metrics`, `GET /debug/traces`, `GET /debug/top`,
//! `POST /admin/reload`, `POST /admin/compact` — each of the first three
//! also under an `/ix/<name>/` prefix. See [`ServeState::handle`] for
//! parameters.

pub mod cache;
pub mod catalog;
pub mod client;
pub mod error;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod pool;
pub mod qlog;
pub mod signal;
pub mod topk;

mod conn;
mod poller;
mod reactor;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gks_core::di::DiOptions;
use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::{SearchOptions, Threshold};
use gks_core::shard::DocMap;
use gks_core::wire;
use gks_index::delta::wall_clock_ms;
use gks_index::GksIndex;
use gks_trace::SpanKind;

use crate::cache::ResultCache;
use crate::catalog::{EngineCatalog, IndexSpec, Loaded, ResidentIndex, ShardSet};
use crate::error::ServeError;
use crate::http::{HttpResponse, Request};
use crate::metrics::{Endpoint, Metrics};
use crate::pool::BoundedQueue;

/// Server tuning knobs. `Default` matches the CLI's defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7070` (port 0 picks an ephemeral
    /// port — used by tests).
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded queue depth between the reactor and the workers; the
    /// admission-control limit.
    pub queue_depth: usize,
    /// Per-request deadline measured from the request's first byte
    /// (read and queueing time included).
    pub deadline: Duration,
    /// Upper bound on concurrently open client connections; at the cap the
    /// reactor stops polling the listener (new connects wait in the
    /// kernel backlog) until a slot frees.
    pub max_connections: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the reactor closes it.
    pub idle_timeout: Duration,
    /// Threads per shard lane of the persistent scatter executor backing
    /// sharded indexes (0 = match `workers`, preserving the peak shard
    /// concurrency of the old spawn-per-request scatter).
    pub shard_workers: usize,
    /// Result-cache capacity in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Result-cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Enable TinyLFU frequency-sketch cache admission: under eviction
    /// pressure a response is cached only if its key has been requested at
    /// least as often as the entry it would displace.
    pub cache_admission: bool,
    /// `limit` applied to `/search` when the request does not pass one.
    pub default_limit: usize,
    /// Upper bound on the `limit` a request may ask for.
    pub max_limit: usize,
    /// Enable `gks-trace` span recording (per-phase metrics, the
    /// `/debug/traces` ring, `Server-Timing` headers, slow-log span trees).
    pub trace: bool,
    /// Capacity of the completed-trace ring buffer.
    pub trace_ring: usize,
    /// Trace head-sampling rate: keep 1-in-N root spans (1 = keep all).
    /// Sampled-out requests still count in `gks_trace_spans_total`, but skip
    /// the histogram/ring/slow-log-tree writes.
    pub trace_sample: u64,
    /// JSONL query log path (`None` disables it).
    pub query_log: Option<PathBuf>,
    /// JSONL slow-query log path (`None` disables it).
    pub slow_log: Option<PathBuf>,
    /// Queries at least this slow count as slow (logged with their span
    /// tree when `slow_log` is set).
    pub slow_threshold: Duration,
    /// Watcher poll interval for manifest-backed indexes: every interval
    /// the corpus directory is scanned and changes are committed as a
    /// delta shard, then hot-swapped in. `None` disables watching.
    pub watch_interval: Option<Duration>,
    /// Background-compaction trigger: once a manifest-backed index serves
    /// at least this many delta shards, the maintenance thread folds them
    /// into the base shards. `None` leaves compaction manual
    /// (`POST /admin/compact` or `gks compact`).
    pub compact_threshold: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7070".to_string(),
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_millis(2_000),
            max_connections: 8_192,
            idle_timeout: Duration::from_secs(30),
            shard_workers: 0,
            cache_bytes: 32 * 1024 * 1024,
            cache_shards: 8,
            cache_admission: false,
            default_limit: 20,
            max_limit: 1_000,
            trace: true,
            trace_ring: gks_trace::DEFAULT_RING_CAPACITY,
            trace_sample: 1,
            query_log: None,
            slow_log: None,
            slow_threshold: Duration::from_millis(500),
            watch_interval: None,
            compact_threshold: None,
        }
    }
}

/// A stable fingerprint of an index's identity, used to invalidate the
/// result cache when the resident index changes. FNV-1a over the document
/// names and the structural counts — two indexes over different corpora (or
/// rebuilt over changed data) collide only if every one of these agrees.
pub fn index_identity(index: &GksIndex) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for name in index.doc_names() {
        mix(name.as_bytes());
    }
    let stats = index.stats();
    for v in [
        stats.doc_count,
        stats.total_nodes,
        stats.distinct_terms,
        stats.total_postings,
        stats.raw_bytes,
    ] {
        mix(&v.to_le_bytes());
    }
    h
}

/// Shared per-server state: the engine catalog, metrics, config. Routing
/// lives here ([`ServeState::handle`]) so tests and the property suite can
/// drive the service without sockets.
#[derive(Debug)]
pub struct ServeState {
    catalog: EngineCatalog,
    metrics: Metrics,
    config: ServeConfig,
    pub(crate) accepted: AtomicU64,
    pub(crate) served: AtomicU64,
    query_log: Option<qlog::LogFile>,
    slow_log: Option<qlog::LogFile>,
}

impl ServeState {
    /// Builds single-index state for `engine` under `config` — the
    /// historical entry point, now a catalog of one index named
    /// [`catalog::DEFAULT_INDEX_NAME`].
    pub fn new(engine: Arc<Engine>, config: ServeConfig) -> Result<ServeState, ServeError> {
        let specs = vec![IndexSpec::with_engine(catalog::DEFAULT_INDEX_NAME, engine)];
        ServeState::with_catalog(specs, None, config)
    }

    /// Builds the state for a whole catalog of indexes, opening the query
    /// and slow-query logs if configured. `default` names the index bare
    /// `/search` addresses (`None` → the first spec). Tracing is enabled
    /// process-wide when `config.trace` is set (it is never force-disabled
    /// here — another in-process consumer, e.g. a test harness, may also
    /// depend on it).
    pub fn with_catalog(
        specs: Vec<IndexSpec>,
        default: Option<&str>,
        config: ServeConfig,
    ) -> Result<ServeState, ServeError> {
        let catalog = EngineCatalog::build(specs, default, &config)?;
        let query_log = config.query_log.as_deref().map(qlog::LogFile::open).transpose()?;
        let slow_log = config.slow_log.as_deref().map(qlog::LogFile::open).transpose()?;
        if config.trace {
            gks_trace::set_ring_capacity(config.trace_ring);
            gks_trace::set_enabled(true);
            gks_trace::set_sample_every(config.trace_sample);
        }
        Ok(ServeState {
            catalog,
            metrics: Metrics::default(),
            config,
            accepted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            query_log,
            slow_log,
        })
    }

    /// The service counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The default index's result cache (single-index compatibility view).
    pub fn cache(&self) -> &ResultCache {
        self.catalog.default_index().cache()
    }

    /// The default index's current engine generation.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.catalog.default_index().snapshot().engine)
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The engine catalog.
    pub fn catalog(&self) -> &EngineCatalog {
        &self.catalog
    }

    /// Hot-swap reloads the default index (the SIGHUP action). Returns
    /// `(identity_before, identity_after)`.
    pub fn reload_default(&self) -> Result<(u64, u64), ServeError> {
        self.catalog.default_index().reload()
    }

    /// Resolves a route's index reference against the catalog: `None`
    /// addresses the default, a name must exist (else 404).
    fn resolve(&self, index: Option<&str>) -> Result<&Arc<ResidentIndex>, HttpResponse> {
        match index {
            None => Ok(self.catalog.default_index()),
            Some(name) => self
                .catalog
                .get(name)
                .ok_or_else(|| HttpResponse::error(404, &format!("unknown index {name:?}"))),
        }
    }

    /// Routes one parsed request. `accepted_at` anchors the per-request
    /// deadline (time spent queued counts against the budget).
    pub fn handle(&self, request: &Request, accepted_at: Instant) -> HttpResponse {
        let route = catalog::route_path(&request.path);
        self.metrics.record_request(route.endpoint);
        if route.endpoint == Endpoint::AdminReload {
            if request.method != "POST" {
                return HttpResponse::error(405, "reload requires POST");
            }
            return self.handle_reload(request, route.index.as_deref());
        }
        if route.endpoint == Endpoint::AdminCompact {
            if request.method != "POST" {
                return HttpResponse::error(405, "compact requires POST");
            }
            return self.handle_compact(request, route.index.as_deref());
        }
        if request.method != "GET" {
            return HttpResponse::error(405, "only GET is supported");
        }
        let resident = match self.resolve(route.index.as_deref()) {
            Ok(resident) => resident,
            Err(response) => return response,
        };
        match route.endpoint {
            Endpoint::Healthz => {
                // First line stays exactly "ok" for existing probes; the
                // second line summarizes the connection layer.
                let body = format!(
                    "ok\nconnections: open={} parked={} queued={} in_flight={}\n",
                    self.metrics.conn_open.load(Ordering::Relaxed),
                    self.metrics.conn_parked.load(Ordering::Relaxed),
                    self.metrics.conn_queue_depth.load(Ordering::Relaxed),
                    self.metrics.in_flight.load(Ordering::Relaxed),
                );
                HttpResponse::text(200, body)
            }
            Endpoint::Metrics => HttpResponse::text(200, self.render_metrics()),
            Endpoint::Doctor => self.handle_doctor(route.index.as_deref(), resident),
            Endpoint::DebugTraces => self.handle_debug_traces(request),
            Endpoint::DebugTop => self.handle_debug_top(request, route.index.as_deref()),
            Endpoint::Search => self.handle_query(request, accepted_at, false, resident),
            Endpoint::Suggest => self.handle_query(request, accepted_at, true, resident),
            Endpoint::AdminReload | Endpoint::AdminCompact | Endpoint::Other => {
                HttpResponse::error(404, "unknown path")
            }
        }
    }

    /// `POST /admin/reload?index=<name>` (or `POST /ix/<name>/admin/reload`):
    /// hot-swaps the named index — default when unnamed — and reports the
    /// identity transition. Sharded indexes swap their shards one at a time;
    /// `&shard=<i>` reloads only that shard slot. `400` for engine-backed
    /// (unreloadable) indexes, `404` for unknown names, `500` when
    /// re-reading a source fails.
    fn handle_reload(&self, request: &Request, route_index: Option<&str>) -> HttpResponse {
        let named = request.param("index").map(|s| s.to_ascii_lowercase());
        let name = named.as_deref().or(route_index);
        let resident = match self.resolve(name) {
            Ok(resident) => resident,
            Err(response) => return response,
        };
        let outcome = match request.param("shard") {
            None => resident.reload(),
            Some(raw) => match raw.parse::<usize>() {
                Ok(i) => resident.reload_shard(i),
                Err(_) => return HttpResponse::error(400, &format!("bad shard value {raw:?}")),
            },
        };
        match outcome {
            Ok((before, after)) => {
                HttpResponse::json(200, wire::reload_response_json(resident.name(), before, after))
            }
            Err(ServeError::BadConfig(message)) => HttpResponse::error(400, &message),
            Err(e) => HttpResponse::error(500, &format!("reload failed: {e}")),
        }
    }

    /// `POST /admin/compact?index=<name>` (or `POST /ix/<name>/admin/compact`):
    /// folds the named index's delta shards into its base shards under a
    /// compaction trace span and hot-swaps the compacted generation in.
    /// Reports `"compacted":false` when there was no delta backlog. `400`
    /// for indexes without a manifest (no update path), `404` for unknown
    /// names, `500` when the fold itself fails.
    fn handle_compact(&self, request: &Request, route_index: Option<&str>) -> HttpResponse {
        let named = request.param("index").map(|s| s.to_ascii_lowercase());
        let name = named.as_deref().or(route_index);
        let resident = match self.resolve(name) {
            Ok(resident) => resident,
            Err(response) => return response,
        };
        let span = gks_trace::span_labeled(SpanKind::Compaction, resident.name());
        let outcome = resident.compact_now();
        drop(span);
        match outcome {
            Ok(stats) => HttpResponse::json(
                200,
                wire::compact_response_json(
                    resident.name(),
                    stats.map(|s| (s.epoch, s.base_shards, s.docs, s.removed_files)),
                ),
            ),
            Err(ServeError::BadConfig(message)) => HttpResponse::error(400, &message),
            Err(e) => HttpResponse::error(500, &format!("compact failed: {e}")),
        }
    }

    /// `GET /doctor` iterates every resident index; under an `/ix/<name>/`
    /// prefix it reports just that index.
    fn handle_doctor(&self, route_index: Option<&str>, resident: &ResidentIndex) -> HttpResponse {
        if route_index.is_some() {
            let loaded = resident.snapshot();
            return HttpResponse::json(
                200,
                wire::doctor_entry_json(resident.name(), &loaded.engine),
            );
        }
        let entries: Vec<String> = self
            .catalog
            .iter()
            .map(|r| {
                let loaded = r.snapshot();
                wire::doctor_entry_json(r.name(), &loaded.engine)
            })
            .collect();
        HttpResponse::json(200, wire::catalog_doctor_json(&entries))
    }

    /// Renders `/metrics`: global counters plus one labeled section per
    /// resident index.
    fn render_metrics(&self) -> String {
        let views: Vec<_> = self.catalog.iter().map(|r| r.metrics_view()).collect();
        self.metrics.render(&views)
    }

    /// `GET /debug/traces?n=` — dumps the most recent `n` completed traces
    /// (default 32) from the `gks-trace` ring buffer as deterministic JSON,
    /// oldest first.
    fn handle_debug_traces(&self, request: &Request) -> HttpResponse {
        let n = match request.param("n") {
            None => 32,
            Some(v) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return HttpResponse::error(400, &format!("bad n value {v:?}")),
            },
        };
        let traces = gks_trace::recent_traces(n);
        let mut body = String::with_capacity(64 + traces.len() * 128);
        body.push_str("{\"enabled\":");
        body.push_str(if gks_trace::enabled() {
            "true"
        } else {
            "false"
        });
        body.push_str(",\"traces\":[");
        for (i, trace) in traces.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            trace.write_json(&mut body);
        }
        body.push_str("]}");
        HttpResponse::json(200, body)
    }

    /// `GET /debug/top?n=` — renders the rolling top-K most-expensive-query
    /// table (default 10 rows) as deterministic JSON, most work first.
    /// Under an `/ix/<name>/` prefix only that index's entries are listed.
    fn handle_debug_top(&self, request: &Request, route_index: Option<&str>) -> HttpResponse {
        let n = match request.param("n") {
            None => 10,
            Some(v) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return HttpResponse::error(400, &format!("bad n value {v:?}")),
            },
        };
        HttpResponse::json(200, self.metrics.top_queries.render_json(n, route_index))
    }

    /// Remaining budget before `accepted_at + deadline`, or `None` if the
    /// deadline already passed.
    fn budget_left(&self, accepted_at: Instant) -> Option<Duration> {
        self.config.deadline.checked_sub(accepted_at.elapsed())
    }

    fn deadline_abort(&self) -> HttpResponse {
        self.metrics.deadline_aborts_total.fetch_add(1, Ordering::Relaxed);
        HttpResponse::error(503, "deadline exceeded").with_header("Retry-After", "1".to_string())
    }

    /// `/search` and `/suggest`: runs the query under a `request` root span
    /// labeled with the index's route key, then fans the outcome out to
    /// every observability sink — the `Server-Timing` header, the query log,
    /// the per-index phase histograms, and (over the threshold) the
    /// slow-query log with the full span tree. Sharded indexes take the
    /// parallel scatter/gather path ([`ServeState::run_query_sharded`]).
    fn handle_query(
        &self,
        request: &Request,
        accepted_at: Instant,
        suggest: bool,
        resident: &ResidentIndex,
    ) -> HttpResponse {
        resident.counters().requests_total.fetch_add(1, Ordering::Relaxed);
        let request_span = gks_trace::span_labeled(SpanKind::Request, resident.name());
        let mut record = qlog::QueryRecord::new(if suggest { "suggest" } else { "search" });
        record.index = resident.name().to_string();
        record.query = request.param("q").unwrap_or_default().to_string();
        record.s = request.param("s").unwrap_or("1").to_string();
        let mut response = if resident.is_sharded() {
            self.run_query_sharded(request, accepted_at, suggest, resident, &mut record)
        } else {
            // One generation snapshot for the whole request: search, render,
            // and cache tagging all use it, so a concurrent hot-swap cannot
            // mix engine output with the wrong cache identity.
            let loaded = resident.snapshot();
            self.run_query(request, accepted_at, suggest, resident, &loaded, &mut record)
        };
        record.status = response.status;
        record.micros = request_span.elapsed_micros();
        // Engine runs (cache hits and errors carry no ledger) feed the
        // per-index cost totals and the top-K offender table.
        if let Some(cost) = &record.cost {
            resident.record_cost(cost);
            self.metrics.top_queries.record(
                resident.name(),
                &topk::normalize_query(&record.query),
                cost.total_work(),
            );
        }
        drop(request_span);
        // The root span just closed on this thread; its completed tree (if
        // tracing is on and the root was sampled) is waiting in the
        // thread-local slot.
        let trace = gks_trace::take_last_trace();
        if let Some(trace) = &trace {
            response = response.with_header("Server-Timing", qlog::server_timing(trace));
            resident.record_phases(trace);
        }
        if let Some(log) = &self.query_log {
            log.append(&record.to_json(None));
        }
        if Duration::from_micros(record.micros) >= self.config.slow_threshold {
            self.metrics.slow_queries_total.fetch_add(1, Ordering::Relaxed);
            if let Some(log) = &self.slow_log {
                log.append(&record.to_json(trace.as_ref()));
            }
        }
        response
    }

    /// Parses and validates the `q`, `s`, and `limit` parameters shared by
    /// `/search` and `/suggest`; `Err` is the ready-to-send 400 response.
    fn parse_query_params(&self, request: &Request) -> Result<QueryParams, HttpResponse> {
        let Some(q) = request.param("q") else {
            return Err(HttpResponse::error(400, "missing query parameter q"));
        };
        let query = match Query::parse(q) {
            Ok(query) => query,
            Err(e) => return Err(HttpResponse::error(400, &format!("bad query: {e}"))),
        };
        let s_raw = request.param("s").unwrap_or("1");
        let Some(s) = Threshold::parse(s_raw) else {
            return Err(HttpResponse::error(400, &format!("bad s value {s_raw:?}")));
        };
        let limit = match request.param("limit") {
            None => self.config.default_limit,
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => n.min(self.config.max_limit),
                _ => return Err(HttpResponse::error(400, &format!("bad limit value {v:?}"))),
            },
        };
        let explain = matches!(request.param("explain"), Some("1") | Some("true"));
        Ok(QueryParams { query, s, s_raw: s_raw.to_string(), limit, explain })
    }

    /// The query pipeline proper: parameter parsing, cache lookup, deadline
    /// checks, engine search, rendering — all against the `loaded`
    /// generation snapshot. Fills `record` as facts about the request become
    /// known.
    #[allow(clippy::too_many_arguments)]
    fn run_query(
        &self,
        request: &Request,
        accepted_at: Instant,
        suggest: bool,
        resident: &ResidentIndex,
        loaded: &Loaded,
        record: &mut qlog::QueryRecord,
    ) -> HttpResponse {
        let params = match self.parse_query_params(request) {
            Ok(params) => params,
            Err(response) => return response,
        };
        let QueryParams { query, s, limit, .. } = &params;
        let (s, limit) = (*s, *limit);
        record.limit = limit;
        let key = cache_key(suggest, &params);

        if self.config.cache_bytes > 0 {
            // Lookup pinned to the snapshot's identity: a hit can only ever
            // return bytes computed against this exact generation.
            if let Some(body) = resident.cache().get_for(&key, loaded.identity) {
                self.metrics.cache_hits_total.fetch_add(1, Ordering::Relaxed);
                resident.counters().cache_hits_total.fetch_add(1, Ordering::Relaxed);
                record.cached = true;
                return HttpResponse::json(200, body.to_vec())
                    .with_header("x-gks-cache", "hit".to_string());
            }
            self.metrics.cache_misses_total.fetch_add(1, Ordering::Relaxed);
            resident.counters().cache_misses_total.fetch_add(1, Ordering::Relaxed);
        }

        // Admission + queueing may already have consumed the budget; do not
        // start a search we are not allowed to finish.
        if self.budget_left(accepted_at).is_none() {
            return self.deadline_abort();
        }
        let options = SearchOptions { s, limit };
        let mut response = match loaded.engine.search(query, options) {
            Ok(r) => r,
            Err(e) => return HttpResponse::error(400, &format!("search failed: {e}")),
        };
        record.hits = Some(response.hits().len());
        record.sl_len = Some(response.sl_len());
        // The deadline gates result *rendering*: a search that returns with
        // an exhausted budget is aborted before serialization (rendering
        // ranks, paths, and attributes dominates for large limits).
        if self.budget_left(accepted_at).is_none() {
            return self.deadline_abort();
        }
        let render_span = gks_trace::span(SpanKind::Render);
        let mut body = if suggest {
            let (di, di_attrs) = gks_core::di::discover_di_counted(
                loaded.engine.index(),
                &response,
                &DiOptions::default(),
            );
            response.cost_mut().di_attrs = di_attrs;
            let refinement = loaded.engine.refine(&response, &di);
            wire::suggest_response_json(&response, &refinement, &di)
        } else {
            wire::search_response_json(&loaded.engine, &response)
        };
        drop(render_span);
        if self.budget_left(accepted_at).is_none() {
            return self.deadline_abort();
        }
        // An engine run implies the cache was probed and missed (hits return
        // above). `result_bytes` is the plain body — the explain splice is
        // accounting, not payload.
        {
            let cost = response.cost_mut();
            if self.config.cache_bytes > 0 {
                cost.cache_probes = 1;
            }
            cost.result_bytes = body.len() as u64;
        }
        if params.explain && !suggest {
            wire::append_cost_explain(&mut body, &response, &[]);
        }
        record.cost = Some(response.cost().clone());
        if self.config.cache_bytes > 0 {
            // Tagged with the snapshot identity, not the live one: if a swap
            // landed mid-request this entry is already stale and must stay
            // invisible to post-swap readers.
            resident.cache().put_for(key, Arc::from(body.as_bytes()), loaded.identity);
        }
        let http = HttpResponse::json(200, body).with_header("x-gks-cache", "miss".to_string());
        if params.explain {
            http.with_header("x-gks-cost", response.cost().summary_header())
        } else {
            http
        }
    }

    /// The sharded query pipeline: scatter the query over every shard of
    /// `resident` in parallel (one worker per shard, each pinning its own
    /// generation snapshot and capturing its span subtree), then gather —
    /// merge the per-shard answers losslessly by potential-flow score,
    /// re-truncate to the limit, and render against the owning shards.
    ///
    /// A mixed-generation answer is never merged: the snapshot itself is
    /// taken under an epoch double-read ([`ResidentIndex::snapshot_all`]),
    /// so every scatter runs against a set that coexisted at one instant.
    /// If the epoch moved while the scatter ran, the first race re-scatters
    /// once on the new generation (freshness, not correctness — the pinned
    /// set is still internally consistent); a second race serves the pinned
    /// answer. Only a snapshot that cannot converge under a reload storm
    /// yields `503`. Cache entries are tagged with the snapshot set's
    /// combined identity, so hits carry exactly the same staleness guarantee
    /// as the unsharded path.
    fn run_query_sharded(
        &self,
        request: &Request,
        accepted_at: Instant,
        suggest: bool,
        resident: &ResidentIndex,
        record: &mut qlog::QueryRecord,
    ) -> HttpResponse {
        let params = match self.parse_query_params(request) {
            Ok(params) => params,
            Err(response) => return response,
        };
        record.limit = params.limit;
        let key = cache_key(suggest, &params);
        let shard_total = resident.shard_count();

        for attempt in 0..2u32 {
            let Some(set): Option<ShardSet> = resident.snapshot_all() else {
                // The only true mixed-generation outcome: the epoch kept
                // moving across every snapshot attempt, so no consistent
                // shard set could be pinned at all.
                self.metrics.shard_mixed_generation_total.fetch_add(1, Ordering::Relaxed);
                return HttpResponse::error(503, "index reloading, retry shortly")
                    .with_header("Retry-After", "1".to_string());
            };
            if attempt == 0 && self.config.cache_bytes > 0 {
                // Lookup pinned to the snapshot set's combined identity: a
                // hit can only return bytes merged from this generation set.
                if let Some(body) = resident.cache().get_for(&key, set.identity) {
                    self.metrics.cache_hits_total.fetch_add(1, Ordering::Relaxed);
                    resident.counters().cache_hits_total.fetch_add(1, Ordering::Relaxed);
                    record.cached = true;
                    return HttpResponse::json(200, body.to_vec())
                        .with_header("x-gks-cache", "hit".to_string())
                        .with_header("x-gks-shards", shard_total.to_string());
                }
                self.metrics.cache_misses_total.fetch_add(1, Ordering::Relaxed);
                resident.counters().cache_misses_total.fetch_add(1, Ordering::Relaxed);
            }
            if self.budget_left(accepted_at).is_none() {
                return self.deadline_abort();
            }
            let options = SearchOptions { s: params.s, limit: params.limit };
            // Scatter: every shard searches concurrently on its own lane of
            // the resident index's persistent executor — a channel send per
            // shard, no thread spawn on the request path. Each task captures
            // its span subtree (timed even when the request is sampled out)
            // so the shard trees can be grafted under the scatter span.
            let sampled = gks_trace::current_sampled();
            let scatter_span = gks_trace::span(SpanKind::Scatter);
            let query = Arc::new(params.query.clone());
            let tasks: Vec<_> = set
                .shards
                .iter()
                .enumerate()
                .map(|(i, loaded)| {
                    let engine = Arc::clone(&loaded.engine);
                    let query = Arc::clone(&query);
                    move || {
                        let label = format!("shard-{i}");
                        gks_trace::capture(SpanKind::Search, &label, sampled, || {
                            engine.search(&query, options)
                        })
                    }
                })
                .collect();
            let joined = resident.executor().scatter(tasks);
            let mut caps = Vec::with_capacity(joined.len());
            for cap in joined {
                match cap {
                    Ok(cap) => caps.push(cap),
                    // A slot only fails when the shard task panicked (or the
                    // executor is shutting down).
                    Err(_) => return HttpResponse::error(500, "shard worker failed"),
                }
            }
            let fastest = caps.iter().map(|c| c.micros).min().unwrap_or(0);
            let slowest = caps.iter().map(|c| c.micros).max().unwrap_or(0);
            self.metrics.shard_fanout.record(shard_total as u64);
            self.metrics.shard_straggler_micros.record(slowest.saturating_sub(fastest));
            let mut answers = Vec::with_capacity(caps.len());
            for (i, cap) in caps.into_iter().enumerate() {
                if let Some(node) = cap.node {
                    gks_trace::attach(node);
                }
                match cap.output {
                    Ok(response) => {
                        let map = set.doc_maps.get(i).cloned().unwrap_or_else(|| DocMap::base(0));
                        answers.push((map, response));
                    }
                    Err(e) => return HttpResponse::error(400, &format!("search failed: {e}")),
                }
            }
            drop(scatter_span);
            // Freshness guard: the pinned set is internally consistent by
            // construction, but if a reload sweep landed during the scatter
            // the answer describes the previous generation. Re-scatter once
            // on the new generation; if the epoch races again, serve the
            // pinned (consistent) answer rather than fail.
            if attempt == 0 && resident.epoch() != set.epoch {
                self.metrics.shard_retries_total.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Gather: lossless merge — exact re-sort by (rank, keyword
            // count, Dewey order), re-truncate, DI keyword re-aggregation.
            let gather_span = gks_trace::span(SpanKind::Gather);
            let mut merged = match gks_core::merge_responses(answers, params.limit) {
                Ok(merged) => merged,
                Err(e) => return HttpResponse::error(400, &format!("gather failed: {e}")),
            };
            let gather_micros = gather_span.elapsed_micros();
            drop(gather_span);
            record.hits = Some(merged.response().hits().len());
            record.sl_len = Some(merged.response().sl_len());
            if self.budget_left(accepted_at).is_none() {
                return self.deadline_abort();
            }
            let render_span = gks_trace::span(SpanKind::Render);
            let engines: Vec<&Engine> = set.shards.iter().map(|l| l.engine.as_ref()).collect();
            let Some(first_engine) = engines.first() else {
                return HttpResponse::error(500, "sharded index has no shards");
            };
            let mut body = if suggest {
                let indexes: Vec<&GksIndex> = engines.iter().map(|e| e.index()).collect();
                let (di, di_attrs) =
                    gks_core::discover_di_sharded_counted(&indexes, &merged, &DiOptions::default());
                merged.response_mut().cost_mut().di_attrs = di_attrs;
                let refinement = first_engine.refine(merged.response(), &di);
                wire::suggest_response_json(merged.response(), &refinement, &di)
            } else {
                wire::search_response_json_sharded(&engines, &merged)
            };
            drop(render_span);
            if self.budget_left(accepted_at).is_none() {
                return self.deadline_abort();
            }
            // Mirror of the unsharded path: the probe missed (hits return
            // above), and `result_bytes` is the plain merged body.
            {
                let cost = merged.response_mut().cost_mut();
                if self.config.cache_bytes > 0 {
                    cost.cache_probes = 1;
                }
                cost.result_bytes = body.len() as u64;
            }
            if params.explain && !suggest {
                wire::append_cost_explain(&mut body, merged.response(), merged.shard_costs());
            }
            record.cost = Some(merged.response().cost().clone());
            if self.config.cache_bytes > 0 {
                resident.cache().put_for(key, Arc::from(body.as_bytes()), set.identity);
            }
            let http = HttpResponse::json(200, body)
                .with_header("x-gks-cache", "miss".to_string())
                .with_header("x-gks-shards", shard_total.to_string())
                .with_header("x-gks-gather-micros", gather_micros.to_string());
            return if params.explain {
                http.with_header("x-gks-cost", merged.response().cost().summary_header())
            } else {
                http
            };
        }
        // Unreachable: both loop iterations return on every path; the
        // second never takes the `continue` branch.
        HttpResponse::error(503, "index reloading, retry shortly")
    }
}

/// Parsed, validated `/search`-`/suggest` parameters.
#[derive(Debug)]
struct QueryParams {
    query: Query,
    s: Threshold,
    s_raw: String,
    limit: usize,
    explain: bool,
}

/// The normalized cache key: endpoint + parsed keywords (whitespace
/// collapsed by the parser) + s + limit + explain. Raw keyword spellings
/// are kept — they are echoed in the response body, so they are part of
/// the cached bytes' identity; `explain` changes the body (the spliced
/// cost breakdown), so it is part of the key too.
fn cache_key(suggest: bool, params: &QueryParams) -> String {
    use std::fmt::Write as _;
    let mut key = String::with_capacity(params.s_raw.len() + 24);
    key.push_str(if suggest { "suggest" } else { "search" });
    for kw in params.query.keywords() {
        key.push('\u{1}');
        key.push_str(kw.raw());
    }
    key.push('\u{2}');
    key.push_str(&params.s_raw);
    key.push('\u{2}');
    let _ = write!(key, "{}", params.limit);
    key.push('\u{2}');
    key.push(if params.explain { '1' } else { '0' });
    key
}

/// Totals reported by [`Server::shutdown`] after the drain completes.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Requests fully served (a response was written).
    pub served: u64,
    /// Connections rejected by admission control.
    pub rejected: u64,
}

/// A running server: reactor thread + worker pool over a [`ServeState`].
#[derive(Debug)]
pub struct Server {
    state: Arc<ServeState>,
    addr: SocketAddr,
    queue: Arc<BoundedQueue<conn::WorkItem>>,
    shared: Arc<reactor::ReactorShared>,
    stop: Arc<AtomicBool>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    maintenance: Option<JoinHandle<()>>,
}

/// Binds `config.addr` and spawns the accept loop and worker pool over a
/// single-index catalog. The returned [`Server`] is live until
/// [`Server::shutdown`].
pub fn serve(engine: Arc<Engine>, config: ServeConfig) -> Result<Server, ServeError> {
    let specs = vec![IndexSpec::with_engine(catalog::DEFAULT_INDEX_NAME, engine)];
    serve_catalog(specs, None, config)
}

/// Binds `config.addr` and spawns the accept loop and worker pool over a
/// catalog built from `specs` (`default` names the index bare `/search`
/// addresses; `None` → the first spec). The returned [`Server`] is live
/// until [`Server::shutdown`].
pub fn serve_catalog(
    specs: Vec<IndexSpec>,
    default: Option<&str>,
    config: ServeConfig,
) -> Result<Server, ServeError> {
    if config.workers == 0 {
        return Err(ServeError::BadConfig("workers must be > 0".into()));
    }
    if config.max_connections == 0 {
        return Err(ServeError::BadConfig("max-connections must be > 0".into()));
    }
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| ServeError::Bind { addr: config.addr.clone(), source: e })?;
    listener.set_nonblocking(true).map_err(ServeError::Io)?;
    let addr = listener.local_addr().map_err(ServeError::Io)?;
    let state = Arc::new(ServeState::with_catalog(specs, default, config.clone())?);
    let queue: Arc<BoundedQueue<conn::WorkItem>> = Arc::new(BoundedQueue::new(config.queue_depth));
    let stop = Arc::new(AtomicBool::new(false));
    // The reactor's wake channel is a loopback self-pipe: workers write a
    // byte to pop it out of poll(). Built here — blocking connect/accept
    // are fine outside the reactor.
    let (wake_tx, wake_rx) = {
        let pipe = TcpListener::bind("127.0.0.1:0").map_err(ServeError::Io)?;
        let pipe_addr = pipe.local_addr().map_err(ServeError::Io)?;
        let tx = TcpStream::connect(pipe_addr).map_err(ServeError::Io)?;
        let (rx, _) = pipe.accept().map_err(ServeError::Io)?;
        tx.set_nonblocking(true).map_err(ServeError::Io)?;
        let _ = tx.set_nodelay(true);
        rx.set_nonblocking(true).map_err(ServeError::Io)?;
        (tx, rx)
    };
    let shared = Arc::new(reactor::ReactorShared::new(wake_tx));

    let reactor_handle = {
        let reactor = reactor::Reactor {
            listener,
            wake_rx,
            shared: Arc::clone(&shared),
            queue: Arc::clone(&queue),
            stop: Arc::clone(&stop),
            state: Arc::clone(&state),
        };
        std::thread::Builder::new()
            .name("gks-reactor".to_string())
            .spawn(move || reactor.run())
            .map_err(ServeError::Io)?
    };
    let workers = (0..config.workers)
        .map(|i| {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("gks-worker-{i}"))
                .spawn(move || worker_loop(&state, &queue, &shared, &stop))
                .map_err(ServeError::Io)
        })
        .collect::<Result<Vec<_>, _>>()?;
    // The maintenance thread exists only when there is update-path work to
    // do: a watcher interval or a compaction threshold, and at least one
    // manifest-backed index to apply it to.
    let wants_maintenance = (config.watch_interval.is_some() || config.compact_threshold.is_some())
        && state.catalog().iter().any(|r| r.manifest_path().is_some());
    let maintenance = if wants_maintenance {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        Some(
            std::thread::Builder::new()
                .name("gks-maintenance".to_string())
                .spawn(move || maintenance_loop(&state, &stop))
                .map_err(ServeError::Io)?,
        )
    } else {
        None
    };

    Ok(Server {
        state,
        addr,
        queue,
        shared,
        stop,
        reactor: Some(reactor_handle),
        workers,
        maintenance,
    })
}

/// The background update loop: on every watcher tick, commit a delta for
/// whatever changed in each manifest-backed index's corpus directory and
/// hot-swap it in; whenever an index's delta backlog reaches the
/// compaction threshold, fold it into the base shards. Errors are
/// deliberately non-fatal — a mid-mutation corpus scan or a transient I/O
/// failure is retried on the next tick, and the serving set is never left
/// inconsistent because every publish goes through the manifest's atomic
/// epoch bump. Sleeps in short slices so shutdown stays prompt.
fn maintenance_loop(state: &ServeState, stop: &AtomicBool) {
    let interval_ms = state
        .config
        .watch_interval
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX).max(1));
    let mut next_poll_ms = 0u64;
    while !stop.load(Ordering::SeqCst) {
        if let Some(interval) = interval_ms {
            let now = wall_clock_ms();
            if now >= next_poll_ms {
                for resident in state.catalog().iter() {
                    if resident.manifest_path().is_none() {
                        continue;
                    }
                    let span = gks_trace::span_labeled(SpanKind::DeltaBuild, resident.name());
                    let _ = resident.poll_corpus();
                    drop(span);
                }
                next_poll_ms = now.saturating_add(interval);
            }
        }
        if let Some(threshold) = state.config.compact_threshold {
            for resident in state.catalog().iter() {
                if resident.manifest_path().is_some() && resident.delta_shards() >= threshold {
                    let span = gks_trace::span_labeled(SpanKind::Compaction, resident.name());
                    let _ = resident.compact_now();
                    drop(span);
                }
            }
        }
        for _ in 0..5 {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Pops fully-read requests off the admission queue, routes them, and
/// writes the response with nonblocking single shots. The socket's final
/// disposition goes back to the reactor: idle for the next keep-alive
/// request, a partial flush to finish, or dropped on close. The pending
/// decrement is strictly last — the reactor's drain barrier counts on it
/// coming after the retired socket is visible.
fn worker_loop(
    state: &ServeState,
    queue: &BoundedQueue<conn::WorkItem>,
    shared: &reactor::ReactorShared,
    stop: &AtomicBool,
) {
    while let Some(item) = queue.pop() {
        let conn::WorkItem { mut stream, request, accepted_at, residual, requests_served } = item;
        state.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        let response = state.handle(&request, accepted_at);
        let micros = u64::try_from(accepted_at.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.metrics.record_status(response.status);
        state.metrics.latency.record(micros);
        let response = response.with_header("x-gks-micros", micros.to_string());
        // A drain closes keep-alive connections after their in-flight
        // response: honoring `keep_alive` would park them forever.
        let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
        let buf = response.serialize(keep_alive);
        let mut written = 0;
        match conn::write_some(&mut stream, &buf, &mut written) {
            conn::WriteOutcome::Done => {
                state.served.fetch_add(1, Ordering::Relaxed);
                if keep_alive {
                    shared.retire(conn::Retired {
                        stream,
                        kind: conn::RetiredKind::Idle { residual },
                        requests_served: requests_served + 1,
                    });
                }
            }
            conn::WriteOutcome::Blocked => {
                // Slow reader: park the remaining bytes on the reactor
                // instead of pinning this worker (it counts `served` when
                // the flush completes).
                shared.retire(conn::Retired {
                    stream,
                    kind: conn::RetiredKind::Flush { buf, written, keep_alive, residual },
                    requests_served: requests_served + 1,
                });
            }
            conn::WriteOutcome::Closed => {}
        }
        state.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        shared.pending.fetch_sub(1, Ordering::SeqCst);
        // `retire()` above wakes the reactor when a socket went back; a
        // closed socket needs no wake — except during a drain, where the
        // reactor may be parked in poll waiting for pending to hit zero.
        if stop.load(Ordering::SeqCst) {
            shared.wake();
        }
    }
}

impl Server {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (metrics, cache) — e.g. for in-process inspection.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests, join all threads, and report totals. Idempotent by
    /// construction (consumes the server).
    pub fn shutdown(mut self) -> DrainReport {
        self.stop.store(true, Ordering::SeqCst);
        // No more admissions; workers drain the backlog, then exit.
        self.queue.shutdown();
        // Pop the reactor out of poll() so it sees the stop flag; it exits
        // once every dispatched request has been answered and every
        // in-progress response flush has completed.
        self.shared.wake();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.maintenance.take() {
            let _ = handle.join();
        }
        DrainReport {
            accepted: self.state.accepted.load(Ordering::Relaxed),
            served: self.state.served.load(Ordering::Relaxed),
            rejected: self.state.metrics.rejected_total.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_index::{Corpus, IndexOptions};

    fn small_engine() -> Arc<Engine> {
        let xml = "<dblp>\
            <article><title>Generic Keyword Search</title>\
                <author>Manoj Agarwal</author><author>Krithi Ramamritham</author>\
                <year>2016</year></article>\
            <article><title>Holistic Twig Joins</title>\
                <author>Nicolas Bruno</author><author>Divesh Srivastava</author>\
                <year>2002</year></article>\
        </dblp>";
        let corpus = Corpus::from_named_strs([("dblp", xml)]).unwrap();
        Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap())
    }

    fn get(state: &ServeState, target: &str) -> HttpResponse {
        let request = http::parse_request(&format!("GET {target} HTTP/1.1\r\n\r\n")).unwrap();
        state.handle(&request, Instant::now())
    }

    #[test]
    fn routes_and_shapes() {
        let state = ServeState::new(small_engine(), ServeConfig::default()).unwrap();
        assert_eq!(get(&state, "/healthz").status, 200);
        assert_eq!(get(&state, "/nope").status, 404);

        let search = get(&state, "/search?q=keyword+search&s=2");
        assert_eq!(search.status, 200);
        let body = String::from_utf8(search.body).unwrap();
        assert!(body.starts_with("{\"query\":[\"keyword\",\"search\"]"), "{body}");

        let suggest = get(&state, "/suggest?q=agarwal");
        assert_eq!(suggest.status, 200);
        assert!(String::from_utf8(suggest.body).unwrap().contains("\"sub_queries\""));

        let doctor = get(&state, "/doctor");
        assert!(String::from_utf8(doctor.body).unwrap().contains("\"healthy\":true"));

        let metrics = get(&state, "/metrics");
        let text = String::from_utf8(metrics.body).unwrap();
        assert!(metrics::metric_value(&text, "gks_requests_total").unwrap() >= 4);
        assert!(
            metrics::metric_value(&text, "gks_index_requests_total{index=\"default\"}").is_some(),
            "per-index section present: {text}"
        );
    }

    #[test]
    fn prefixed_routes_reach_the_default_catalog_entry() {
        let state = ServeState::new(small_engine(), ServeConfig::default()).unwrap();
        let bare = get(&state, "/search?q=twig&s=1");
        let prefixed = get(&state, "/ix/default/search?q=twig&s=1");
        assert_eq!(prefixed.status, 200);
        assert_eq!(bare.body, prefixed.body, "same index, same bytes");
        assert_eq!(get(&state, "/ix/nope/search?q=twig").status, 404, "unknown index");
        assert_eq!(get(&state, "/ix/default/doctor").status, 200);

        // Engine-backed indexes have no source path: reload is a 400.
        let request = http::parse_request("POST /admin/reload HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(state.handle(&request, Instant::now()).status, 400);
        // …and reload over GET is a 405.
        let request = http::parse_request("GET /admin/reload HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(state.handle(&request, Instant::now()).status, 405);
        // Unknown ?index= names 404 before any reload is attempted.
        let request =
            http::parse_request("POST /admin/reload?index=nope HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(state.handle(&request, Instant::now()).status, 404);
    }

    #[test]
    fn parameter_validation() {
        let state = ServeState::new(small_engine(), ServeConfig::default()).unwrap();
        assert_eq!(get(&state, "/search").status, 400, "missing q");
        assert_eq!(get(&state, "/search?q=x&s=zero").status, 400, "bad s");
        assert_eq!(get(&state, "/search?q=x&limit=wat").status, 400, "bad limit");
        assert_eq!(get(&state, "/search?q=%22unclosed").status, 400, "unclosed phrase");
        let request = http::parse_request("POST /search?q=x HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(state.handle(&request, Instant::now()).status, 405);
    }

    #[test]
    fn cache_hits_return_identical_bytes() {
        let state = ServeState::new(small_engine(), ServeConfig::default()).unwrap();
        let first = get(&state, "/search?q=twig&s=1");
        let second = get(&state, "/search?q=twig&s=1");
        assert_eq!(first.body, second.body);
        let hdr = |r: &HttpResponse| {
            r.headers.iter().find(|(k, _)| *k == "x-gks-cache").map(|(_, v)| v.clone())
        };
        assert_eq!(hdr(&first).as_deref(), Some("miss"));
        assert_eq!(hdr(&second).as_deref(), Some("hit"));
        assert_eq!(state.metrics.cache_hits_total.load(Ordering::Relaxed), 1);
        assert_eq!(state.metrics.cache_misses_total.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn explain_splices_cost_and_feeds_the_sinks() {
        let state = ServeState::new(small_engine(), ServeConfig::default()).unwrap();
        let plain = get(&state, "/search?q=twig+joins&s=1");
        let explained = get(&state, "/search?q=twig+joins&s=1&explain=1");
        assert_eq!(explained.status, 200);
        let plain_body = String::from_utf8(plain.body).unwrap();
        let body = String::from_utf8(explained.body).unwrap();
        // Strict superset: the explain splice extends the plain body.
        assert!(body.starts_with(plain_body.trim_end_matches('}')), "{body}");
        assert!(body.contains("\"cost\":{\"postings_scanned\":"), "{body}");
        assert!(body.contains("\"cost_keywords\":[{\"keyword\":\"twig\""), "{body}");
        assert!(body.ends_with("\"shard_costs\":[]}"), "unsharded breakdown is empty: {body}");
        let summary = explained
            .headers
            .iter()
            .find(|(k, _)| *k == "x-gks-cost")
            .map(|(_, v)| v.clone())
            .expect("x-gks-cost behind explain=1");
        let ledger = gks_core::CostLedger::parse_summary_header(&summary).unwrap();
        assert!(ledger.postings_scanned > 0 && ledger.result_bytes > 0, "{summary}");
        assert_eq!(ledger.result_bytes as usize, plain_body.len(), "plain body is the payload");
        assert!(
            !plain.headers.iter().any(|(k, _)| *k == "x-gks-cost"),
            "header gated on explain"
        );
        // Both keys cache independently and replay their own bytes.
        let replay = get(&state, "/search?q=twig+joins&s=1&explain=1");
        assert_eq!(String::from_utf8(replay.body).unwrap(), body);
        // The engine runs fed the per-index cost counters and the top-K table.
        let metrics = get(&state, "/metrics");
        let text = String::from_utf8(metrics.body).unwrap();
        assert!(
            metrics::metric_value(&text, "gks_cost_postings_scanned_total{index=\"default\"}")
                .is_some_and(|v| v > 0),
            "{text}"
        );
        assert!(
            metrics::metric_value(&text, "gks_cost_postings_per_query_count{index=\"default\"}")
                .is_some_and(|v| v >= 2),
            "{text}"
        );
        let top = get(&state, "/debug/top");
        let top_body = String::from_utf8(top.body).unwrap();
        assert!(top_body.contains("\"query\":\"twig joins\""), "{top_body}");
    }

    #[test]
    fn zero_deadline_aborts() {
        let config = ServeConfig { deadline: Duration::from_nanos(0), ..Default::default() };
        let state = ServeState::new(small_engine(), config).unwrap();
        let response = get(&state, "/search?q=twig");
        assert_eq!(response.status, 503);
        assert_eq!(state.metrics.deadline_aborts_total.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn identity_differs_across_corpora() {
        let other = {
            let corpus = Corpus::from_named_strs([("x", "<r><a>hi</a><a>ho</a></r>")]).unwrap();
            Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap())
        };
        assert_ne!(index_identity(small_engine().index()), index_identity(other.index()),);
    }
}
