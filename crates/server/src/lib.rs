//! # gks-serve — a resident, concurrent query service over a GKS index
//!
//! The paper's headline claim is *interactive* keyword search: sub-second
//! queries and a DI-driven refinement loop in which a user issues several
//! related queries against the same corpus. That only makes sense with a
//! long-lived index whose per-query setup cost is amortized away — so this
//! crate keeps an [`Engine`] resident and serves it over HTTP/1.1, std-only
//! (the workspace vendors its dependencies; the listener is a hand-rolled
//! subset on `std::net`).
//!
//! Architecture, front to back:
//!
//! * **accept loop** — one thread accepting connections and applying
//!   *admission control*: connections are handed to a **bounded** queue
//!   ([`pool::BoundedQueue`]); when it is full the connection is answered
//!   `503 + Retry-After` immediately instead of queueing unboundedly.
//! * **worker pool** — a fixed number of threads pop connections, parse the
//!   request ([`http`]), route it ([`ServeState::handle`]), and write the
//!   response. Each request carries a **deadline** from the moment it was
//!   accepted; work still pending past the deadline (including time spent
//!   queued) is aborted with `503` and counted.
//! * **result cache** — a sharded LRU ([`cache::ResultCache`]) keyed on the
//!   normalized `(endpoint, query, s, limit)` tuple, storing the exact
//!   response bytes; the deterministic wire format (`gks_core::wire`) makes
//!   a hit byte-identical to recomputation. The cache is invalidated by
//!   index identity ([`index_identity`]).
//! * **metrics** — lock-free counters and a latency histogram
//!   ([`metrics::Metrics`]) exposed at `GET /metrics`.
//! * **graceful shutdown** — [`Server::shutdown`] stops accepting, drains
//!   queued and in-flight requests, joins every thread, and reports totals;
//!   the CLI wires SIGTERM/ctrl-c ([`signal`]) to it so `kill` never drops
//!   accepted work.
//!
//! * **observability** — every query runs under a `gks-trace` root span
//!   ([`qlog`]): per-phase percentiles join `/metrics`, the completed-trace
//!   ring is dumped by `GET /debug/traces?n=`, `/search` responses carry a
//!   `Server-Timing` header, and the server can write a JSONL query log plus
//!   a threshold-gated slow-query log embedding the full span tree.
//!
//! Endpoints: `GET /search`, `GET /suggest`, `GET /doctor`, `GET /healthz`,
//! `GET /metrics`, `GET /debug/traces`. See [`ServeState::handle`] for
//! parameters.

pub mod cache;
pub mod client;
pub mod error;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod pool;
pub mod qlog;
pub mod signal;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gks_core::di::DiOptions;
use gks_core::engine::Engine;
use gks_core::query::Query;
use gks_core::search::{SearchOptions, Threshold};
use gks_core::wire;
use gks_index::GksIndex;
use gks_trace::SpanKind;

use crate::cache::ResultCache;
use crate::error::ServeError;
use crate::http::{HttpResponse, Request};
use crate::metrics::{Endpoint, Metrics};
use crate::pool::BoundedQueue;

/// Server tuning knobs. `Default` matches the CLI's defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7070` (port 0 picks an ephemeral
    /// port — used by tests).
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded queue depth between the accept loop and the workers; the
    /// admission-control limit.
    pub queue_depth: usize,
    /// Per-request deadline measured from accept (queueing time included).
    pub deadline: Duration,
    /// Result-cache capacity in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Result-cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// `limit` applied to `/search` when the request does not pass one.
    pub default_limit: usize,
    /// Upper bound on the `limit` a request may ask for.
    pub max_limit: usize,
    /// Enable `gks-trace` span recording (per-phase metrics, the
    /// `/debug/traces` ring, `Server-Timing` headers, slow-log span trees).
    pub trace: bool,
    /// Capacity of the completed-trace ring buffer.
    pub trace_ring: usize,
    /// JSONL query log path (`None` disables it).
    pub query_log: Option<PathBuf>,
    /// JSONL slow-query log path (`None` disables it).
    pub slow_log: Option<PathBuf>,
    /// Queries at least this slow count as slow (logged with their span
    /// tree when `slow_log` is set).
    pub slow_threshold: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7070".to_string(),
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_millis(2_000),
            cache_bytes: 32 * 1024 * 1024,
            cache_shards: 8,
            default_limit: 20,
            max_limit: 1_000,
            trace: true,
            trace_ring: gks_trace::DEFAULT_RING_CAPACITY,
            query_log: None,
            slow_log: None,
            slow_threshold: Duration::from_millis(500),
        }
    }
}

/// A stable fingerprint of an index's identity, used to invalidate the
/// result cache when the resident index changes. FNV-1a over the document
/// names and the structural counts — two indexes over different corpora (or
/// rebuilt over changed data) collide only if every one of these agrees.
pub fn index_identity(index: &GksIndex) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for name in index.doc_names() {
        mix(name.as_bytes());
    }
    let stats = index.stats();
    for v in [
        stats.doc_count,
        stats.total_nodes,
        stats.distinct_terms,
        stats.total_postings,
        stats.raw_bytes,
    ] {
        mix(&v.to_le_bytes());
    }
    h
}

/// Shared per-server state: the resident engine, cache, metrics, config.
/// Routing lives here ([`ServeState::handle`]) so tests and the property
/// suite can drive the service without sockets.
#[derive(Debug)]
pub struct ServeState {
    engine: Arc<Engine>,
    cache: ResultCache,
    metrics: Metrics,
    config: ServeConfig,
    identity: u64,
    accepted: AtomicU64,
    served: AtomicU64,
    query_log: Option<qlog::LogFile>,
    slow_log: Option<qlog::LogFile>,
}

impl ServeState {
    /// Builds the state for `engine` under `config`, opening the query and
    /// slow-query logs if configured. Tracing is enabled process-wide when
    /// `config.trace` is set (it is never force-disabled here — another
    /// in-process consumer, e.g. a test harness, may also depend on it).
    pub fn new(engine: Arc<Engine>, config: ServeConfig) -> Result<ServeState, ServeError> {
        let identity = index_identity(engine.index());
        let cache = ResultCache::new(config.cache_bytes, config.cache_shards, identity);
        let query_log = config.query_log.as_deref().map(qlog::LogFile::open).transpose()?;
        let slow_log = config.slow_log.as_deref().map(qlog::LogFile::open).transpose()?;
        if config.trace {
            gks_trace::set_ring_capacity(config.trace_ring);
            gks_trace::set_enabled(true);
        }
        Ok(ServeState {
            engine,
            cache,
            metrics: Metrics::default(),
            config,
            identity,
            accepted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            query_log,
            slow_log,
        })
    }

    /// The service counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The engine being served.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Routes one parsed request. `accepted_at` anchors the per-request
    /// deadline (time spent queued counts against the budget).
    pub fn handle(&self, request: &Request, accepted_at: Instant) -> HttpResponse {
        let endpoint = Endpoint::of_path(&request.path);
        self.metrics.record_request(endpoint);
        if request.method != "GET" {
            return HttpResponse::error(405, "only GET is supported");
        }
        // The cache outlives any future index hot-swap: revalidate identity
        // on every request (one atomic compare when unchanged).
        self.cache.ensure_identity(self.identity);
        match endpoint {
            Endpoint::Healthz => HttpResponse::text(200, "ok\n"),
            Endpoint::Metrics => {
                let body = self.metrics.render(self.cache.stats(), self.identity);
                HttpResponse::text(200, body)
            }
            Endpoint::Doctor => HttpResponse::json(200, wire::doctor_response_json(&self.engine)),
            Endpoint::DebugTraces => self.handle_debug_traces(request),
            Endpoint::Search => self.handle_query(request, accepted_at, false),
            Endpoint::Suggest => self.handle_query(request, accepted_at, true),
            Endpoint::Other => HttpResponse::error(404, "unknown path"),
        }
    }

    /// `GET /debug/traces?n=` — dumps the most recent `n` completed traces
    /// (default 32) from the `gks-trace` ring buffer as deterministic JSON,
    /// oldest first.
    fn handle_debug_traces(&self, request: &Request) -> HttpResponse {
        let n = match request.param("n") {
            None => 32,
            Some(v) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return HttpResponse::error(400, &format!("bad n value {v:?}")),
            },
        };
        let traces = gks_trace::recent_traces(n);
        let mut body = String::with_capacity(64 + traces.len() * 128);
        body.push_str("{\"enabled\":");
        body.push_str(if gks_trace::enabled() {
            "true"
        } else {
            "false"
        });
        body.push_str(",\"traces\":[");
        for (i, trace) in traces.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            trace.write_json(&mut body);
        }
        body.push_str("]}");
        HttpResponse::json(200, body)
    }

    /// Remaining budget before `accepted_at + deadline`, or `None` if the
    /// deadline already passed.
    fn budget_left(&self, accepted_at: Instant) -> Option<Duration> {
        self.config.deadline.checked_sub(accepted_at.elapsed())
    }

    fn deadline_abort(&self) -> HttpResponse {
        self.metrics.deadline_aborts_total.fetch_add(1, Ordering::Relaxed);
        HttpResponse::error(503, "deadline exceeded").with_header("Retry-After", "1".to_string())
    }

    /// `/search` and `/suggest`: runs the query under a `request` root span,
    /// then fans the outcome out to every observability sink — the
    /// `Server-Timing` header, the query log, and (over the threshold) the
    /// slow-query log with the full span tree.
    fn handle_query(&self, request: &Request, accepted_at: Instant, suggest: bool) -> HttpResponse {
        let request_span = gks_trace::span(SpanKind::Request);
        let mut record = qlog::QueryRecord::new(if suggest { "suggest" } else { "search" });
        record.query = request.param("q").unwrap_or_default().to_string();
        record.s = request.param("s").unwrap_or("1").to_string();
        let mut response = self.run_query(request, accepted_at, suggest, &mut record);
        record.status = response.status;
        record.micros = request_span.elapsed_micros();
        drop(request_span);
        // The root span just closed on this thread; its completed tree (if
        // tracing is on) is waiting in the thread-local slot.
        let trace = gks_trace::take_last_trace();
        if let Some(trace) = &trace {
            response = response.with_header("Server-Timing", qlog::server_timing(trace));
        }
        if let Some(log) = &self.query_log {
            log.append(&record.to_json(None));
        }
        if Duration::from_micros(record.micros) >= self.config.slow_threshold {
            self.metrics.slow_queries_total.fetch_add(1, Ordering::Relaxed);
            if let Some(log) = &self.slow_log {
                log.append(&record.to_json(trace.as_ref()));
            }
        }
        response
    }

    /// The query pipeline proper: parameter parsing, cache lookup, deadline
    /// checks, engine search, rendering. Fills `record` as facts about the
    /// request become known.
    fn run_query(
        &self,
        request: &Request,
        accepted_at: Instant,
        suggest: bool,
        record: &mut qlog::QueryRecord,
    ) -> HttpResponse {
        let Some(q) = request.param("q") else {
            return HttpResponse::error(400, "missing query parameter q");
        };
        let query = match Query::parse(q) {
            Ok(query) => query,
            Err(e) => return HttpResponse::error(400, &format!("bad query: {e}")),
        };
        let s_raw = request.param("s").unwrap_or("1");
        let Some(s) = Threshold::parse(s_raw) else {
            return HttpResponse::error(400, &format!("bad s value {s_raw:?}"));
        };
        let limit = match request.param("limit") {
            None => self.config.default_limit,
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => n.min(self.config.max_limit),
                _ => return HttpResponse::error(400, &format!("bad limit value {v:?}")),
            },
        };
        record.limit = limit;

        // Normalized cache key: endpoint + parsed keywords (whitespace
        // collapsed by the parser) + s + limit. Raw spellings are kept —
        // they are echoed in the response body, so they are part of the
        // cached bytes' identity.
        let mut key = String::with_capacity(q.len() + 24);
        key.push_str(if suggest { "suggest" } else { "search" });
        for kw in query.keywords() {
            key.push('\u{1}');
            key.push_str(kw.raw());
        }
        key.push('\u{2}');
        key.push_str(s_raw);
        key.push('\u{2}');
        let _ = {
            use std::fmt::Write as _;
            write!(key, "{limit}")
        };

        if self.config.cache_bytes > 0 {
            if let Some(body) = self.cache.get(&key) {
                self.metrics.cache_hits_total.fetch_add(1, Ordering::Relaxed);
                record.cached = true;
                return HttpResponse::json(200, body.to_vec())
                    .with_header("x-gks-cache", "hit".to_string());
            }
            self.metrics.cache_misses_total.fetch_add(1, Ordering::Relaxed);
        }

        // Admission + queueing may already have consumed the budget; do not
        // start a search we are not allowed to finish.
        if self.budget_left(accepted_at).is_none() {
            return self.deadline_abort();
        }
        let options = SearchOptions { s, limit };
        let response = match self.engine.search(&query, options) {
            Ok(r) => r,
            Err(e) => return HttpResponse::error(400, &format!("search failed: {e}")),
        };
        record.hits = Some(response.hits().len());
        record.sl_len = Some(response.sl_len());
        // The deadline gates result *rendering*: a search that returns with
        // an exhausted budget is aborted before serialization (rendering
        // ranks, paths, and attributes dominates for large limits).
        if self.budget_left(accepted_at).is_none() {
            return self.deadline_abort();
        }
        let render_span = gks_trace::span(SpanKind::Render);
        let body = if suggest {
            let di = self.engine.discover_di(&response, &DiOptions::default());
            let refinement = self.engine.refine(&response, &di);
            wire::suggest_response_json(&response, &refinement, &di)
        } else {
            wire::search_response_json(&self.engine, &response)
        };
        drop(render_span);
        if self.budget_left(accepted_at).is_none() {
            return self.deadline_abort();
        }
        if self.config.cache_bytes > 0 {
            self.cache.put(key, Arc::from(body.as_bytes()));
        }
        HttpResponse::json(200, body).with_header("x-gks-cache", "miss".to_string())
    }
}

/// Totals reported by [`Server::shutdown`] after the drain completes.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Requests fully served (a response was written).
    pub served: u64,
    /// Connections rejected by admission control.
    pub rejected: u64,
}

type Job = (TcpStream, Instant);

/// A running server: accept thread + worker pool over a [`ServeState`].
#[derive(Debug)]
pub struct Server {
    state: Arc<ServeState>,
    addr: SocketAddr,
    queue: Arc<BoundedQueue<Job>>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds `config.addr` and spawns the accept loop and worker pool. The
/// returned [`Server`] is live until [`Server::shutdown`].
pub fn serve(engine: Arc<Engine>, config: ServeConfig) -> Result<Server, ServeError> {
    if config.workers == 0 {
        return Err(ServeError::BadConfig("workers must be > 0".into()));
    }
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| ServeError::Bind { addr: config.addr.clone(), source: e })?;
    let addr = listener.local_addr().map_err(ServeError::Io)?;
    let state = Arc::new(ServeState::new(engine, config.clone())?);
    let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(config.queue_depth));
    let stop = Arc::new(AtomicBool::new(false));

    let acceptor = {
        let state = Arc::clone(&state);
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("gks-accept".to_string())
            .spawn(move || accept_loop(&listener, &state, &queue, &stop))
            .map_err(ServeError::Io)?
    };
    let workers = (0..config.workers)
        .map(|i| {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name(format!("gks-worker-{i}"))
                .spawn(move || worker_loop(&state, &queue))
                .map_err(ServeError::Io)
        })
        .collect::<Result<Vec<_>, _>>()?;

    Ok(Server { state, addr, queue, stop, acceptor: Some(acceptor), workers })
}

fn accept_loop(
    listener: &TcpListener,
    state: &ServeState,
    queue: &BoundedQueue<Job>,
    stop: &AtomicBool,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break; // the shutdown poke connection lands here too
        }
        let Ok(stream) = stream else { continue };
        state.accepted.fetch_add(1, Ordering::Relaxed);
        let accepted_at = Instant::now();
        if let Err((stream, _)) = queue.try_push((stream, accepted_at)) {
            // Admission reject: answer 503 without occupying a worker. The
            // short write timeout keeps a slow client from stalling accepts.
            state.metrics.rejected_total.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
            let _ = HttpResponse::error(503, "server overloaded, retry shortly")
                .with_header("Retry-After", "1".to_string())
                .write_to(&mut stream);
        }
    }
}

fn worker_loop(state: &ServeState, queue: &BoundedQueue<Job>) {
    while let Some((mut stream, accepted_at)) = queue.pop() {
        state.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_read_timeout(Some(state.config.deadline));
        let _ = stream.set_write_timeout(Some(state.config.deadline));
        let _ = stream.set_nodelay(true);
        let response = match http::read_request(&mut stream) {
            Ok(request) => state.handle(&request, accepted_at),
            Err(http::HttpError::TooLarge) => HttpResponse::error(400, "request too large"),
            Err(e) => HttpResponse::error(400, &format!("{e}")),
        };
        let micros = u64::try_from(accepted_at.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.metrics.record_status(response.status);
        state.metrics.latency.record(micros);
        let response = response.with_header("x-gks-micros", micros.to_string());
        if response.write_to(&mut stream).is_ok() {
            state.served.fetch_add(1, Ordering::Relaxed);
        }
        state.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Server {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (metrics, cache) — e.g. for in-process inspection.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests, join all threads, and report totals. Idempotent by
    /// construction (consumes the server).
    pub fn shutdown(mut self) -> DrainReport {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // No more admissions; release workers once the backlog drains.
        self.queue.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        DrainReport {
            accepted: self.state.accepted.load(Ordering::Relaxed),
            served: self.state.served.load(Ordering::Relaxed),
            rejected: self.state.metrics.rejected_total.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_index::{Corpus, IndexOptions};

    fn small_engine() -> Arc<Engine> {
        let xml = "<dblp>\
            <article><title>Generic Keyword Search</title>\
                <author>Manoj Agarwal</author><author>Krithi Ramamritham</author>\
                <year>2016</year></article>\
            <article><title>Holistic Twig Joins</title>\
                <author>Nicolas Bruno</author><author>Divesh Srivastava</author>\
                <year>2002</year></article>\
        </dblp>";
        let corpus = Corpus::from_named_strs([("dblp", xml)]).unwrap();
        Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap())
    }

    fn get(state: &ServeState, target: &str) -> HttpResponse {
        let request = http::parse_request(&format!("GET {target} HTTP/1.1\r\n\r\n")).unwrap();
        state.handle(&request, Instant::now())
    }

    #[test]
    fn routes_and_shapes() {
        let state = ServeState::new(small_engine(), ServeConfig::default()).unwrap();
        assert_eq!(get(&state, "/healthz").status, 200);
        assert_eq!(get(&state, "/nope").status, 404);

        let search = get(&state, "/search?q=keyword+search&s=2");
        assert_eq!(search.status, 200);
        let body = String::from_utf8(search.body).unwrap();
        assert!(body.starts_with("{\"query\":[\"keyword\",\"search\"]"), "{body}");

        let suggest = get(&state, "/suggest?q=agarwal");
        assert_eq!(suggest.status, 200);
        assert!(String::from_utf8(suggest.body).unwrap().contains("\"sub_queries\""));

        let doctor = get(&state, "/doctor");
        assert!(String::from_utf8(doctor.body).unwrap().contains("\"healthy\":true"));

        let metrics = get(&state, "/metrics");
        let text = String::from_utf8(metrics.body).unwrap();
        assert!(metrics::metric_value(&text, "gks_requests_total").unwrap() >= 4);
    }

    #[test]
    fn parameter_validation() {
        let state = ServeState::new(small_engine(), ServeConfig::default()).unwrap();
        assert_eq!(get(&state, "/search").status, 400, "missing q");
        assert_eq!(get(&state, "/search?q=x&s=zero").status, 400, "bad s");
        assert_eq!(get(&state, "/search?q=x&limit=wat").status, 400, "bad limit");
        assert_eq!(get(&state, "/search?q=%22unclosed").status, 400, "unclosed phrase");
        let request = http::parse_request("POST /search?q=x HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(state.handle(&request, Instant::now()).status, 405);
    }

    #[test]
    fn cache_hits_return_identical_bytes() {
        let state = ServeState::new(small_engine(), ServeConfig::default()).unwrap();
        let first = get(&state, "/search?q=twig&s=1");
        let second = get(&state, "/search?q=twig&s=1");
        assert_eq!(first.body, second.body);
        let hdr = |r: &HttpResponse| {
            r.headers.iter().find(|(k, _)| *k == "x-gks-cache").map(|(_, v)| v.clone())
        };
        assert_eq!(hdr(&first).as_deref(), Some("miss"));
        assert_eq!(hdr(&second).as_deref(), Some("hit"));
        assert_eq!(state.metrics.cache_hits_total.load(Ordering::Relaxed), 1);
        assert_eq!(state.metrics.cache_misses_total.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_deadline_aborts() {
        let config = ServeConfig { deadline: Duration::from_nanos(0), ..Default::default() };
        let state = ServeState::new(small_engine(), config).unwrap();
        let response = get(&state, "/search?q=twig");
        assert_eq!(response.status, 503);
        assert_eq!(state.metrics.deadline_aborts_total.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn identity_differs_across_corpora() {
        let other = {
            let corpus = Corpus::from_named_strs([("x", "<r><a>hi</a><a>ho</a></r>")]).unwrap();
            Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap())
        };
        assert_ne!(index_identity(small_engine().index()), index_identity(other.index()),);
    }
}
