//! A minimal blocking HTTP/1.1 client (GET, plus body-less POST for admin
//! endpoints) — just enough for the load generator, the CI smoke check, and
//! tests to talk to a running server without external dependencies. One
//! request per connection (the server always answers `Connection: close`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code, headers, body bytes.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// Body decoded as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issues `GET {target}` against `addr` and reads the full response.
/// `target` is the path + query string, e.g. `/search?q=twig&s=1`.
pub fn http_get(
    addr: SocketAddr,
    target: &str,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    http_request("GET", addr, target, timeout)
}

/// Issues a body-less `POST {target}` against `addr` (the shape the
/// `/admin/reload` endpoint expects) and reads the full response.
pub fn http_post(
    addr: SocketAddr,
    target: &str,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    http_request("POST", addr, target, timeout)
}

fn http_request(
    method: &str,
    addr: SocketAddr,
    target: &str,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: gks\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::with_capacity(4096);
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// Splits a raw HTTP/1.1 response into status, headers, and body. Returns
/// `None` when the status line or header block is malformed.
pub fn parse_response(raw: &[u8]) -> Option<ClientResponse> {
    let split = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..split]).ok()?;
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    // "HTTP/1.1 200 OK" — the code is the second token.
    let status = status_line.split(' ').nth(1)?.parse().ok()?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':')?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Some(ClientResponse { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nx-gks-cache: hit\r\n\r\n{\"a\":1}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("Content-Type"), Some("application/json"));
        assert_eq!(r.header("X-GKS-Cache"), Some("hit"));
        assert_eq!(r.body_text(), "{\"a\":1}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_none());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_none());
    }
}
