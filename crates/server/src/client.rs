//! A minimal blocking HTTP/1.1 client (GET, plus body-less POST for admin
//! endpoints) — just enough for the load generator, the CI smoke check, and
//! tests to talk to a running server without external dependencies.
//! [`http_get`]/[`http_post`] use one connection per request
//! (`Connection: close`); [`HttpClient`] holds a keep-alive connection and
//! frames responses by `Content-Length`, so many requests ride one socket.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code, headers, body bytes.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// Body decoded as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issues `GET {target}` against `addr` and reads the full response.
/// `target` is the path + query string, e.g. `/search?q=twig&s=1`.
pub fn http_get(
    addr: SocketAddr,
    target: &str,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    http_request("GET", addr, target, timeout)
}

/// Issues a body-less `POST {target}` against `addr` (the shape the
/// `/admin/reload` endpoint expects) and reads the full response.
pub fn http_post(
    addr: SocketAddr,
    target: &str,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    http_request("POST", addr, target, timeout)
}

fn http_request(
    method: &str,
    addr: SocketAddr,
    target: &str,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: gks\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::with_capacity(4096);
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// A persistent keep-alive connection: requests are sent without
/// `Connection: close` and responses are framed by their `Content-Length`,
/// so the socket stays open across calls. A transport error poisons the
/// connection — drop it and connect again.
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    /// Bytes read past the last framed response (the start of the next one).
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects to `addr` with `timeout` applied to the connect and to
    /// every subsequent read/write.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient { stream, buf: Vec::new() })
    }

    /// Issues `GET {target}` on the persistent connection and reads exactly
    /// one `Content-Length`-framed response.
    pub fn get(&mut self, target: &str) -> std::io::Result<ClientResponse> {
        let request = format!("GET {target} HTTP/1.1\r\nHost: gks\r\nContent-Length: 0\r\n\r\n");
        self.stream.write_all(request.as_bytes())?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(split) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let content_length = std::str::from_utf8(&self.buf[..split])
                    .ok()
                    .and_then(head_content_length)
                    .ok_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "keep-alive response lacks a content-length",
                        )
                    })?;
                let total = split + 4 + content_length;
                if self.buf.len() >= total {
                    let frame: Vec<u8> = self.buf.drain(..total).collect();
                    return parse_response(&frame).ok_or_else(|| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response")
                    });
                }
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the keep-alive connection",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// `Content-Length` value in a response head, if present.
fn head_content_length(head: &str) -> Option<usize> {
    head.lines().skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if name.trim().eq_ignore_ascii_case("content-length") {
            value.trim().parse().ok()
        } else {
            None
        }
    })
}

/// Splits a raw HTTP/1.1 response into status, headers, and body. Returns
/// `None` when the status line or header block is malformed.
pub fn parse_response(raw: &[u8]) -> Option<ClientResponse> {
    let split = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..split]).ok()?;
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    // "HTTP/1.1 200 OK" — the code is the second token.
    let status = status_line.split(' ').nth(1)?.parse().ok()?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':')?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Some(ClientResponse { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nx-gks-cache: hit\r\n\r\n{\"a\":1}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("Content-Type"), Some("application/json"));
        assert_eq!(r.header("X-GKS-Cache"), Some("hit"));
        assert_eq!(r.body_text(), "{\"a\":1}");
    }

    #[test]
    fn content_length_is_read_from_the_head() {
        assert_eq!(head_content_length("HTTP/1.1 200 OK\r\nContent-Length: 12"), Some(12));
        assert_eq!(head_content_length("HTTP/1.1 200 OK\r\ncontent-length:3"), Some(3));
        assert_eq!(head_content_length("HTTP/1.1 200 OK\r\nX-Other: 1"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_none());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_none());
    }
}
