//! Rolling top-K most-expensive-query table, served by `GET /debug/top?n=`.
//!
//! Every engine run (cache hits do no engine work and are skipped) folds its
//! [`CostLedger::total_work`](gks_core::CostLedger::total_work) into an
//! entry keyed on `(index, normalized query)` — count, total work, max work.
//! The table is deliberately **bounded** and **lock-cheap**: a single short
//! mutex section per request over a small map (default 256 entries); when
//! the map is full a new key evicts the entry with the least total work, so
//! sustained offenders survive churn while one-off cheap queries age out.
//! Eviction can under-count a genuinely expensive query that first appears
//! while the table is full of heavier entries — acceptable for a debugging
//! aid; exact accounting lives in the query log.
//!
//! Rendering is deterministic for a given table state: entries sort by
//! total work descending, then count descending, then key ascending.

use std::collections::HashMap;
use std::sync::Mutex;

/// Default maximum number of distinct `(index, query)` entries tracked.
pub const DEFAULT_TOP_CAPACITY: usize = 256;

/// Aggregated cost of one normalized query on one index.
#[derive(Debug, Clone, Default)]
struct Entry {
    count: u64,
    total_work: u64,
    max_work: u64,
}

/// The bounded offender table. `Default` uses [`DEFAULT_TOP_CAPACITY`].
#[derive(Debug)]
pub struct TopQueries {
    capacity: usize,
    entries: Mutex<HashMap<(String, String), Entry>>,
}

impl Default for TopQueries {
    fn default() -> TopQueries {
        TopQueries::with_capacity(DEFAULT_TOP_CAPACITY)
    }
}

/// Normalizes a raw `q` parameter into its table key: whitespace collapsed
/// to single spaces, ASCII case folded — `" Twig  JOINS "` and
/// `"twig joins"` aggregate into one entry.
pub fn normalize_query(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for token in raw.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        for c in token.chars() {
            out.push(c.to_ascii_lowercase());
        }
    }
    out
}

impl TopQueries {
    /// A table bounded to `capacity` entries (min 1).
    pub fn with_capacity(capacity: usize) -> TopQueries {
        TopQueries { capacity: capacity.max(1), entries: Mutex::new(HashMap::new()) }
    }

    /// Folds one engine run into the table. `query` should already be
    /// normalized ([`normalize_query`]).
    pub fn record(&self, index: &str, query: &str, work: u64) {
        let mut entries = gks_trace::lockorder::track(
            "server/topk.entries",
            self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        if let Some(entry) = entries.get_mut(&(index.to_string(), query.to_string())) {
            entry.count += 1;
            entry.total_work = entry.total_work.saturating_add(work);
            entry.max_work = entry.max_work.max(work);
            return;
        }
        if entries.len() >= self.capacity {
            // Evict the least-total-work entry (ties broken by key so the
            // choice is deterministic) to make room for the newcomer.
            let victim = entries
                .iter()
                .min_by(|(ka, a), (kb, b)| a.total_work.cmp(&b.total_work).then_with(|| ka.cmp(kb)))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                entries.remove(&victim);
            }
        }
        entries.insert(
            (index.to_string(), query.to_string()),
            Entry { count: 1, total_work: work, max_work: work },
        );
    }

    /// Renders the top `n` entries as one deterministic JSON object —
    /// `{"top":[{"index":"dblp","query":"twig joins","count":3,
    /// "total_work":120,"max_work":60},…]}` — ordered by total work
    /// descending (count descending, then key ascending on ties). With
    /// `index` set, only that index's entries are listed.
    pub fn render_json(&self, n: usize, index: Option<&str>) -> String {
        let mut rows: Vec<((String, String), Entry)> = {
            let entries = gks_trace::lockorder::track(
                "server/topk.entries",
                self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
            );
            entries
                .iter()
                .filter(|((ix, _), _)| index.is_none_or(|want| want == ix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        rows.sort_by(|(ka, a), (kb, b)| {
            b.total_work
                .cmp(&a.total_work)
                .then_with(|| b.count.cmp(&a.count))
                .then_with(|| ka.cmp(kb))
        });
        rows.truncate(n);
        let mut out = String::with_capacity(32 + rows.len() * 96);
        out.push_str("{\"top\":[");
        for (i, ((ix, query), entry)) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"index\":");
            gks_core::wire::push_json_str(&mut out, ix);
            out.push_str(",\"query\":");
            gks_core::wire::push_json_str(&mut out, query);
            use std::fmt::Write as _;
            let _ = write!(
                out,
                ",\"count\":{},\"total_work\":{},\"max_work\":{}}}",
                entry.count, entry.total_work, entry.max_work
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_whitespace_and_case() {
        assert_eq!(normalize_query("  Twig\t JOINS \n"), "twig joins");
        assert_eq!(normalize_query("twig joins"), "twig joins");
        assert_eq!(normalize_query(""), "");
    }

    #[test]
    fn records_aggregate_and_render_sorted() {
        let top = TopQueries::default();
        top.record("dblp", "cheap", 5);
        top.record("dblp", "heavy", 100);
        top.record("dblp", "heavy", 40);
        top.record("nasa", "medium", 60);
        let json = top.render_json(10, None);
        let heavy = json.find("\"heavy\"").unwrap();
        let medium = json.find("\"medium\"").unwrap();
        let cheap = json.find("\"cheap\"").unwrap();
        assert!(heavy < medium && medium < cheap, "{json}");
        assert!(json.contains("\"count\":2,\"total_work\":140,\"max_work\":100"), "{json}");
        // n truncates; the index filter narrows.
        assert!(!top.render_json(1, None).contains("medium"));
        let nasa = top.render_json(10, Some("nasa"));
        assert!(nasa.contains("medium") && !nasa.contains("heavy"), "{nasa}");
        assert_eq!(top.render_json(0, None), "{\"top\":[]}");
    }

    #[test]
    fn capacity_evicts_least_total_work() {
        let top = TopQueries::with_capacity(2);
        top.record("a", "big", 100);
        top.record("a", "small", 1);
        top.record("a", "newcomer", 50);
        let json = top.render_json(10, None);
        assert!(json.contains("big"), "{json}");
        assert!(json.contains("newcomer"), "{json}");
        assert!(!json.contains("small"), "the cheapest entry was evicted: {json}");
        // An existing key updates in place without evicting anyone.
        top.record("a", "big", 7);
        assert!(top.render_json(10, None).contains("\"count\":2"));
    }
}
