//! Typed errors for the serving layer. The server never panics on a bad
//! request or a dead socket — per-connection failures degrade to HTTP error
//! responses or dropped connections; only startup problems surface here.

use std::fmt;

/// Failure starting or talking to a `gks-serve` instance.
#[derive(Debug)]
pub enum ServeError {
    /// The listen address could not be bound.
    Bind {
        /// The address that failed to bind.
        addr: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Client-side I/O failure (HTTP client, load generator).
    Io(std::io::Error),
    /// The peer sent bytes that do not parse as an HTTP response.
    BadResponse(String),
    /// A configuration value is unusable (zero workers, empty workload, …).
    BadConfig(String),
    /// Loading (or hot-swap reloading) a catalog index failed.
    Index {
        /// The catalog route key of the index.
        name: String,
        /// What went wrong while loading it.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
            ServeError::BadResponse(m) => write!(f, "malformed HTTP response: {m}"),
            ServeError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            ServeError::Index { name, message } => write!(f, "index {name:?}: {message}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } => Some(source),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
