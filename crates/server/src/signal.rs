//! SIGTERM / SIGINT → a process-wide shutdown flag.
//!
//! The standard library exposes no signal API, and the workspace is
//! offline-only (no `signal-hook`/`libc` crates), so on Unix this module
//! registers a minimal handler through the C `signal(2)` symbol that std
//! already links against. The handler body is async-signal-safe: it only
//! stores to an atomic. Non-Unix builds compile to a flag that never fires
//! (callers fall back to ctrl-c terminating the process).

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been observed since
/// [`install_shutdown_handler`] ran.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Test/embedding hook: raise (or clear) the flag without a real signal.
pub fn request_shutdown(value: bool) {
    SHUTDOWN.store(value, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type Handler = extern "C" fn(i32);

    extern "C" {
        // `signal(2)`: returns the previous handler; the pointer-sized
        // return is declared as usize since we never inspect it.
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Registers the handler for SIGINT and SIGTERM; always succeeds here.
    pub fn install() -> bool {
        // SAFETY: `signal` is the C library's own registration call; the
        // handler is a plain fn pointer that performs one atomic store.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
        true
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal support off Unix; reports that nothing was installed.
    pub fn install() -> bool {
        false
    }
}

/// Registers SIGINT/SIGTERM handlers that set the shutdown flag. Returns
/// `false` on platforms without signal support (the flag then only changes
/// via [`request_shutdown`]). Safe to call more than once.
pub fn install_shutdown_handler() -> bool {
    imp::install()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        request_shutdown(false);
        assert!(!shutdown_requested());
        request_shutdown(true);
        assert!(shutdown_requested());
        request_shutdown(false);
    }
}
