//! SIGTERM / SIGINT → a process-wide shutdown flag; SIGHUP → a reload flag.
//!
//! The standard library exposes no signal API, and the workspace is
//! offline-only (no `signal-hook`/`libc` crates), so on Unix this module
//! registers minimal handlers through the C `signal(2)` symbol that std
//! already links against. The handler bodies are async-signal-safe: they
//! only store to atomics. Non-Unix builds compile to flags that never fire
//! (callers fall back to ctrl-c terminating the process).

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static RELOAD: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been observed since
/// [`install_shutdown_handler`] ran.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Test/embedding hook: raise (or clear) the flag without a real signal.
pub fn request_shutdown(value: bool) {
    SHUTDOWN.store(value, Ordering::SeqCst);
}

/// Consumes a pending SIGHUP reload request, clearing the flag. The CLI's
/// serve loop polls this and hot-swaps the default index when it fires.
pub fn take_reload_request() -> bool {
    RELOAD.swap(false, Ordering::SeqCst)
}

/// Test/embedding hook: raise (or clear) the reload flag without a signal.
pub fn request_reload(value: bool) {
    RELOAD.store(value, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type Handler = extern "C" fn(i32);

    extern "C" {
        // `signal(2)`: returns the previous handler; the pointer-sized
        // return is declared as usize since we never inspect it.
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    extern "C" fn on_reload(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        super::RELOAD.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Registers SIGINT/SIGTERM → shutdown and SIGHUP → reload; always
    /// succeeds here.
    pub fn install() -> bool {
        // SAFETY: `signal` is the C library's own registration call; the
        // handlers are plain fn pointers that perform one atomic store each.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
            signal(SIGHUP, on_reload);
        }
        true
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal support off Unix; reports that nothing was installed.
    pub fn install() -> bool {
        false
    }
}

/// Registers SIGINT/SIGTERM handlers that set the shutdown flag and a
/// SIGHUP handler that sets the reload flag. Returns `false` on platforms
/// without signal support (the flags then only change via
/// [`request_shutdown`] / [`request_reload`]). Safe to call more than once.
pub fn install_shutdown_handler() -> bool {
    imp::install()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        request_shutdown(false);
        assert!(!shutdown_requested());
        request_shutdown(true);
        assert!(shutdown_requested());
        request_shutdown(false);
    }

    #[test]
    fn reload_flag_is_consumed_on_take() {
        request_reload(false);
        assert!(!take_reload_request());
        request_reload(true);
        assert!(take_reload_request(), "a pending request is observed once");
        assert!(!take_reload_request(), "…and cleared by the observation");
    }
}
