//! A bounded MPMC job queue for the worker pool.
//!
//! Admission control lives here: [`BoundedQueue::try_push`] never blocks and
//! fails immediately when the queue is at capacity, so the accept loop can
//! turn overload into a fast `503 + Retry-After` instead of queueing
//! unboundedly (and eventually OOMing) or blocking the listener.
//!
//! Shutdown is drain-style: after [`BoundedQueue::shutdown`], pushes fail
//! but [`BoundedQueue::pop`] keeps returning queued jobs until the queue is
//! empty, then returns `None` — workers finish accepted work before exiting.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use gks_trace::lockorder::{self, Tracked};

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    shutdown: bool,
}

/// A fixed-capacity FIFO shared between the accept loop and the workers.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

fn lock<T>(m: &Mutex<State<T>>) -> Tracked<MutexGuard<'_, State<T>>> {
    // Poison only means another thread panicked while holding the lock; the
    // queue of sockets is still structurally sound, so continue draining.
    lockorder::track("server/pool.state", m.lock().unwrap_or_else(PoisonError::into_inner))
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item` without blocking. Returns it back when the queue is
    /// full (admission reject) or shutting down.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = lock(&self.state);
        if state.shutdown || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning it) or the queue is both
    /// shut down and empty (returning `None` — the worker should exit).
    pub fn pop(&self) -> Option<T> {
        let mut state = lock(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.shutdown {
                return None;
            }
            state = state.wait(&self.available);
        }
    }

    /// Stops admissions and wakes every blocked consumer; already-queued
    /// items remain poppable (drain semantics).
    pub fn shutdown(&self) {
        lock(&self.state).shutdown = true;
        self.available.notify_all();
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "third push must be rejected");
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "space freed by pop");
    }

    #[test]
    fn drains_after_shutdown() {
        let q = BoundedQueue::new(8);
        q.try_push(1).ok();
        q.try_push(2).ok();
        q.shutdown();
        assert_eq!(q.try_push(3), Err(3), "no admissions after shutdown");
        assert_eq!(q.pop(), Some(1), "queued work still drains");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "then workers are released");
    }

    #[test]
    fn unblocks_waiting_consumers_on_shutdown() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn producers_and_consumers_agree_on_totals() {
        let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(16));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let mut pushed = 0u64;
        for v in 1..=200u64 {
            let mut item = v;
            loop {
                match q.try_push(item) {
                    Ok(()) => {
                        pushed += v;
                        break;
                    }
                    Err(back) => {
                        item = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
        q.shutdown();
        let consumed: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(consumed, pushed);
    }
}
