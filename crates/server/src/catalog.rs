//! The engine catalog: many resident indexes in one process, each
//! independently hot-swappable.
//!
//! The paper evaluates GKS over several corpora (DBLP, IMDB, Wikipedia);
//! serving them from one process requires replacing the single-engine
//! assumption with a registry. The catalog maps a **route key** (the
//! `/ix/<name>/…` URL prefix, with a configurable default for bare
//! `/search`) to a [`ResidentIndex`] bundling the engine generation, its
//! result cache, and per-index counters.
//!
//! **Hot-swap protocol.** Each resident index holds one or more **shard
//! slots**, each with its current generation as `RwLock<Arc<Loaded>>`. A
//! request takes a *snapshot* (`Arc` clone under a read lock) once per
//! shard, then runs entirely against that generation set — search, render,
//! cache tagging. [`ResidentIndex::reload`] builds each replacement engine
//! *before* taking the write lock, so the lock is held only for the pointer
//! swap; in-flight requests finish on the old engines, which are freed when
//! the last snapshot drops. Stale cache entries are impossible by
//! construction: every cache entry is tagged with the (combined) identity it
//! was computed against ([`crate::cache::ResultCache::get_for`]), and the
//! swap additionally bulk-clears the superseded generation's entries.
//!
//! **Sharded indexes.** A resident index backed by N > 1 shards (a
//! document-partitioned corpus, see `gks_index::shard`) reloads its shards
//! one at a time. A monotonically increasing **epoch** counter is bumped
//! after every slot swap; [`ResidentIndex::snapshot_all`] reads the epoch on
//! both sides of the slot sweep and retries until both reads agree, so a
//! scatter can never be handed shards from two different reload sweeps. The
//! server additionally re-reads the epoch after the scatter completes and
//! retries once on a new generation before giving up (the
//! `gks_shard_retries_total` / `gks_shard_mixed_generation_total` metrics).
//!
//! Route keys are normalized ([`normalize_path`]) — duplicate slashes,
//! trailing slashes, and ASCII case differences all resolve to the same
//! index and therefore the same cache.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use gks_core::engine::Engine;
use gks_index::{GksIndex, ShardManifest};
use gks_trace::{CompletedTrace, Histogram, SpanKind};

use crate::cache::ResultCache;
use crate::error::ServeError;
use crate::metrics::{Endpoint, IndexMetricsView};
use crate::{index_identity, ServeConfig};

/// Route key used for an index registered without an explicit name (the
/// single positional `gks serve` path).
pub const DEFAULT_INDEX_NAME: &str = "default";

/// One engine generation: the engine plus the identity fingerprint of the
/// index it was built from. Requests snapshot this pair once and run
/// entirely against it, so a mid-request hot-swap can never mix generations.
#[derive(Debug)]
pub struct Loaded {
    /// The resident engine of this generation.
    pub engine: Arc<Engine>,
    /// Identity fingerprint ([`index_identity`]) of the engine's index.
    pub identity: u64,
}

#[derive(Debug)]
enum IndexSource {
    /// An already-built engine (tests, benches). Not reloadable.
    Engine(Arc<Engine>),
    /// A persisted `.gksix` file; reloadable by re-reading the path.
    Path(PathBuf),
    /// N self-contained shard index files over a document-partitioned
    /// corpus; each shard reloads by re-reading its own path.
    Shards(Vec<PathBuf>),
    /// N already-built shard engines (tests, benches). Not reloadable.
    ShardEngines(Vec<Arc<Engine>>),
}

/// How an index enters the catalog: a route key plus either a prebuilt
/// engine or one or more paths to load (and later reload) it from.
#[derive(Debug)]
pub struct IndexSpec {
    name: String,
    source: IndexSource,
}

impl IndexSpec {
    /// A spec wrapping an already-built engine. The index will serve but
    /// cannot be hot-swap reloaded (there is no source to re-read).
    pub fn with_engine(name: impl Into<String>, engine: Arc<Engine>) -> IndexSpec {
        IndexSpec { name: name.into(), source: IndexSource::Engine(engine) }
    }

    /// A spec loading the engine from a persisted `.gksix` file; the same
    /// path is re-read on every reload.
    pub fn with_source(name: impl Into<String>, path: impl Into<PathBuf>) -> IndexSpec {
        IndexSpec { name: name.into(), source: IndexSource::Path(path.into()) }
    }

    /// A spec registering one logical index backed by `paths.len()` shard
    /// index files, in global document order. Each shard is re-read from
    /// its own path on reload (one slot at a time).
    pub fn with_shard_paths(
        name: impl Into<String>,
        paths: impl IntoIterator<Item = impl Into<PathBuf>>,
    ) -> IndexSpec {
        let paths: Vec<PathBuf> = paths.into_iter().map(Into::into).collect();
        IndexSpec { name: name.into(), source: IndexSource::Shards(paths) }
    }

    /// A spec wrapping already-built shard engines in global document order
    /// (tests, benches). Serves sharded but cannot be hot-swap reloaded.
    pub fn with_shard_engines(
        name: impl Into<String>,
        engines: impl IntoIterator<Item = Arc<Engine>>,
    ) -> IndexSpec {
        IndexSpec {
            name: name.into(),
            source: IndexSource::ShardEngines(engines.into_iter().collect()),
        }
    }

    /// A spec loading the shard set recorded in a shard manifest file
    /// (written by `gks index --shards N`); relative shard paths resolve
    /// against the manifest's directory.
    pub fn with_manifest(
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<IndexSpec, ServeError> {
        let name = name.into();
        let manifest = ShardManifest::load(path.as_ref())
            .map_err(|e| ServeError::Index { name: name.clone(), message: e.to_string() })?;
        let paths: Vec<PathBuf> = manifest.shards.iter().map(|s| s.path.clone()).collect();
        Ok(IndexSpec { name, source: IndexSource::Shards(paths) })
    }

    /// The route key this spec registers under.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The number of engine phases tracked per index (`SpanKind::PHASES`).
pub const PHASE_COUNT: usize = SpanKind::PHASES.len();

/// Per-index counters: request and cache totals plus per-phase latency
/// histograms, all lock-free.
#[derive(Debug)]
pub struct IndexCounters {
    /// Queries (`/search` + `/suggest`) routed to this index.
    pub requests_total: AtomicU64,
    /// Result-cache hits for this index.
    pub cache_hits_total: AtomicU64,
    /// Result-cache misses for this index.
    pub cache_misses_total: AtomicU64,
    /// Completed hot-swap reloads.
    pub reloads_total: AtomicU64,
    /// Per-phase latency histograms, in [`SpanKind::PHASES`] order.
    pub phases: [Histogram; PHASE_COUNT],
}

impl IndexCounters {
    fn new() -> IndexCounters {
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: Histogram = Histogram::new();
        IndexCounters {
            requests_total: AtomicU64::new(0),
            cache_hits_total: AtomicU64::new(0),
            cache_misses_total: AtomicU64::new(0),
            reloads_total: AtomicU64::new(0),
            phases: [EMPTY; PHASE_COUNT],
        }
    }
}

/// One shard slot of a resident index: the shard's current engine
/// generation plus the path reloads re-read (absent for engine-backed
/// shards).
#[derive(Debug)]
struct ShardSlot {
    source: Option<PathBuf>,
    loaded: RwLock<Arc<Loaded>>,
}

/// A consistent point-in-time snapshot of every shard of a resident index,
/// produced by [`ResidentIndex::snapshot_all`]. The `Arc`s pin the
/// generations; `epoch` is the reload epoch both sides of the slot sweep
/// agreed on, so the set never mixes shards from two reload sweeps.
#[derive(Debug)]
pub struct ShardSet {
    /// The pinned shard generations, in global document order.
    pub shards: Vec<Arc<Loaded>>,
    /// The reload epoch the snapshot was taken at.
    pub epoch: u64,
    /// Combined identity of the snapshot (equals the single shard's
    /// identity for an unsharded index).
    pub identity: u64,
    /// Global `DocId` base of each shard, derived from the snapshot's
    /// per-shard document counts.
    pub doc_bases: Vec<u32>,
}

/// Folds per-shard identity fingerprints into one logical-index identity.
/// A single shard keeps its raw identity (so an unsharded index fingerprints
/// exactly as before sharding existed); N > 1 shards FNV-fold theirs, mixing
/// in the count so a prefix subset can never collide with the full set.
fn combined_identity(identities: &[u64]) -> u64 {
    match identities {
        [one] => *one,
        many => {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            let mut mix = |v: u64| {
                for b in v.to_le_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            };
            mix(many.len() as u64);
            for &id in many {
                mix(id);
            }
            h
        }
    }
}

fn doc_bases_of(shards: &[Arc<Loaded>]) -> Vec<u32> {
    let mut bases = Vec::with_capacity(shards.len());
    let mut next = 0u32;
    for loaded in shards {
        bases.push(next);
        let count = u32::try_from(loaded.engine.index().stats().doc_count).unwrap_or(u32::MAX);
        next = next.saturating_add(count);
    }
    bases
}

/// One resident (logical) index: one or more shard slots each holding their
/// current engine generation behind a `RwLock`, the identity-keyed result
/// cache shared by all shards, a reload epoch, and per-index counters.
#[derive(Debug)]
pub struct ResidentIndex {
    name: String,
    shards: Vec<ShardSlot>,
    /// Bumped after every slot swap; lets readers detect a reload sweep
    /// racing their slot sweep (see [`ResidentIndex::snapshot_all`]).
    epoch: AtomicU64,
    cache: ResultCache,
    counters: IndexCounters,
}

fn load_engine(name: &str, path: &Path) -> Result<Arc<Engine>, ServeError> {
    let index = GksIndex::load(path)
        .map_err(|e| ServeError::Index { name: name.to_string(), message: e.to_string() })?;
    Ok(Arc::new(Engine::from_index(index)))
}

fn slot_of(engine: Arc<Engine>, source: Option<PathBuf>) -> ShardSlot {
    let identity = index_identity(engine.index());
    ShardSlot { source, loaded: RwLock::new(Arc::new(Loaded { engine, identity })) }
}

impl ResidentIndex {
    fn from_spec(spec: IndexSpec, config: &ServeConfig) -> Result<ResidentIndex, ServeError> {
        let name = spec.name.to_ascii_lowercase();
        if name.is_empty() || name.contains('/') || name.chars().any(char::is_whitespace) {
            return Err(ServeError::BadConfig(format!(
                "index name {:?} is not a usable route key (must be non-empty, \
                 without '/' or whitespace)",
                spec.name
            )));
        }
        let shards: Vec<ShardSlot> = match spec.source {
            IndexSource::Engine(engine) => vec![slot_of(engine, None)],
            IndexSource::Path(path) => vec![slot_of(load_engine(&name, &path)?, Some(path))],
            IndexSource::Shards(paths) => {
                if paths.is_empty() {
                    return Err(ServeError::BadConfig(format!(
                        "sharded index {name:?} lists no shard paths"
                    )));
                }
                paths
                    .into_iter()
                    .map(|path| Ok(slot_of(load_engine(&name, &path)?, Some(path))))
                    .collect::<Result<_, ServeError>>()?
            }
            IndexSource::ShardEngines(engines) => {
                if engines.is_empty() {
                    return Err(ServeError::BadConfig(format!(
                        "sharded index {name:?} lists no shard engines"
                    )));
                }
                engines.into_iter().map(|engine| slot_of(engine, None)).collect()
            }
        };
        let resident = ResidentIndex {
            name,
            shards,
            epoch: AtomicU64::new(0),
            cache: ResultCache::with_admission(
                config.cache_bytes,
                config.cache_shards,
                0,
                config.cache_admission,
            ),
            counters: IndexCounters::new(),
        };
        resident.cache.ensure_identity(resident.identity());
        Ok(resident)
    }

    /// The normalized route key of this index.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `.gksix` path reloads re-read for the first shard, if it was
    /// loaded from one.
    pub fn source(&self) -> Option<&Path> {
        self.shards.first().and_then(|s| s.source.as_deref())
    }

    /// Number of shard slots backing this index (1 for unsharded).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether this index fans queries out over more than one shard.
    pub fn is_sharded(&self) -> bool {
        self.shards.len() > 1
    }

    /// The current reload epoch (bumped after every slot swap).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn slot_snapshot(&self, i: usize) -> Arc<Loaded> {
        // Slot indexes come from iterating `self.shards`, always in range;
        // fall back to slot 0 rather than panic if that ever changes.
        let idx = if i < self.shards.len() { i } else { 0 };
        let slot = gks_trace::lockorder::track(
            "server/catalog.loaded",
            self.shards[idx]
                .loaded
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        Arc::clone(&slot)
    }

    /// The current engine generation of the **first** shard. The returned
    /// `Arc` pins the generation: a reload swapping the slot does not affect
    /// the snapshot, and the old engine is freed when the last snapshot
    /// drops. Unsharded indexes (the common case) have exactly one shard, so
    /// this is their whole state; sharded callers want
    /// [`ResidentIndex::snapshot_all`].
    pub fn snapshot(&self) -> Arc<Loaded> {
        self.slot_snapshot(0)
    }

    /// A consistent snapshot of **every** shard, or `None` if a reload
    /// storm kept invalidating the sweep. The epoch is read on both sides
    /// of the slot sweep and the sweep retries until both reads agree, so a
    /// returned set never mixes shards from two reload sweeps — the
    /// precondition for the gather stage's lossless merge. `None` is the
    /// only mixed-generation outcome and requires ~64 reload sweeps to land
    /// inside one snapshot attempt each; callers turn it into a `503`.
    pub fn snapshot_all(&self) -> Option<ShardSet> {
        for _ in 0..64 {
            let before = self.epoch.load(Ordering::Acquire);
            let shards: Vec<Arc<Loaded>> =
                (0..self.shards.len()).map(|i| self.slot_snapshot(i)).collect();
            if self.epoch.load(Ordering::Acquire) == before {
                let identity =
                    combined_identity(&shards.iter().map(|l| l.identity).collect::<Vec<u64>>());
                let doc_bases = doc_bases_of(&shards);
                return Some(ShardSet { shards, epoch: before, identity, doc_bases });
            }
            std::hint::spin_loop();
        }
        None
    }

    /// Combined identity fingerprint of the current generation set (the raw
    /// shard identity when unsharded).
    pub fn identity(&self) -> u64 {
        let ids: Vec<u64> =
            (0..self.shards.len()).map(|i| self.slot_snapshot(i).identity).collect();
        combined_identity(&ids)
    }

    /// This index's result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// This index's counters.
    pub fn counters(&self) -> &IndexCounters {
        &self.counters
    }

    /// Swaps slot `i` to a new generation and bumps the epoch. The write
    /// lock is held only for the pointer swap.
    fn swap_slot(&self, i: usize, engine: Arc<Engine>, identity: u64) {
        let replacement = Arc::new(Loaded { engine, identity });
        if let Some(shard) = self.shards.get(i) {
            let mut slot = gks_trace::lockorder::track(
                "server/catalog.loaded",
                shard.loaded.write().unwrap_or_else(std::sync::PoisonError::into_inner),
            );
            **slot = replacement;
        }
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Hot-swap reload: re-reads every shard's source path into a fresh
    /// engine (the expensive part, done without any lock held) and swaps the
    /// slots in **one at a time**, bumping the epoch after each swap so
    /// concurrent scatters detect the sweep. In-flight requests holding old
    /// snapshots finish undisturbed. Returns the combined
    /// `(identity_before, identity_after)`.
    pub fn reload(&self) -> Result<(u64, u64), ServeError> {
        if self.shards.iter().any(|s| s.source.is_none()) {
            return Err(ServeError::BadConfig(format!(
                "index {:?} was registered without a source path and cannot be reloaded",
                self.name
            )));
        }
        let before = self.identity();
        for i in 0..self.shards.len() {
            let Some(path) = self.shards[i].source.clone() else {
                continue;
            };
            let engine = load_engine(&self.name, &path)?;
            let identity = index_identity(engine.index());
            self.swap_slot(i, engine, identity);
            // Re-bind the cache after every swap: entries tagged with a
            // mid-sweep combined identity are unservable either way, this
            // just reclaims them eagerly.
            self.cache.ensure_identity(self.identity());
        }
        self.counters.reloads_total.fetch_add(1, Ordering::Relaxed);
        Ok((before, self.identity()))
    }

    /// Reloads only shard `i` from its source path — the shard-granular
    /// counterpart of [`reload`] (`POST /admin/reload?index=<name>&shard=<i>`).
    /// Returns the combined `(identity_before, identity_after)`.
    pub fn reload_shard(&self, i: usize) -> Result<(u64, u64), ServeError> {
        let Some(shard) = self.shards.get(i) else {
            return Err(ServeError::BadConfig(format!(
                "index {:?} has {} shards; shard {i} does not exist",
                self.name,
                self.shards.len()
            )));
        };
        let Some(path) = shard.source.clone() else {
            return Err(ServeError::BadConfig(format!(
                "shard {i} of index {:?} was registered without a source path and cannot \
                 be reloaded",
                self.name
            )));
        };
        let before = self.identity();
        let engine = load_engine(&self.name, &path)?;
        let identity = index_identity(engine.index());
        self.swap_slot(i, engine, identity);
        let after = self.identity();
        self.counters.reloads_total.fetch_add(1, Ordering::Relaxed);
        self.cache.ensure_identity(after);
        Ok((before, after))
    }

    /// Installs a replacement engine generation in the **first** shard slot
    /// (the tail of [`reload`] for unsharded indexes, also usable directly
    /// by tests). The write lock is held only for the pointer swap. Returns
    /// the combined `(identity_before, identity_after)`.
    pub fn swap_engine(&self, engine: Arc<Engine>, identity: u64) -> (u64, u64) {
        let before = self.identity();
        self.swap_slot(0, engine, identity);
        let after = self.identity();
        self.counters.reloads_total.fetch_add(1, Ordering::Relaxed);
        // Bulk-evict the superseded generation's entries. Correctness does
        // not depend on this — per-entry identity tags already make stale
        // entries unservable — it just reclaims the memory eagerly.
        self.cache.ensure_identity(after);
        (before, after)
    }

    /// Folds the phase spans of a completed request trace into this index's
    /// per-phase histograms.
    pub fn record_phases(&self, trace: &CompletedTrace) {
        for (i, kind) in SpanKind::PHASES.iter().enumerate() {
            if trace.root.has_kind(*kind) {
                self.counters.phases[i].record(trace.root.kind_micros(*kind));
            }
        }
    }

    /// Point-in-time view of this index for `/metrics` rendering.
    pub fn metrics_view(&self) -> IndexMetricsView<'_> {
        IndexMetricsView {
            name: &self.name,
            cache: self.cache.stats(),
            identity: self.identity(),
            shard_count: self.shards.len(),
            requests_total: self.counters.requests_total.load(Ordering::Relaxed),
            cache_hits_total: self.counters.cache_hits_total.load(Ordering::Relaxed),
            cache_misses_total: self.counters.cache_misses_total.load(Ordering::Relaxed),
            cache_admitted_total: self.cache.admitted_total(),
            cache_rejected_total: self.cache.rejected_total(),
            reloads_total: self.counters.reloads_total.load(Ordering::Relaxed),
            phases: &self.counters.phases,
        }
    }
}

/// The registry of resident indexes, in registration order, with one of
/// them designated the default for un-prefixed endpoint paths.
#[derive(Debug)]
pub struct EngineCatalog {
    indexes: Vec<Arc<ResidentIndex>>,
    default: usize,
}

impl EngineCatalog {
    /// Builds the catalog, loading every path-backed spec. `default` names
    /// the index bare `/search` addresses; `None` picks the first spec.
    pub fn build(
        specs: Vec<IndexSpec>,
        default: Option<&str>,
        config: &ServeConfig,
    ) -> Result<EngineCatalog, ServeError> {
        if specs.is_empty() {
            return Err(ServeError::BadConfig("the catalog needs at least one index".into()));
        }
        let mut indexes: Vec<Arc<ResidentIndex>> = Vec::with_capacity(specs.len());
        for spec in specs {
            let resident = ResidentIndex::from_spec(spec, config)?;
            if indexes.iter().any(|r| r.name == resident.name) {
                return Err(ServeError::BadConfig(format!(
                    "duplicate index name {:?} (route keys are case-insensitive)",
                    resident.name
                )));
            }
            indexes.push(Arc::new(resident));
        }
        let default = match default {
            None => 0,
            Some(name) => {
                let key = name.to_ascii_lowercase();
                indexes.iter().position(|r| r.name == key).ok_or_else(|| {
                    ServeError::BadConfig(format!("default index {name:?} is not in the catalog"))
                })?
            }
        };
        Ok(EngineCatalog { indexes, default })
    }

    /// Looks up an index by its (already normalized) route key.
    pub fn get(&self, name: &str) -> Option<&Arc<ResidentIndex>> {
        self.indexes.iter().find(|r| r.name == name)
    }

    /// The index bare (un-prefixed) endpoint paths address.
    pub fn default_index(&self) -> &Arc<ResidentIndex> {
        // `default` is a validated position into a non-empty vector.
        &self.indexes[self.default]
    }

    /// All resident indexes, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<ResidentIndex>> {
        self.indexes.iter()
    }

    /// Number of resident indexes (always ≥ 1).
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// Never true — construction rejects an empty catalog. Present because
    /// `len` without `is_empty` trips clippy.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }
}

/// Normalizes a request path into its route form: duplicate slashes
/// collapse, trailing slashes drop (except the root itself), and ASCII case
/// folds — `/ix/DBLP//search/` and `/ix/dblp/search` are the same route and
/// therefore reach the same index and cache. Percent-decoding happened
/// upstream in the HTTP parser.
pub fn normalize_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len() + 1);
    out.push('/');
    for segment in path.split('/').filter(|s| !s.is_empty()) {
        if !out.ends_with('/') {
            out.push('/');
        }
        for c in segment.chars() {
            out.push(c.to_ascii_lowercase());
        }
    }
    out
}

/// A routed request: which endpoint, and which index it explicitly
/// addressed (`None` means the catalog default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The endpoint the (suffix) path names.
    pub endpoint: Endpoint,
    /// Route key from an `/ix/<name>/…` prefix, if one was present.
    pub index: Option<String>,
}

/// Parses a request path into a [`Route`]: `/ix/<name>/<endpoint>` selects
/// index `<name>`, any other path addresses the default index. The path is
/// normalized first ([`normalize_path`]).
pub fn route_path(path: &str) -> Route {
    let normalized = normalize_path(path);
    if let Some(rest) = normalized.strip_prefix("/ix/") {
        return match rest.split_once('/') {
            Some((name, suffix)) if !name.is_empty() => Route {
                endpoint: Endpoint::of_path(&format!("/{suffix}")),
                index: Some(name.into()),
            },
            // `/ix/<name>` with no endpoint suffix, or `/ix//…`: addressed
            // an index but not an endpoint.
            _ => Route { endpoint: Endpoint::Other, index: None },
        };
    }
    Route { endpoint: Endpoint::of_path(&normalized), index: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_index::{Corpus, IndexOptions};

    fn tiny_engine(tag: &str) -> Arc<Engine> {
        let xml = format!("<r><a>{tag}</a><a>shared words</a></r>");
        // The tag doubles as the document name: the identity fingerprint
        // mixes doc names, so distinct tags guarantee distinct identities
        // even when the structural stats coincide.
        let corpus = Corpus::from_named_strs([(tag, xml.as_str())]).unwrap();
        Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap())
    }

    #[test]
    fn normalizer_collapses_slashes_case_and_trailers() {
        assert_eq!(normalize_path("/ix/dblp/search"), "/ix/dblp/search");
        assert_eq!(normalize_path("/ix/dblp//search"), "/ix/dblp/search");
        assert_eq!(normalize_path("/ix/DBLP/Search/"), "/ix/dblp/search");
        assert_eq!(normalize_path("//ix///dblp///search//"), "/ix/dblp/search");
        assert_eq!(normalize_path("/"), "/");
        assert_eq!(normalize_path(""), "/");
        assert_eq!(normalize_path("/debug/traces"), "/debug/traces");
    }

    #[test]
    fn routes_resolve_prefix_and_default() {
        let r = route_path("/ix/dblp/search");
        assert_eq!(r.endpoint, Endpoint::Search);
        assert_eq!(r.index.as_deref(), Some("dblp"));
        // Normalization variants are the same route.
        assert_eq!(route_path("/ix/DBLP//search/"), r);
        assert_eq!(route_path("/search"), Route { endpoint: Endpoint::Search, index: None });
        assert_eq!(
            route_path("/ix/nasa/debug/traces"),
            Route { endpoint: Endpoint::DebugTraces, index: Some("nasa".into()) }
        );
        assert_eq!(route_path("/ix/dblp/nope").endpoint, Endpoint::Other);
        assert_eq!(route_path("/ix/dblp").endpoint, Endpoint::Other);
        assert_eq!(route_path("/ix//search").endpoint, Endpoint::Other);
    }

    #[test]
    fn catalog_registers_looks_up_and_defaults() {
        let config = ServeConfig::default();
        let specs = vec![
            IndexSpec::with_engine("Alpha", tiny_engine("alpha")),
            IndexSpec::with_engine("beta", tiny_engine("beta")),
        ];
        let catalog = EngineCatalog::build(specs, Some("beta"), &config).unwrap();
        assert_eq!(catalog.len(), 2);
        assert!(!catalog.is_empty());
        assert_eq!(catalog.default_index().name(), "beta");
        // Registration lowercased "Alpha"; lookups use normalized keys.
        assert!(catalog.get("alpha").is_some());
        assert!(catalog.get("nope").is_none());
        assert_ne!(
            catalog.get("alpha").unwrap().identity(),
            catalog.get("beta").unwrap().identity()
        );
    }

    #[test]
    fn catalog_rejects_bad_configurations() {
        let config = ServeConfig::default();
        let empty: Vec<IndexSpec> = Vec::new();
        assert!(EngineCatalog::build(empty, None, &config).is_err());
        let dup = vec![
            IndexSpec::with_engine("a", tiny_engine("x")),
            IndexSpec::with_engine("A", tiny_engine("y")),
        ];
        assert!(EngineCatalog::build(dup, None, &config).is_err(), "case-insensitive duplicate");
        let missing_default = vec![IndexSpec::with_engine("a", tiny_engine("x"))];
        assert!(EngineCatalog::build(missing_default, Some("b"), &config).is_err());
        let bad_name = vec![IndexSpec::with_engine("a/b", tiny_engine("x"))];
        assert!(EngineCatalog::build(bad_name, None, &config).is_err());
        let missing_path = vec![IndexSpec::with_source("a", "/nonexistent/x.gksix")];
        assert!(matches!(
            EngineCatalog::build(missing_path, None, &config),
            Err(ServeError::Index { .. })
        ));
    }

    #[test]
    fn swap_engine_changes_identity_and_clears_cache() {
        let config = ServeConfig::default();
        let specs = vec![IndexSpec::with_engine("a", tiny_engine("one"))];
        let catalog = EngineCatalog::build(specs, None, &config).unwrap();
        let resident = catalog.get("a").unwrap();
        let old = resident.snapshot();
        resident.cache().put("k".into(), Arc::from(&b"v"[..]));
        assert!(resident.cache().get("k").is_some());
        assert!(resident.reload().is_err(), "engine-backed indexes cannot reload");

        let replacement = tiny_engine("two");
        let new_identity = index_identity(replacement.index());
        let (before, after) = resident.swap_engine(replacement, new_identity);
        assert_eq!(before, old.identity);
        assert_eq!(after, new_identity);
        assert_ne!(before, after);
        assert_eq!(resident.identity(), new_identity);
        assert_eq!(resident.counters().reloads_total.load(Ordering::Relaxed), 1);
        assert!(resident.cache().get("k").is_none(), "swap clears the old generation");
        // The pre-swap snapshot still works: old generation pinned.
        assert_eq!(old.identity, before);
        assert!(Arc::strong_count(&old.engine) >= 1);
    }
}
