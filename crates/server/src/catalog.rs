//! The engine catalog: many resident indexes in one process, each
//! independently hot-swappable.
//!
//! The paper evaluates GKS over several corpora (DBLP, IMDB, Wikipedia);
//! serving them from one process requires replacing the single-engine
//! assumption with a registry. The catalog maps a **route key** (the
//! `/ix/<name>/…` URL prefix, with a configurable default for bare
//! `/search`) to a [`ResidentIndex`] bundling the engine generation, its
//! result cache, and per-index counters.
//!
//! **Hot-swap protocol.** Each resident index holds its current generation
//! as `RwLock<Arc<Loaded>>`. A request takes a *snapshot* (`Arc` clone under
//! a read lock) once, then runs entirely against that generation — search,
//! render, cache tagging. [`ResidentIndex::reload`] builds the replacement
//! engine *before* taking the write lock, so the lock is held only for the
//! pointer swap; in-flight requests finish on the old engine, which is freed
//! when the last snapshot drops. Stale cache entries are impossible by
//! construction: every cache entry is tagged with the identity it was
//! computed against ([`crate::cache::ResultCache::get_for`]), and the swap
//! additionally bulk-clears the superseded generation's entries.
//!
//! Route keys are normalized ([`normalize_path`]) — duplicate slashes,
//! trailing slashes, and ASCII case differences all resolve to the same
//! index and therefore the same cache.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use gks_core::engine::Engine;
use gks_index::GksIndex;
use gks_trace::{CompletedTrace, Histogram, SpanKind};

use crate::cache::ResultCache;
use crate::error::ServeError;
use crate::metrics::{Endpoint, IndexMetricsView};
use crate::{index_identity, ServeConfig};

/// Route key used for an index registered without an explicit name (the
/// single positional `gks serve` path).
pub const DEFAULT_INDEX_NAME: &str = "default";

/// One engine generation: the engine plus the identity fingerprint of the
/// index it was built from. Requests snapshot this pair once and run
/// entirely against it, so a mid-request hot-swap can never mix generations.
#[derive(Debug)]
pub struct Loaded {
    /// The resident engine of this generation.
    pub engine: Arc<Engine>,
    /// Identity fingerprint ([`index_identity`]) of the engine's index.
    pub identity: u64,
}

#[derive(Debug)]
enum IndexSource {
    /// An already-built engine (tests, benches). Not reloadable.
    Engine(Arc<Engine>),
    /// A persisted `.gksix` file; reloadable by re-reading the path.
    Path(PathBuf),
}

/// How an index enters the catalog: a route key plus either a prebuilt
/// engine or a path to load (and later reload) it from.
#[derive(Debug)]
pub struct IndexSpec {
    name: String,
    source: IndexSource,
}

impl IndexSpec {
    /// A spec wrapping an already-built engine. The index will serve but
    /// cannot be hot-swap reloaded (there is no source to re-read).
    pub fn with_engine(name: impl Into<String>, engine: Arc<Engine>) -> IndexSpec {
        IndexSpec { name: name.into(), source: IndexSource::Engine(engine) }
    }

    /// A spec loading the engine from a persisted `.gksix` file; the same
    /// path is re-read on every reload.
    pub fn with_source(name: impl Into<String>, path: impl Into<PathBuf>) -> IndexSpec {
        IndexSpec { name: name.into(), source: IndexSource::Path(path.into()) }
    }

    /// The route key this spec registers under.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The number of engine phases tracked per index (`SpanKind::PHASES`).
pub const PHASE_COUNT: usize = SpanKind::PHASES.len();

/// Per-index counters: request and cache totals plus per-phase latency
/// histograms, all lock-free.
#[derive(Debug)]
pub struct IndexCounters {
    /// Queries (`/search` + `/suggest`) routed to this index.
    pub requests_total: AtomicU64,
    /// Result-cache hits for this index.
    pub cache_hits_total: AtomicU64,
    /// Result-cache misses for this index.
    pub cache_misses_total: AtomicU64,
    /// Completed hot-swap reloads.
    pub reloads_total: AtomicU64,
    /// Per-phase latency histograms, in [`SpanKind::PHASES`] order.
    pub phases: [Histogram; PHASE_COUNT],
}

impl IndexCounters {
    fn new() -> IndexCounters {
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: Histogram = Histogram::new();
        IndexCounters {
            requests_total: AtomicU64::new(0),
            cache_hits_total: AtomicU64::new(0),
            cache_misses_total: AtomicU64::new(0),
            reloads_total: AtomicU64::new(0),
            phases: [EMPTY; PHASE_COUNT],
        }
    }
}

/// One resident index: the current engine generation behind a `RwLock`,
/// its identity-keyed result cache, the optional source path reloads
/// re-read, and per-index counters.
#[derive(Debug)]
pub struct ResidentIndex {
    name: String,
    source: Option<PathBuf>,
    loaded: RwLock<Arc<Loaded>>,
    cache: ResultCache,
    counters: IndexCounters,
}

fn load_engine(name: &str, path: &Path) -> Result<Arc<Engine>, ServeError> {
    let index = GksIndex::load(path)
        .map_err(|e| ServeError::Index { name: name.to_string(), message: e.to_string() })?;
    Ok(Arc::new(Engine::from_index(index)))
}

impl ResidentIndex {
    fn from_spec(spec: IndexSpec, config: &ServeConfig) -> Result<ResidentIndex, ServeError> {
        let name = spec.name.to_ascii_lowercase();
        if name.is_empty() || name.contains('/') || name.chars().any(char::is_whitespace) {
            return Err(ServeError::BadConfig(format!(
                "index name {:?} is not a usable route key (must be non-empty, \
                 without '/' or whitespace)",
                spec.name
            )));
        }
        let (engine, source) = match spec.source {
            IndexSource::Engine(engine) => (engine, None),
            IndexSource::Path(path) => (load_engine(&name, &path)?, Some(path)),
        };
        let identity = index_identity(engine.index());
        Ok(ResidentIndex {
            name,
            source,
            loaded: RwLock::new(Arc::new(Loaded { engine, identity })),
            cache: ResultCache::new(config.cache_bytes, config.cache_shards, identity),
            counters: IndexCounters::new(),
        })
    }

    /// The normalized route key of this index.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `.gksix` path reloads re-read, if the index was loaded from one.
    pub fn source(&self) -> Option<&Path> {
        self.source.as_deref()
    }

    /// The current engine generation. The returned `Arc` pins the
    /// generation: a reload swapping the slot does not affect the snapshot,
    /// and the old engine is freed when the last snapshot drops.
    pub fn snapshot(&self) -> Arc<Loaded> {
        let slot = self.loaded.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(&slot)
    }

    /// Identity fingerprint of the current generation.
    pub fn identity(&self) -> u64 {
        self.snapshot().identity
    }

    /// This index's result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// This index's counters.
    pub fn counters(&self) -> &IndexCounters {
        &self.counters
    }

    /// Hot-swap reload: re-reads the source path into a fresh engine (the
    /// expensive part, done without any lock held), then atomically swaps it
    /// in. In-flight requests holding the old snapshot finish undisturbed.
    /// Returns `(identity_before, identity_after)`.
    pub fn reload(&self) -> Result<(u64, u64), ServeError> {
        let Some(path) = &self.source else {
            return Err(ServeError::BadConfig(format!(
                "index {:?} was registered without a source path and cannot be reloaded",
                self.name
            )));
        };
        let engine = load_engine(&self.name, path)?;
        let identity = index_identity(engine.index());
        Ok(self.swap_engine(engine, identity))
    }

    /// Installs a replacement engine generation (the tail of [`reload`],
    /// also usable directly by tests). The write lock is held only for the
    /// pointer swap. Returns `(identity_before, identity_after)`.
    pub fn swap_engine(&self, engine: Arc<Engine>, identity: u64) -> (u64, u64) {
        let replacement = Arc::new(Loaded { engine, identity });
        let before = {
            let mut slot = self.loaded.write().unwrap_or_else(std::sync::PoisonError::into_inner);
            let before = slot.identity;
            *slot = replacement;
            before
        };
        self.counters.reloads_total.fetch_add(1, Ordering::Relaxed);
        // Bulk-evict the superseded generation's entries. Correctness does
        // not depend on this — per-entry identity tags already make stale
        // entries unservable — it just reclaims the memory eagerly.
        self.cache.ensure_identity(identity);
        (before, identity)
    }

    /// Folds the phase spans of a completed request trace into this index's
    /// per-phase histograms.
    pub fn record_phases(&self, trace: &CompletedTrace) {
        for (i, kind) in SpanKind::PHASES.iter().enumerate() {
            if trace.root.has_kind(*kind) {
                self.counters.phases[i].record(trace.root.kind_micros(*kind));
            }
        }
    }

    /// Point-in-time view of this index for `/metrics` rendering.
    pub fn metrics_view(&self) -> IndexMetricsView<'_> {
        IndexMetricsView {
            name: &self.name,
            cache: self.cache.stats(),
            identity: self.identity(),
            requests_total: self.counters.requests_total.load(Ordering::Relaxed),
            cache_hits_total: self.counters.cache_hits_total.load(Ordering::Relaxed),
            cache_misses_total: self.counters.cache_misses_total.load(Ordering::Relaxed),
            reloads_total: self.counters.reloads_total.load(Ordering::Relaxed),
            phases: &self.counters.phases,
        }
    }
}

/// The registry of resident indexes, in registration order, with one of
/// them designated the default for un-prefixed endpoint paths.
#[derive(Debug)]
pub struct EngineCatalog {
    indexes: Vec<Arc<ResidentIndex>>,
    default: usize,
}

impl EngineCatalog {
    /// Builds the catalog, loading every path-backed spec. `default` names
    /// the index bare `/search` addresses; `None` picks the first spec.
    pub fn build(
        specs: Vec<IndexSpec>,
        default: Option<&str>,
        config: &ServeConfig,
    ) -> Result<EngineCatalog, ServeError> {
        if specs.is_empty() {
            return Err(ServeError::BadConfig("the catalog needs at least one index".into()));
        }
        let mut indexes: Vec<Arc<ResidentIndex>> = Vec::with_capacity(specs.len());
        for spec in specs {
            let resident = ResidentIndex::from_spec(spec, config)?;
            if indexes.iter().any(|r| r.name == resident.name) {
                return Err(ServeError::BadConfig(format!(
                    "duplicate index name {:?} (route keys are case-insensitive)",
                    resident.name
                )));
            }
            indexes.push(Arc::new(resident));
        }
        let default = match default {
            None => 0,
            Some(name) => {
                let key = name.to_ascii_lowercase();
                indexes.iter().position(|r| r.name == key).ok_or_else(|| {
                    ServeError::BadConfig(format!("default index {name:?} is not in the catalog"))
                })?
            }
        };
        Ok(EngineCatalog { indexes, default })
    }

    /// Looks up an index by its (already normalized) route key.
    pub fn get(&self, name: &str) -> Option<&Arc<ResidentIndex>> {
        self.indexes.iter().find(|r| r.name == name)
    }

    /// The index bare (un-prefixed) endpoint paths address.
    pub fn default_index(&self) -> &Arc<ResidentIndex> {
        // `default` is a validated position into a non-empty vector.
        &self.indexes[self.default]
    }

    /// All resident indexes, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<ResidentIndex>> {
        self.indexes.iter()
    }

    /// Number of resident indexes (always ≥ 1).
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// Never true — construction rejects an empty catalog. Present because
    /// `len` without `is_empty` trips clippy.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }
}

/// Normalizes a request path into its route form: duplicate slashes
/// collapse, trailing slashes drop (except the root itself), and ASCII case
/// folds — `/ix/DBLP//search/` and `/ix/dblp/search` are the same route and
/// therefore reach the same index and cache. Percent-decoding happened
/// upstream in the HTTP parser.
pub fn normalize_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len() + 1);
    out.push('/');
    for segment in path.split('/').filter(|s| !s.is_empty()) {
        if !out.ends_with('/') {
            out.push('/');
        }
        for c in segment.chars() {
            out.push(c.to_ascii_lowercase());
        }
    }
    out
}

/// A routed request: which endpoint, and which index it explicitly
/// addressed (`None` means the catalog default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The endpoint the (suffix) path names.
    pub endpoint: Endpoint,
    /// Route key from an `/ix/<name>/…` prefix, if one was present.
    pub index: Option<String>,
}

/// Parses a request path into a [`Route`]: `/ix/<name>/<endpoint>` selects
/// index `<name>`, any other path addresses the default index. The path is
/// normalized first ([`normalize_path`]).
pub fn route_path(path: &str) -> Route {
    let normalized = normalize_path(path);
    if let Some(rest) = normalized.strip_prefix("/ix/") {
        return match rest.split_once('/') {
            Some((name, suffix)) if !name.is_empty() => Route {
                endpoint: Endpoint::of_path(&format!("/{suffix}")),
                index: Some(name.into()),
            },
            // `/ix/<name>` with no endpoint suffix, or `/ix//…`: addressed
            // an index but not an endpoint.
            _ => Route { endpoint: Endpoint::Other, index: None },
        };
    }
    Route { endpoint: Endpoint::of_path(&normalized), index: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_index::{Corpus, IndexOptions};

    fn tiny_engine(tag: &str) -> Arc<Engine> {
        let xml = format!("<r><a>{tag}</a><a>shared words</a></r>");
        // The tag doubles as the document name: the identity fingerprint
        // mixes doc names, so distinct tags guarantee distinct identities
        // even when the structural stats coincide.
        let corpus = Corpus::from_named_strs([(tag, xml.as_str())]).unwrap();
        Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap())
    }

    #[test]
    fn normalizer_collapses_slashes_case_and_trailers() {
        assert_eq!(normalize_path("/ix/dblp/search"), "/ix/dblp/search");
        assert_eq!(normalize_path("/ix/dblp//search"), "/ix/dblp/search");
        assert_eq!(normalize_path("/ix/DBLP/Search/"), "/ix/dblp/search");
        assert_eq!(normalize_path("//ix///dblp///search//"), "/ix/dblp/search");
        assert_eq!(normalize_path("/"), "/");
        assert_eq!(normalize_path(""), "/");
        assert_eq!(normalize_path("/debug/traces"), "/debug/traces");
    }

    #[test]
    fn routes_resolve_prefix_and_default() {
        let r = route_path("/ix/dblp/search");
        assert_eq!(r.endpoint, Endpoint::Search);
        assert_eq!(r.index.as_deref(), Some("dblp"));
        // Normalization variants are the same route.
        assert_eq!(route_path("/ix/DBLP//search/"), r);
        assert_eq!(route_path("/search"), Route { endpoint: Endpoint::Search, index: None });
        assert_eq!(
            route_path("/ix/nasa/debug/traces"),
            Route { endpoint: Endpoint::DebugTraces, index: Some("nasa".into()) }
        );
        assert_eq!(route_path("/ix/dblp/nope").endpoint, Endpoint::Other);
        assert_eq!(route_path("/ix/dblp").endpoint, Endpoint::Other);
        assert_eq!(route_path("/ix//search").endpoint, Endpoint::Other);
    }

    #[test]
    fn catalog_registers_looks_up_and_defaults() {
        let config = ServeConfig::default();
        let specs = vec![
            IndexSpec::with_engine("Alpha", tiny_engine("alpha")),
            IndexSpec::with_engine("beta", tiny_engine("beta")),
        ];
        let catalog = EngineCatalog::build(specs, Some("beta"), &config).unwrap();
        assert_eq!(catalog.len(), 2);
        assert!(!catalog.is_empty());
        assert_eq!(catalog.default_index().name(), "beta");
        // Registration lowercased "Alpha"; lookups use normalized keys.
        assert!(catalog.get("alpha").is_some());
        assert!(catalog.get("nope").is_none());
        assert_ne!(
            catalog.get("alpha").unwrap().identity(),
            catalog.get("beta").unwrap().identity()
        );
    }

    #[test]
    fn catalog_rejects_bad_configurations() {
        let config = ServeConfig::default();
        let empty: Vec<IndexSpec> = Vec::new();
        assert!(EngineCatalog::build(empty, None, &config).is_err());
        let dup = vec![
            IndexSpec::with_engine("a", tiny_engine("x")),
            IndexSpec::with_engine("A", tiny_engine("y")),
        ];
        assert!(EngineCatalog::build(dup, None, &config).is_err(), "case-insensitive duplicate");
        let missing_default = vec![IndexSpec::with_engine("a", tiny_engine("x"))];
        assert!(EngineCatalog::build(missing_default, Some("b"), &config).is_err());
        let bad_name = vec![IndexSpec::with_engine("a/b", tiny_engine("x"))];
        assert!(EngineCatalog::build(bad_name, None, &config).is_err());
        let missing_path = vec![IndexSpec::with_source("a", "/nonexistent/x.gksix")];
        assert!(matches!(
            EngineCatalog::build(missing_path, None, &config),
            Err(ServeError::Index { .. })
        ));
    }

    #[test]
    fn swap_engine_changes_identity_and_clears_cache() {
        let config = ServeConfig::default();
        let specs = vec![IndexSpec::with_engine("a", tiny_engine("one"))];
        let catalog = EngineCatalog::build(specs, None, &config).unwrap();
        let resident = catalog.get("a").unwrap();
        let old = resident.snapshot();
        resident.cache().put("k".into(), Arc::from(&b"v"[..]));
        assert!(resident.cache().get("k").is_some());
        assert!(resident.reload().is_err(), "engine-backed indexes cannot reload");

        let replacement = tiny_engine("two");
        let new_identity = index_identity(replacement.index());
        let (before, after) = resident.swap_engine(replacement, new_identity);
        assert_eq!(before, old.identity);
        assert_eq!(after, new_identity);
        assert_ne!(before, after);
        assert_eq!(resident.identity(), new_identity);
        assert_eq!(resident.counters().reloads_total.load(Ordering::Relaxed), 1);
        assert!(resident.cache().get("k").is_none(), "swap clears the old generation");
        // The pre-swap snapshot still works: old generation pinned.
        assert_eq!(old.identity, before);
        assert!(Arc::strong_count(&old.engine) >= 1);
    }
}
