//! The engine catalog: many resident indexes in one process, each
//! independently hot-swappable and — when manifest-backed — incrementally
//! updatable without a restart.
//!
//! The paper evaluates GKS over several corpora (DBLP, IMDB, Wikipedia);
//! serving them from one process requires replacing the single-engine
//! assumption with a registry. The catalog maps a **route key** (the
//! `/ix/<name>/…` URL prefix, with a configurable default for bare
//! `/search`) to a [`ResidentIndex`] bundling the engine generation, its
//! result cache, and per-index counters.
//!
//! **Hot-swap protocol.** Each resident index holds one or more **shard
//! slots** behind a `RwLock<Vec<…>>`, each slot carrying its current
//! generation as `RwLock<Arc<Loaded>>`. A request takes a *snapshot* (`Arc`
//! clone under read locks) once per shard, then runs entirely against that
//! generation set — search, render, cache tagging. Replacement engines are
//! always built *before* any write lock is taken, so locks are held only
//! for pointer swaps; in-flight requests finish on the old engines, which
//! are freed when the last snapshot drops. Stale cache entries are
//! impossible by construction: every cache entry is tagged with the
//! (combined) identity it was computed against
//! ([`crate::cache::ResultCache::get_for`]), and a swap additionally
//! bulk-clears the superseded generation's entries.
//!
//! **Sharded indexes.** A resident index backed by N > 1 shards (a
//! document-partitioned corpus, see `gks_index::shard`) reloads its shards
//! one at a time. A monotonically increasing **epoch** counter is bumped
//! after every swap; [`ResidentIndex::snapshot_all`] reads the epoch on
//! both sides of the slot sweep and retries until both reads agree, so a
//! scatter can never be handed shards from two different reload sweeps.
//!
//! **Manifest-backed indexes and the update path.** An index registered
//! from a shard manifest ([`IndexSpec::with_manifest`]) tracks the
//! manifest's **epoch**: delta commits (`gks_index::delta`) append delta
//! shards and tombstones, compactions fold them back into base shards, and
//! [`ResidentIndex::sync_manifest`] re-reads the manifest and installs the
//! new shard set. Slots whose shard file is unchanged (same shard id, same
//! path — shard files are immutable once written) are **reused**: the
//! loaded index is shared via `Arc` and only re-wrapped with the new
//! tombstone mask and document map, so a delta commit touching one shard
//! re-reads one file, not N. [`ResidentIndex::poll_corpus`] (the watcher)
//! and [`ResidentIndex::compact_now`] (`POST /admin/compact`, or the
//! background compactor once the `--compact-threshold` backlog is reached)
//! both funnel through a maintenance mutex so at most one manifest
//! mutation runs per index at a time.
//!
//! Lock order within this module: `catalog.maintenance` →
//! `catalog.slots` → `catalog.loaded` (checked statically by
//! `cargo xtask analyze` and dynamically by the debug-build
//! `gks_trace::lockorder` registry).
//!
//! Route keys are normalized ([`normalize_path`]) — duplicate slashes,
//! trailing slashes, and ASCII case differences all resolve to the same
//! index and therefore the same cache.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use gks_core::engine::Engine;
use gks_core::shard::DocMap;
use gks_core::{CostLedger, ShardExecutor};
use gks_index::delta::{commit_delta, compact, wall_clock_ms, CommitStats, CompactStats};
use gks_index::{GksIndex, ShardManifest};
use gks_trace::{CompletedTrace, Histogram, SpanKind};

use crate::cache::ResultCache;
use crate::error::ServeError;
use crate::metrics::{Endpoint, IndexMetricsView};
use crate::{index_identity, ServeConfig};

/// Route key used for an index registered without an explicit name (the
/// single positional `gks serve` path).
pub const DEFAULT_INDEX_NAME: &str = "default";

/// One engine generation: the engine plus the identity fingerprint of the
/// index it was built from and the document renumbering of its shard.
/// Requests snapshot this bundle once and run entirely against it, so a
/// mid-request hot-swap can never mix generations.
#[derive(Debug)]
pub struct Loaded {
    /// The resident engine of this generation (tombstone-masked when the
    /// manifest carries tombstones for this shard).
    pub engine: Arc<Engine>,
    /// Identity fingerprint of the engine's index, mixed with the
    /// tombstone mask and document map when present ([`index_identity`]
    /// alone for a plain frozen shard).
    pub identity: u64,
    /// Local→global document renumbering of this shard; `None` means the
    /// positional dense tiling (global = local + sum of preceding shard
    /// sizes), which is what frozen shard sets use.
    pub doc_map: Option<DocMap>,
}

#[derive(Debug)]
enum IndexSource {
    /// An already-built engine (tests, benches). Not reloadable.
    Engine(Arc<Engine>),
    /// A persisted `.gksix` file; reloadable by re-reading the path.
    Path(PathBuf),
    /// N self-contained shard index files over a document-partitioned
    /// corpus; each shard reloads by re-reading its own path.
    Shards(Vec<PathBuf>),
    /// N already-built shard engines (tests, benches). Not reloadable.
    ShardEngines(Vec<Arc<Engine>>),
    /// A shard manifest file: the live-update source. Reloads re-read the
    /// manifest and sync the slot set to it (delta shards, tombstones,
    /// compactions — see `gks_index::delta`).
    Manifest(PathBuf),
}

/// How an index enters the catalog: a route key plus either a prebuilt
/// engine or one or more paths to load (and later reload) it from.
#[derive(Debug)]
pub struct IndexSpec {
    name: String,
    source: IndexSource,
}

impl IndexSpec {
    /// A spec wrapping an already-built engine. The index will serve but
    /// cannot be hot-swap reloaded (there is no source to re-read).
    pub fn with_engine(name: impl Into<String>, engine: Arc<Engine>) -> IndexSpec {
        IndexSpec { name: name.into(), source: IndexSource::Engine(engine) }
    }

    /// A spec loading the engine from a persisted `.gksix` file; the same
    /// path is re-read on every reload.
    pub fn with_source(name: impl Into<String>, path: impl Into<PathBuf>) -> IndexSpec {
        IndexSpec { name: name.into(), source: IndexSource::Path(path.into()) }
    }

    /// A spec registering one logical index backed by `paths.len()` shard
    /// index files, in global document order. Each shard is re-read from
    /// its own path on reload (one slot at a time).
    pub fn with_shard_paths(
        name: impl Into<String>,
        paths: impl IntoIterator<Item = impl Into<PathBuf>>,
    ) -> IndexSpec {
        let paths: Vec<PathBuf> = paths.into_iter().map(Into::into).collect();
        IndexSpec { name: name.into(), source: IndexSource::Shards(paths) }
    }

    /// A spec wrapping already-built shard engines in global document order
    /// (tests, benches). Serves sharded but cannot be hot-swap reloaded.
    pub fn with_shard_engines(
        name: impl Into<String>,
        engines: impl IntoIterator<Item = Arc<Engine>>,
    ) -> IndexSpec {
        IndexSpec {
            name: name.into(),
            source: IndexSource::ShardEngines(engines.into_iter().collect()),
        }
    }

    /// A spec serving the shard set recorded in a shard manifest file
    /// (written by `gks index --shards N`); relative shard paths resolve
    /// against the manifest's directory. Manifest-backed indexes follow
    /// the incremental update path: delta commits and compactions are
    /// picked up by [`ResidentIndex::sync_manifest`] without a restart.
    pub fn with_manifest(
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<IndexSpec, ServeError> {
        let name = name.into();
        // Validate eagerly so a bad manifest fails at registration, not at
        // first sync.
        ShardManifest::load(path.as_ref())
            .map_err(|e| ServeError::Index { name: name.clone(), message: e.to_string() })?;
        Ok(IndexSpec { name, source: IndexSource::Manifest(path.as_ref().to_path_buf()) })
    }

    /// The route key this spec registers under.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The number of engine phases tracked per index (`SpanKind::PHASES`).
pub const PHASE_COUNT: usize = SpanKind::PHASES.len();

/// Per-index counters: request and cache totals plus per-phase latency
/// histograms, all lock-free.
#[derive(Debug)]
pub struct IndexCounters {
    /// Queries (`/search` + `/suggest`) routed to this index.
    pub requests_total: AtomicU64,
    /// Result-cache hits for this index.
    pub cache_hits_total: AtomicU64,
    /// Result-cache misses for this index.
    pub cache_misses_total: AtomicU64,
    /// Completed hot-swap reloads (manifest syncs included).
    pub reloads_total: AtomicU64,
    /// Delta commits observed (watcher ticks or `gks watch` processes)
    /// and synced into the serving set.
    pub delta_commits_total: AtomicU64,
    /// Compactions completed for this index.
    pub compactions_total: AtomicU64,
    /// Total wall-clock milliseconds spent compacting.
    pub compaction_millis_total: AtomicU64,
    /// Per-phase latency histograms, in [`SpanKind::PHASES`] order.
    pub phases: [Histogram; PHASE_COUNT],
    /// Summed cost-ledger counters across this index's engine runs.
    pub cost: CostCounters,
    /// Distribution of postings scanned per engine run.
    pub work_postings: Histogram,
    /// Distribution of sweep advances per engine run.
    pub work_advances: Histogram,
}

impl IndexCounters {
    fn new() -> IndexCounters {
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: Histogram = Histogram::new();
        IndexCounters {
            requests_total: AtomicU64::new(0),
            cache_hits_total: AtomicU64::new(0),
            cache_misses_total: AtomicU64::new(0),
            reloads_total: AtomicU64::new(0),
            delta_commits_total: AtomicU64::new(0),
            compactions_total: AtomicU64::new(0),
            compaction_millis_total: AtomicU64::new(0),
            phases: [EMPTY; PHASE_COUNT],
            cost: CostCounters::new(),
            work_postings: EMPTY,
            work_advances: EMPTY,
        }
    }
}

/// Lock-free accumulators for the per-request [`CostLedger`] counters —
/// one `fetch_add` per field per engine run, snapshotted for `/metrics`.
/// `per_keyword` is request-shaped and is not aggregated here.
#[derive(Debug)]
pub struct CostCounters {
    postings_scanned: AtomicU64,
    tombstone_masked: AtomicU64,
    heap_ops: AtomicU64,
    sweep_advances: AtomicU64,
    rank_candidates: AtomicU64,
    di_attrs: AtomicU64,
    result_bytes: AtomicU64,
}

impl CostCounters {
    fn new() -> CostCounters {
        CostCounters {
            postings_scanned: AtomicU64::new(0),
            tombstone_masked: AtomicU64::new(0),
            heap_ops: AtomicU64::new(0),
            sweep_advances: AtomicU64::new(0),
            rank_candidates: AtomicU64::new(0),
            di_attrs: AtomicU64::new(0),
            result_bytes: AtomicU64::new(0),
        }
    }

    /// Folds one request's ledger into the totals.
    pub fn record(&self, ledger: &CostLedger) {
        self.postings_scanned.fetch_add(ledger.postings_scanned, Ordering::Relaxed);
        self.tombstone_masked.fetch_add(ledger.tombstone_masked, Ordering::Relaxed);
        self.heap_ops.fetch_add(ledger.heap_ops, Ordering::Relaxed);
        self.sweep_advances.fetch_add(ledger.sweep_advances, Ordering::Relaxed);
        self.rank_candidates.fetch_add(ledger.rank_candidates, Ordering::Relaxed);
        self.di_attrs.fetch_add(ledger.di_attrs, Ordering::Relaxed);
        self.result_bytes.fetch_add(ledger.result_bytes, Ordering::Relaxed);
    }

    /// Point-in-time totals as a ledger (with an empty `per_keyword`).
    pub fn snapshot(&self) -> CostLedger {
        CostLedger {
            postings_scanned: self.postings_scanned.load(Ordering::Relaxed),
            tombstone_masked: self.tombstone_masked.load(Ordering::Relaxed),
            heap_ops: self.heap_ops.load(Ordering::Relaxed),
            sweep_advances: self.sweep_advances.load(Ordering::Relaxed),
            rank_candidates: self.rank_candidates.load(Ordering::Relaxed),
            di_attrs: self.di_attrs.load(Ordering::Relaxed),
            result_bytes: self.result_bytes.load(Ordering::Relaxed),
            ..CostLedger::default()
        }
    }
}

/// One shard slot of a resident index: the shard's current engine
/// generation plus the path reloads re-read (absent for engine-backed
/// shards) and the manifest shard id — the slot-reuse key for manifest
/// syncs.
#[derive(Debug)]
struct ShardSlot {
    /// Manifest shard id, when this slot came from a manifest.
    shard_id: Option<u64>,
    source: Option<PathBuf>,
    loaded: RwLock<Arc<Loaded>>,
}

/// A consistent point-in-time snapshot of every shard of a resident index,
/// produced by [`ResidentIndex::snapshot_all`]. The `Arc`s pin the
/// generations; `epoch` is the reload epoch both sides of the slot sweep
/// agreed on, so the set never mixes shards from two reload sweeps.
#[derive(Debug)]
pub struct ShardSet {
    /// The pinned shard generations, in global document order.
    pub shards: Vec<Arc<Loaded>>,
    /// The reload epoch the snapshot was taken at.
    pub epoch: u64,
    /// Combined identity of the snapshot (equals the single shard's
    /// identity for an unsharded index).
    pub identity: u64,
    /// Per-shard local→global document renumbering, in shard order:
    /// explicit maps for manifest-backed sets, dense positional bases
    /// otherwise.
    pub doc_maps: Vec<DocMap>,
}

/// Folds per-shard identity fingerprints into one logical-index identity.
/// A single shard keeps its raw identity (so an unsharded index fingerprints
/// exactly as before sharding existed); N > 1 shards FNV-fold theirs, mixing
/// in the count so a prefix subset can never collide with the full set.
fn combined_identity(identities: &[u64]) -> u64 {
    match identities {
        [one] => *one,
        many => {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            mix64(&mut h, many.len() as u64);
            for &id in many {
                mix64(&mut h, id);
            }
            h
        }
    }
}

/// FNV-folds one value into a running hash.
fn mix64(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Identity of one slot generation: the raw [`index_identity`] for a plain
/// frozen shard, additionally folding the tombstone mask and explicit
/// document map when present — re-masking an unchanged shard file must
/// change the identity, or a post-commit cache lookup could replay bytes
/// computed before the mask existed.
fn slot_identity(engine: &Engine, doc_map: Option<&DocMap>) -> u64 {
    let base = index_identity(engine.index());
    let table = match doc_map {
        Some(DocMap::Table { forward, .. }) => Some(forward),
        _ => None,
    };
    if engine.tombstones().is_empty() && table.is_none() {
        return base;
    }
    let mut h = base;
    mix64(&mut h, 0x6d61_736b); // domain tag: masked/mapped generation
    mix64(&mut h, engine.tombstones().len() as u64);
    for &t in engine.tombstones() {
        mix64(&mut h, u64::from(t));
    }
    if let Some(forward) = table {
        mix64(&mut h, forward.len() as u64);
        for &g in forward {
            mix64(&mut h, u64::from(g));
        }
    }
    h
}

/// Derives the per-shard document maps of a snapshot: a slot's explicit
/// map when it has one, otherwise the dense positional base computed from
/// the preceding shards' document counts.
fn doc_maps_of(shards: &[Arc<Loaded>]) -> Vec<DocMap> {
    let mut maps = Vec::with_capacity(shards.len());
    let mut next = 0u32;
    for loaded in shards {
        match &loaded.doc_map {
            Some(map) => maps.push(map.clone()),
            None => maps.push(DocMap::base(next)),
        }
        let count = u32::try_from(loaded.engine.index().stats().doc_count).unwrap_or(u32::MAX);
        next = next.saturating_add(count);
    }
    maps
}

/// One resident (logical) index: shard slots each holding their current
/// engine generation behind a `RwLock`, the identity-keyed result cache
/// shared by all shards, a reload epoch, per-index counters, and — for
/// manifest-backed indexes — the manifest path plus delta backlog gauges.
#[derive(Debug)]
pub struct ResidentIndex {
    name: String,
    /// The shard slots, swapped wholesale by manifest syncs (the slot
    /// *count* changes when delta shards appear or compaction folds them
    /// away). Never empty. Lock order: `slots` before any slot's `loaded`.
    slots: RwLock<Vec<Arc<ShardSlot>>>,
    /// Manifest path, for manifest-backed indexes.
    manifest: Option<PathBuf>,
    /// Serializes manifest mutations (delta commits, compactions) and the
    /// syncs they trigger. Ordered before `slots`.
    maintenance: Mutex<()>,
    /// Bumped after every swap; lets readers detect a reload racing their
    /// slot sweep (see [`ResidentIndex::snapshot_all`]).
    epoch: AtomicU64,
    /// Delta shards currently serving (the compactor's backlog gauge).
    delta_shards: AtomicU64,
    /// Documents living in delta shards.
    delta_docs: AtomicU64,
    /// `committed-ms` of the manifest generation currently serving.
    committed_ms: AtomicU64,
    cache: ResultCache,
    counters: IndexCounters,
    /// Persistent per-shard worker lanes for the scatter path: shard
    /// fan-out is a channel send to a long-lived lane, never a thread
    /// spawn per request. Lanes grow with the shard count (manifest syncs
    /// can add delta shards) and never shrink.
    executor: Arc<ShardExecutor>,
}

fn load_engine(name: &str, path: &Path) -> Result<Arc<Engine>, ServeError> {
    let index = GksIndex::load(path)
        .map_err(|e| ServeError::Index { name: name.to_string(), message: e.to_string() })?;
    Ok(Arc::new(Engine::from_index(index)))
}

fn slot_of(engine: Arc<Engine>, source: Option<PathBuf>) -> Arc<ShardSlot> {
    let identity = index_identity(engine.index());
    Arc::new(ShardSlot {
        shard_id: None,
        source,
        loaded: RwLock::new(Arc::new(Loaded { engine, identity, doc_map: None })),
    })
}

/// Reads a slot's current generation (`Arc` clone under the read lock).
fn slot_loaded(slot: &ShardSlot) -> Arc<Loaded> {
    let guard = gks_trace::lockorder::track(
        "server/catalog.loaded",
        slot.loaded.read().unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    Arc::clone(&guard)
}

/// Builds the slot set for one manifest generation, reusing `current`
/// slots whose shard file is unchanged. Shard files are immutable once
/// written (commits and compactions write new epoch-stamped files), so
/// (shard id, path) identifies the bytes; a reused slot shares the loaded
/// index via `Arc` and is re-wrapped with the new tombstone mask and
/// document map.
fn build_manifest_slots(
    name: &str,
    manifest: &ShardManifest,
    current: &[Arc<ShardSlot>],
) -> Result<Vec<Arc<ShardSlot>>, ServeError> {
    if manifest.shards.is_empty() {
        return Err(ServeError::BadConfig(format!("manifest for {name:?} lists no shards")));
    }
    let mut slots = Vec::with_capacity(manifest.shards.len());
    for (entry, view) in manifest.shards.iter().zip(manifest.shard_views()) {
        let reused = current
            .iter()
            .find(|s| {
                s.shard_id == Some(entry.id) && s.source.as_deref() == Some(entry.path.as_path())
            })
            .map(|slot| slot_loaded(slot).engine.index_shared());
        let index = match reused {
            Some(index) => index,
            None => Arc::new(GksIndex::load(&entry.path).map_err(|e| ServeError::Index {
                name: name.to_string(),
                message: e.to_string(),
            })?),
        };
        let engine = Arc::new(Engine::from_shared(index, view.tombstones));
        let doc_map = Some(match view.doc_map {
            Some(forward) => DocMap::table(forward),
            None => DocMap::base(view.doc_base),
        });
        let identity = slot_identity(&engine, doc_map.as_ref());
        slots.push(Arc::new(ShardSlot {
            shard_id: Some(entry.id),
            source: Some(entry.path.clone()),
            loaded: RwLock::new(Arc::new(Loaded { engine, identity, doc_map })),
        }));
    }
    Ok(slots)
}

impl ResidentIndex {
    fn from_spec(spec: IndexSpec, config: &ServeConfig) -> Result<ResidentIndex, ServeError> {
        let name = spec.name.to_ascii_lowercase();
        if name.is_empty() || name.contains('/') || name.chars().any(char::is_whitespace) {
            return Err(ServeError::BadConfig(format!(
                "index name {:?} is not a usable route key (must be non-empty, \
                 without '/' or whitespace)",
                spec.name
            )));
        }
        let mut manifest_path = None;
        let mut manifest_loaded: Option<ShardManifest> = None;
        let slots: Vec<Arc<ShardSlot>> = match spec.source {
            IndexSource::Engine(engine) => vec![slot_of(engine, None)],
            IndexSource::Path(path) => vec![slot_of(load_engine(&name, &path)?, Some(path))],
            IndexSource::Shards(paths) => {
                if paths.is_empty() {
                    return Err(ServeError::BadConfig(format!(
                        "sharded index {name:?} lists no shard paths"
                    )));
                }
                paths
                    .into_iter()
                    .map(|path| Ok(slot_of(load_engine(&name, &path)?, Some(path))))
                    .collect::<Result<_, ServeError>>()?
            }
            IndexSource::ShardEngines(engines) => {
                if engines.is_empty() {
                    return Err(ServeError::BadConfig(format!(
                        "sharded index {name:?} lists no shard engines"
                    )));
                }
                engines.into_iter().map(|engine| slot_of(engine, None)).collect()
            }
            IndexSource::Manifest(path) => {
                let manifest = ShardManifest::load(&path).map_err(|e| ServeError::Index {
                    name: name.clone(),
                    message: e.to_string(),
                })?;
                let slots = build_manifest_slots(&name, &manifest, &[])?;
                manifest_path = Some(path);
                manifest_loaded = Some(manifest);
                slots
            }
        };
        let per_lane = if config.shard_workers == 0 {
            config.workers
        } else {
            config.shard_workers
        };
        let executor = Arc::new(ShardExecutor::new(per_lane));
        executor.ensure_lanes(slots.len()).map_err(ServeError::Io)?;
        let resident = ResidentIndex {
            name,
            slots: RwLock::new(slots),
            manifest: manifest_path,
            maintenance: Mutex::new(()),
            epoch: AtomicU64::new(0),
            delta_shards: AtomicU64::new(0),
            delta_docs: AtomicU64::new(0),
            committed_ms: AtomicU64::new(0),
            cache: ResultCache::with_admission(
                config.cache_bytes,
                config.cache_shards,
                0,
                config.cache_admission,
            ),
            counters: IndexCounters::new(),
            executor,
        };
        if let Some(manifest) = &manifest_loaded {
            resident.record_manifest_stats(manifest);
        }
        resident.cache.ensure_identity(resident.identity());
        Ok(resident)
    }

    /// The normalized route key of this index.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The manifest path for a manifest-backed index.
    pub fn manifest_path(&self) -> Option<&Path> {
        self.manifest.as_deref()
    }

    /// The `.gksix` path reloads re-read for the first shard, if it was
    /// loaded from one.
    pub fn source(&self) -> Option<PathBuf> {
        self.slots_snapshot().first().and_then(|s| s.source.clone())
    }

    /// Number of shard slots backing this index (1 for unsharded).
    pub fn shard_count(&self) -> usize {
        self.slots_snapshot().len()
    }

    /// Whether this index fans queries out over more than one shard.
    pub fn is_sharded(&self) -> bool {
        self.shard_count() > 1
    }

    /// The persistent scatter executor backing this index's sharded
    /// searches.
    pub fn executor(&self) -> &ShardExecutor {
        &self.executor
    }

    /// The current reload epoch (bumped after every slot swap).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Delta shards currently serving (the compactor's backlog gauge).
    pub fn delta_shards(&self) -> u64 {
        self.delta_shards.load(Ordering::Relaxed)
    }

    /// Documents currently living in delta shards.
    pub fn delta_docs(&self) -> u64 {
        self.delta_docs.load(Ordering::Relaxed)
    }

    /// Index-file bytes served straight from the mmap, summed across all
    /// shard slots. Zero for format-v2 (eager heap) indexes, so the gauge
    /// doubles as an on-disk-format indicator per index.
    pub fn bytes_mapped(&self) -> u64 {
        self.slots_snapshot()
            .iter()
            .map(|s| slot_loaded(s).engine.index().bytes_mapped())
            .sum()
    }

    /// Milliseconds spent opening the shard files currently serving,
    /// summed across slots. Format-v3 opens skip posting decode, so this
    /// stays near-constant as the corpus grows.
    pub fn open_millis(&self) -> u64 {
        self.slots_snapshot()
            .iter()
            .map(|s| slot_loaded(s).engine.index().open_millis())
            .sum()
    }

    /// Seconds since the serving manifest generation was committed, or
    /// `-1` when this index is not manifest-backed. This is the freshness
    /// lag a scrape observes: it grows between commits and drops to ~0
    /// right after every delta commit or compaction is synced in.
    pub fn freshness_seconds(&self) -> i64 {
        if self.manifest.is_none() {
            return -1;
        }
        let committed = self.committed_ms.load(Ordering::Relaxed);
        let lag_ms = wall_clock_ms().saturating_sub(committed);
        i64::try_from(lag_ms / 1000).unwrap_or(i64::MAX)
    }

    fn record_manifest_stats(&self, manifest: &ShardManifest) {
        self.delta_shards.store(manifest.delta_shard_count() as u64, Ordering::Relaxed);
        self.delta_docs.store(manifest.delta_doc_count(), Ordering::Relaxed);
        self.committed_ms.store(manifest.committed_ms, Ordering::Relaxed);
    }

    /// The current slot list (`Arc` clones under the read lock).
    fn slots_snapshot(&self) -> Vec<Arc<ShardSlot>> {
        let slots = gks_trace::lockorder::track(
            "server/catalog.slots",
            self.slots.read().unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        slots.iter().map(Arc::clone).collect()
    }

    /// The current engine generation of the **first** shard. The returned
    /// `Arc` pins the generation: a reload swapping the slot does not affect
    /// the snapshot, and the old engine is freed when the last snapshot
    /// drops. Unsharded indexes (the common case) have exactly one shard, so
    /// this is their whole state; sharded callers want
    /// [`ResidentIndex::snapshot_all`].
    pub fn snapshot(&self) -> Arc<Loaded> {
        // The slot list is never empty: construction and every manifest
        // sync reject an empty shard set.
        slot_loaded(&self.slots_snapshot()[0])
    }

    /// A consistent snapshot of **every** shard, or `None` if a reload
    /// storm kept invalidating the sweep. The epoch is read on both sides
    /// of the slot sweep and the sweep retries until both reads agree, so a
    /// returned set never mixes shards from two reload sweeps — the
    /// precondition for the gather stage's lossless merge. `None` is the
    /// only mixed-generation outcome and requires ~64 reload sweeps to land
    /// inside one snapshot attempt each; callers turn it into a `503`.
    pub fn snapshot_all(&self) -> Option<ShardSet> {
        for _ in 0..64 {
            let before = self.epoch.load(Ordering::Acquire);
            let slots = self.slots_snapshot();
            let shards: Vec<Arc<Loaded>> = slots.iter().map(|s| slot_loaded(s)).collect();
            if self.epoch.load(Ordering::Acquire) == before {
                let identity =
                    combined_identity(&shards.iter().map(|l| l.identity).collect::<Vec<u64>>());
                let doc_maps = doc_maps_of(&shards);
                return Some(ShardSet { shards, epoch: before, identity, doc_maps });
            }
            std::hint::spin_loop();
        }
        None
    }

    /// Combined identity fingerprint of the current generation set (the raw
    /// shard identity when unsharded).
    pub fn identity(&self) -> u64 {
        let ids: Vec<u64> = self.slots_snapshot().iter().map(|s| slot_loaded(s).identity).collect();
        combined_identity(&ids)
    }

    /// This index's result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// This index's counters.
    pub fn counters(&self) -> &IndexCounters {
        &self.counters
    }

    /// Swaps slot `i` to a new generation and bumps the epoch. The write
    /// lock is held only for the pointer swap.
    fn swap_slot(&self, i: usize, replacement: Arc<Loaded>) {
        let slots = self.slots_snapshot();
        if let Some(slot) = slots.get(i) {
            let mut guard = gks_trace::lockorder::track(
                "server/catalog.loaded",
                slot.loaded.write().unwrap_or_else(std::sync::PoisonError::into_inner),
            );
            **guard = replacement;
        }
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Hot-swap reload. Manifest-backed indexes delegate to
    /// [`ResidentIndex::sync_manifest`]; path-backed indexes re-read every
    /// shard's source into a fresh engine (the expensive part, done without
    /// any lock held) and swap the slots in **one at a time**, bumping the
    /// epoch after each swap so concurrent scatters detect the sweep.
    /// In-flight requests holding old snapshots finish undisturbed. Returns
    /// the combined `(identity_before, identity_after)`.
    pub fn reload(&self) -> Result<(u64, u64), ServeError> {
        if self.manifest.is_some() {
            return self.sync_manifest();
        }
        let slots = self.slots_snapshot();
        if slots.iter().any(|s| s.source.is_none()) {
            return Err(ServeError::BadConfig(format!(
                "index {:?} was registered without a source path and cannot be reloaded",
                self.name
            )));
        }
        let before = self.identity();
        for (i, slot) in slots.iter().enumerate() {
            let Some(path) = slot.source.clone() else {
                continue;
            };
            let engine = load_engine(&self.name, &path)?;
            let identity = index_identity(engine.index());
            self.swap_slot(i, Arc::new(Loaded { engine, identity, doc_map: None }));
            // Re-bind the cache after every swap: entries tagged with a
            // mid-sweep combined identity are unservable either way, this
            // just reclaims them eagerly.
            self.cache.ensure_identity(self.identity());
        }
        self.counters.reloads_total.fetch_add(1, Ordering::Relaxed);
        Ok((before, self.identity()))
    }

    /// Reloads only shard `i` from its source path — the shard-granular
    /// counterpart of [`ResidentIndex::reload`]
    /// (`POST /admin/reload?index=<name>&shard=<i>`). The replacement
    /// generation keeps the slot's tombstone mask and document map, so a
    /// manifest-backed shard re-reads its bytes without losing its masking.
    /// Returns the combined `(identity_before, identity_after)`.
    pub fn reload_shard(&self, i: usize) -> Result<(u64, u64), ServeError> {
        let slots = self.slots_snapshot();
        let Some(slot) = slots.get(i) else {
            return Err(ServeError::BadConfig(format!(
                "index {:?} has {} shards; shard {i} does not exist",
                self.name,
                slots.len()
            )));
        };
        let Some(path) = slot.source.clone() else {
            return Err(ServeError::BadConfig(format!(
                "shard {i} of index {:?} was registered without a source path and cannot \
                 be reloaded",
                self.name
            )));
        };
        let before = self.identity();
        let old = slot_loaded(slot);
        let index = GksIndex::load(&path)
            .map_err(|e| ServeError::Index { name: self.name.clone(), message: e.to_string() })?;
        let engine =
            Arc::new(Engine::from_shared(Arc::new(index), old.engine.tombstones().to_vec()));
        let identity = slot_identity(&engine, old.doc_map.as_ref());
        self.swap_slot(i, Arc::new(Loaded { engine, identity, doc_map: old.doc_map.clone() }));
        let after = self.identity();
        self.counters.reloads_total.fetch_add(1, Ordering::Relaxed);
        self.cache.ensure_identity(after);
        Ok((before, after))
    }

    /// Installs a replacement engine generation in the **first** shard slot
    /// (the tail of [`ResidentIndex::reload`] for unsharded indexes, also
    /// usable directly by tests). The write lock is held only for the
    /// pointer swap. Returns the combined
    /// `(identity_before, identity_after)`.
    pub fn swap_engine(&self, engine: Arc<Engine>, identity: u64) -> (u64, u64) {
        let before = self.identity();
        self.swap_slot(0, Arc::new(Loaded { engine, identity, doc_map: None }));
        let after = self.identity();
        self.counters.reloads_total.fetch_add(1, Ordering::Relaxed);
        // Bulk-evict the superseded generation's entries. Correctness does
        // not depend on this — per-entry identity tags already make stale
        // entries unservable — it just reclaims the memory eagerly.
        self.cache.ensure_identity(after);
        (before, after)
    }

    /// Re-reads the manifest and installs its shard set: the read side of
    /// the incremental update path. Unchanged shard files are reused (the
    /// loaded index is shared and only re-masked); new delta shards are
    /// loaded; slots whose shard vanished (compaction) drop off. The slot
    /// list is swapped wholesale under the write lock — held only for the
    /// pointer swap — and the epoch bump makes concurrent scatters retry
    /// on the new set. Returns `(identity_before, identity_after)`.
    pub fn sync_manifest(&self) -> Result<(u64, u64), ServeError> {
        let Some(path) = self.manifest.clone() else {
            return Err(ServeError::BadConfig(format!(
                "index {:?} is not manifest-backed and cannot sync",
                self.name
            )));
        };
        let manifest = ShardManifest::load(&path)
            .map_err(|e| ServeError::Index { name: self.name.clone(), message: e.to_string() })?;
        let before = self.identity();
        let current = self.slots_snapshot();
        let replacement = build_manifest_slots(&self.name, &manifest, &current)?;
        {
            let mut guard = gks_trace::lockorder::track(
                "server/catalog.slots",
                self.slots.write().unwrap_or_else(std::sync::PoisonError::into_inner),
            );
            **guard = replacement;
        }
        self.epoch.fetch_add(1, Ordering::Release);
        self.record_manifest_stats(&manifest);
        // A sync can widen the shard set (new delta shards); grow the
        // scatter lanes to match. Best-effort — scatter falls back to
        // round-robin over the existing lanes until the next sync.
        let _ = self.executor.ensure_lanes(self.shard_count());
        let after = self.identity();
        self.counters.reloads_total.fetch_add(1, Ordering::Relaxed);
        self.cache.ensure_identity(after);
        Ok((before, after))
    }

    /// One watcher tick: scans the manifest's corpus directory, commits a
    /// delta for whatever changed, and syncs the new generation in.
    /// Returns `Ok(None)` when the corpus is unchanged. Serialized with
    /// compactions through the maintenance mutex, so at most one manifest
    /// mutation runs per index at a time; holding the mutex across the
    /// commit I/O is the point — it is the serialization, and it is never
    /// taken on the request path.
    pub fn poll_corpus(&self) -> Result<Option<CommitStats>, ServeError> {
        let Some(path) = self.manifest.clone() else {
            return Err(ServeError::BadConfig(format!(
                "index {:?} is not manifest-backed and cannot watch a corpus",
                self.name
            )));
        };
        let _maintenance = gks_trace::lockorder::track(
            "server/catalog.maintenance",
            self.maintenance.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        let stats = commit_delta(&path)
            .map_err(|e| ServeError::Index { name: self.name.clone(), message: e.to_string() })?;
        if stats.is_some() {
            self.counters.delta_commits_total.fetch_add(1, Ordering::Relaxed);
            self.sync_manifest()?;
        }
        Ok(stats)
    }

    /// Folds this index's delta shards back into its base shards
    /// (`POST /admin/compact`, or the background compactor once the
    /// backlog crosses the threshold) and syncs the compacted generation
    /// in. Returns `Ok(None)` when there was nothing to fold. Serialized
    /// with watcher commits through the maintenance mutex.
    pub fn compact_now(&self) -> Result<Option<CompactStats>, ServeError> {
        let Some(path) = self.manifest.clone() else {
            return Err(ServeError::BadConfig(format!(
                "index {:?} is not manifest-backed and cannot compact",
                self.name
            )));
        };
        let _maintenance = gks_trace::lockorder::track(
            "server/catalog.maintenance",
            self.maintenance.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        let started_ms = wall_clock_ms();
        let stats = compact(&path)
            .map_err(|e| ServeError::Index { name: self.name.clone(), message: e.to_string() })?;
        if stats.is_some() {
            let elapsed = wall_clock_ms().saturating_sub(started_ms);
            self.counters.compactions_total.fetch_add(1, Ordering::Relaxed);
            self.counters.compaction_millis_total.fetch_add(elapsed, Ordering::Relaxed);
            self.sync_manifest()?;
        }
        Ok(stats)
    }

    /// Folds one engine run's cost ledger into this index's totals and
    /// work-per-query histograms. Cache hits do no engine work and are
    /// never recorded here.
    pub fn record_cost(&self, ledger: &CostLedger) {
        self.counters.cost.record(ledger);
        self.counters.work_postings.record(ledger.postings_scanned);
        self.counters.work_advances.record(ledger.sweep_advances);
    }

    /// Folds the phase spans of a completed request trace into this index's
    /// per-phase histograms.
    pub fn record_phases(&self, trace: &CompletedTrace) {
        for (i, kind) in SpanKind::PHASES.iter().enumerate() {
            if trace.root.has_kind(*kind) {
                self.counters.phases[i].record(trace.root.kind_micros(*kind));
            }
        }
    }

    /// Point-in-time view of this index for `/metrics` rendering.
    pub fn metrics_view(&self) -> IndexMetricsView<'_> {
        IndexMetricsView {
            name: &self.name,
            cache: self.cache.stats(),
            identity: self.identity(),
            shard_count: self.shard_count(),
            requests_total: self.counters.requests_total.load(Ordering::Relaxed),
            cache_hits_total: self.counters.cache_hits_total.load(Ordering::Relaxed),
            cache_misses_total: self.counters.cache_misses_total.load(Ordering::Relaxed),
            cache_admitted_total: self.cache.admitted_total(),
            cache_rejected_total: self.cache.rejected_total(),
            reloads_total: self.counters.reloads_total.load(Ordering::Relaxed),
            delta_shards: self.delta_shards(),
            delta_docs: self.delta_docs(),
            freshness_seconds: self.freshness_seconds(),
            delta_commits_total: self.counters.delta_commits_total.load(Ordering::Relaxed),
            compactions_total: self.counters.compactions_total.load(Ordering::Relaxed),
            compaction_millis_total: self.counters.compaction_millis_total.load(Ordering::Relaxed),
            bytes_mapped: self.bytes_mapped(),
            open_millis: self.open_millis(),
            phases: &self.counters.phases,
            cost: self.counters.cost.snapshot(),
            work_postings: &self.counters.work_postings,
            work_advances: &self.counters.work_advances,
        }
    }
}

/// The registry of resident indexes, in registration order, with one of
/// them designated the default for un-prefixed endpoint paths.
#[derive(Debug)]
pub struct EngineCatalog {
    indexes: Vec<Arc<ResidentIndex>>,
    default: usize,
}

impl EngineCatalog {
    /// Builds the catalog, loading every path-backed spec. `default` names
    /// the index bare `/search` addresses; `None` picks the first spec.
    pub fn build(
        specs: Vec<IndexSpec>,
        default: Option<&str>,
        config: &ServeConfig,
    ) -> Result<EngineCatalog, ServeError> {
        if specs.is_empty() {
            return Err(ServeError::BadConfig("the catalog needs at least one index".into()));
        }
        let mut indexes: Vec<Arc<ResidentIndex>> = Vec::with_capacity(specs.len());
        for spec in specs {
            let resident = ResidentIndex::from_spec(spec, config)?;
            if indexes.iter().any(|r| r.name == resident.name) {
                return Err(ServeError::BadConfig(format!(
                    "duplicate index name {:?} (route keys are case-insensitive)",
                    resident.name
                )));
            }
            indexes.push(Arc::new(resident));
        }
        let default = match default {
            None => 0,
            Some(name) => {
                let key = name.to_ascii_lowercase();
                indexes.iter().position(|r| r.name == key).ok_or_else(|| {
                    ServeError::BadConfig(format!("default index {name:?} is not in the catalog"))
                })?
            }
        };
        Ok(EngineCatalog { indexes, default })
    }

    /// Looks up an index by its (already normalized) route key.
    pub fn get(&self, name: &str) -> Option<&Arc<ResidentIndex>> {
        self.indexes.iter().find(|r| r.name == name)
    }

    /// The index bare (un-prefixed) endpoint paths address.
    pub fn default_index(&self) -> &Arc<ResidentIndex> {
        // `default` is a validated position into a non-empty vector.
        &self.indexes[self.default]
    }

    /// All resident indexes, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<ResidentIndex>> {
        self.indexes.iter()
    }

    /// Number of resident indexes (always ≥ 1).
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// Never true — construction rejects an empty catalog. Present because
    /// `len` without `is_empty` trips clippy.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }
}

/// Normalizes a request path into its route form: duplicate slashes
/// collapse, trailing slashes drop (except the root itself), and ASCII case
/// folds — `/ix/DBLP//search/` and `/ix/dblp/search` are the same route and
/// therefore reach the same index and cache. Percent-decoding happened
/// upstream in the HTTP parser.
pub fn normalize_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len() + 1);
    out.push('/');
    for segment in path.split('/').filter(|s| !s.is_empty()) {
        if !out.ends_with('/') {
            out.push('/');
        }
        for c in segment.chars() {
            out.push(c.to_ascii_lowercase());
        }
    }
    out
}

/// A routed request: which endpoint, and which index it explicitly
/// addressed (`None` means the catalog default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The endpoint the (suffix) path names.
    pub endpoint: Endpoint,
    /// Route key from an `/ix/<name>/…` prefix, if one was present.
    pub index: Option<String>,
}

/// Parses a request path into a [`Route`]: `/ix/<name>/<endpoint>` selects
/// index `<name>`, any other path addresses the default index. The path is
/// normalized first ([`normalize_path`]).
pub fn route_path(path: &str) -> Route {
    let normalized = normalize_path(path);
    if let Some(rest) = normalized.strip_prefix("/ix/") {
        return match rest.split_once('/') {
            Some((name, suffix)) if !name.is_empty() => Route {
                endpoint: Endpoint::of_path(&format!("/{suffix}")),
                index: Some(name.into()),
            },
            // `/ix/<name>` with no endpoint suffix, or `/ix//…`: addressed
            // an index but not an endpoint.
            _ => Route { endpoint: Endpoint::Other, index: None },
        };
    }
    Route { endpoint: Endpoint::of_path(&normalized), index: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_index::{Corpus, IndexOptions};

    fn tiny_engine(tag: &str) -> Arc<Engine> {
        let xml = format!("<r><a>{tag}</a><a>shared words</a></r>");
        // The tag doubles as the document name: the identity fingerprint
        // mixes doc names, so distinct tags guarantee distinct identities
        // even when the structural stats coincide.
        let corpus = Corpus::from_named_strs([(tag, xml.as_str())]).unwrap();
        Arc::new(Engine::build(&corpus, IndexOptions::default()).unwrap())
    }

    #[test]
    fn normalizer_collapses_slashes_case_and_trailers() {
        assert_eq!(normalize_path("/ix/dblp/search"), "/ix/dblp/search");
        assert_eq!(normalize_path("/ix/dblp//search"), "/ix/dblp/search");
        assert_eq!(normalize_path("/ix/DBLP/Search/"), "/ix/dblp/search");
        assert_eq!(normalize_path("//ix///dblp///search//"), "/ix/dblp/search");
        assert_eq!(normalize_path("/"), "/");
        assert_eq!(normalize_path(""), "/");
        assert_eq!(normalize_path("/debug/traces"), "/debug/traces");
    }

    #[test]
    fn routes_resolve_prefix_and_default() {
        let r = route_path("/ix/dblp/search");
        assert_eq!(r.endpoint, Endpoint::Search);
        assert_eq!(r.index.as_deref(), Some("dblp"));
        // Normalization variants are the same route.
        assert_eq!(route_path("/ix/DBLP//search/"), r);
        assert_eq!(route_path("/search"), Route { endpoint: Endpoint::Search, index: None });
        assert_eq!(
            route_path("/ix/nasa/debug/traces"),
            Route { endpoint: Endpoint::DebugTraces, index: Some("nasa".into()) }
        );
        assert_eq!(
            route_path("/ix/dblp/admin/compact"),
            Route { endpoint: Endpoint::AdminCompact, index: Some("dblp".into()) }
        );
        assert_eq!(route_path("/ix/dblp/nope").endpoint, Endpoint::Other);
        assert_eq!(route_path("/ix/dblp").endpoint, Endpoint::Other);
        assert_eq!(route_path("/ix//search").endpoint, Endpoint::Other);
    }

    #[test]
    fn catalog_registers_looks_up_and_defaults() {
        let config = ServeConfig::default();
        let specs = vec![
            IndexSpec::with_engine("Alpha", tiny_engine("alpha")),
            IndexSpec::with_engine("beta", tiny_engine("beta")),
        ];
        let catalog = EngineCatalog::build(specs, Some("beta"), &config).unwrap();
        assert_eq!(catalog.len(), 2);
        assert!(!catalog.is_empty());
        assert_eq!(catalog.default_index().name(), "beta");
        // Registration lowercased "Alpha"; lookups use normalized keys.
        assert!(catalog.get("alpha").is_some());
        assert!(catalog.get("nope").is_none());
        assert_ne!(
            catalog.get("alpha").unwrap().identity(),
            catalog.get("beta").unwrap().identity()
        );
    }

    #[test]
    fn catalog_rejects_bad_configurations() {
        let config = ServeConfig::default();
        let empty: Vec<IndexSpec> = Vec::new();
        assert!(EngineCatalog::build(empty, None, &config).is_err());
        let dup = vec![
            IndexSpec::with_engine("a", tiny_engine("x")),
            IndexSpec::with_engine("A", tiny_engine("y")),
        ];
        assert!(EngineCatalog::build(dup, None, &config).is_err(), "case-insensitive duplicate");
        let missing_default = vec![IndexSpec::with_engine("a", tiny_engine("x"))];
        assert!(EngineCatalog::build(missing_default, Some("b"), &config).is_err());
        let bad_name = vec![IndexSpec::with_engine("a/b", tiny_engine("x"))];
        assert!(EngineCatalog::build(bad_name, None, &config).is_err());
        let missing_path = vec![IndexSpec::with_source("a", "/nonexistent/x.gksix")];
        assert!(matches!(
            EngineCatalog::build(missing_path, None, &config),
            Err(ServeError::Index { .. })
        ));
    }

    #[test]
    fn swap_engine_changes_identity_and_clears_cache() {
        let config = ServeConfig::default();
        let specs = vec![IndexSpec::with_engine("a", tiny_engine("one"))];
        let catalog = EngineCatalog::build(specs, None, &config).unwrap();
        let resident = catalog.get("a").unwrap();
        let old = resident.snapshot();
        resident.cache().put("k".into(), Arc::from(&b"v"[..]));
        assert!(resident.cache().get("k").is_some());
        assert!(resident.reload().is_err(), "engine-backed indexes cannot reload");
        assert!(resident.poll_corpus().is_err(), "engine-backed indexes cannot watch");
        assert!(resident.compact_now().is_err(), "engine-backed indexes cannot compact");
        assert_eq!(resident.freshness_seconds(), -1, "freshness is manifest-only");

        let replacement = tiny_engine("two");
        let new_identity = index_identity(replacement.index());
        let (before, after) = resident.swap_engine(replacement, new_identity);
        assert_eq!(before, old.identity);
        assert_eq!(after, new_identity);
        assert_ne!(before, after);
        assert_eq!(resident.identity(), new_identity);
        assert_eq!(resident.counters().reloads_total.load(Ordering::Relaxed), 1);
        assert!(resident.cache().get("k").is_none(), "swap clears the old generation");
        // The pre-swap snapshot still works: old generation pinned.
        assert_eq!(old.identity, before);
        assert!(Arc::strong_count(&old.engine) >= 1);
    }

    #[test]
    fn masked_identity_differs_from_plain() {
        let engine = tiny_engine("mask");
        let plain = slot_identity(&engine, None);
        assert_eq!(plain, index_identity(engine.index()), "no mask, raw identity");
        let masked = Engine::from_shared(engine.index_shared(), vec![0]);
        assert_ne!(slot_identity(&masked, None), plain, "tombstones change the identity");
        let mapped = DocMap::table(vec![3, 7]);
        assert_ne!(slot_identity(&engine, Some(&mapped)), plain, "a doc map changes it too");
        assert_eq!(
            slot_identity(&engine, Some(&DocMap::base(0))),
            plain,
            "a dense base map is the plain case"
        );
    }
}
