//! A deliberately minimal HTTP/1.1 subset on `std::net`, sufficient for the
//! query service: `GET` requests with query strings, fixed-length responses,
//! persistent connections with HTTP/1.1 keep-alive defaults (`Connection:
//! close` honored per message). No TLS, no chunked bodies — requests are
//! framed by the head terminator plus an optional `Content-Length`.
//!
//! Parsing is separated from socket I/O ([`parse_request`] vs
//! [`read_request`]) so the router, the reactor's connection state machine
//! and their tests never need a socket.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers), in bytes.
/// Anything longer is rejected before buffering more — a resident service
/// must bound memory per connection.
pub const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// A parsed HTTP request: method, decoded path, decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `HEAD`, …), uppercased by the parser.
    pub method: String,
    /// Percent-decoded path without the query string, e.g. `/search`.
    pub path: String,
    /// Percent-decoded query parameters in request order.
    pub params: Vec<(String, String)>,
    /// Whether the connection may carry another request after this one:
    /// the HTTP/1.1 default unless the client sent `Connection: close`
    /// (HTTP/1.0 inverts the default, opting in via `keep-alive`).
    pub keep_alive: bool,
}

impl Request {
    /// The first value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line or headers are not valid HTTP.
    Malformed(&'static str),
    /// The request head exceeds [`MAX_REQUEST_BYTES`].
    TooLarge,
    /// The socket failed or timed out before a full head arrived.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge => write!(f, "request head exceeds {MAX_REQUEST_BYTES} bytes"),
            HttpError::Io(m) => write!(f, "request I/O: {m}"),
        }
    }
}

/// Decodes `%XX` escapes and `+`-as-space in a URL component. Invalid
/// escapes are passed through literally (never an error — a query keyword
/// containing a stray `%` should search for it, not fail the request).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    let hi = bytes_hex(h[0])?;
                    let lo = bytes_hex(h[1])?;
                    Some(hi * 16 + lo)
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn bytes_hex(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-encodes a URL query component (RFC 3986 unreserved characters
/// pass through; everything else, including space, is `%XX`-escaped).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char);
            }
            _ => {
                out.push('%');
                out.push(HEX_UPPER[usize::from(b >> 4)]);
                out.push(HEX_UPPER[usize::from(b & 0x0f)]);
            }
        }
    }
    out
}

const HEX_UPPER: [char; 16] =
    ['0', '1', '2', '3', '4', '5', '6', '7', '8', '9', 'A', 'B', 'C', 'D', 'E', 'F'];

/// Parses a raw request head (`GET /path?a=1 HTTP/1.1\r\n…`). Only the
/// `Connection` header is interpreted (for keep-alive); the rest are
/// accepted and discarded — the service keys off method, path, and query
/// string.
pub fn parse_request(head: &str) -> Result<Request, HttpError> {
    let request_line = head.lines().next().ok_or(HttpError::Malformed("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(HttpError::Malformed("missing method"))?;
    let target = parts.next().ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts.next().ok_or(HttpError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let params = raw_query
        .map(|q| {
            q.split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(kv), String::new()),
                })
                .collect()
        })
        .unwrap_or_default();
    let http_11 = version != "HTTP/1.0";
    let keep_alive = match header_value(head, "connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => http_11,
    };
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: percent_decode(raw_path),
        params,
        keep_alive,
    })
}

/// The trimmed value of header `name` (ASCII case-insensitive) in a raw
/// request head, if present.
fn header_value<'h>(head: &'h str, name: &str) -> Option<&'h str> {
    head.lines().skip(1).find_map(|line| {
        let (k, v) = line.split_once(':')?;
        k.trim().eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

/// The request's declared `Content-Length`, if any — how many body bytes
/// follow the head terminator. Unparsable values read as `None` (the body,
/// if real, then bleeds into the next message and fails parsing there —
/// acceptable for a GET-only service).
pub fn head_content_length(head: &str) -> Option<usize> {
    header_value(head, "content-length").and_then(|v| v.parse().ok())
}

/// Reads one request head from `stream` (until the blank line), bounded by
/// [`MAX_REQUEST_BYTES`]. Any request body is ignored — every endpoint is a
/// `GET`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_head_end(&buf) {
            let head = String::from_utf8_lossy(&buf[..end]);
            return parse_request(&head);
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            return Err(HttpError::TooLarge);
        }
        let n = stream.read(&mut chunk).map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Offset one past the head's final header line (i.e. up to and including
/// its closing `\r\n`, excluding the blank line); the full terminator ends
/// two bytes later and any body starts at `p + 2` beyond the returned
/// offset.
pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 2)
}

/// An HTTP response ready to be written to a socket.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Additional headers (name, value).
    pub headers: Vec<(&'static str, String)>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// A JSON error body `{"error": <message>}` with the given status.
    pub fn error(status: u16, message: &str) -> HttpResponse {
        let mut body = String::with_capacity(message.len() + 12);
        body.push_str("{\"error\":");
        gks_core::wire::push_json_str(&mut body, message);
        body.push('}');
        HttpResponse::json(status, body)
    }

    /// Adds a header, builder-style.
    pub fn with_header(mut self, name: &'static str, value: String) -> HttpResponse {
        self.headers.push((name, value));
        self
    }

    /// Serializes status line, headers, and body into one buffer, with an
    /// exact `Content-Length` and `Connection: keep-alive` or `close` as
    /// requested — the form the reactor's write path consumes.
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the `Connection: close` serialization to `w` — the one-shot
    /// path used by tests and by the drain's courtesy responses.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&self.serialize(false))?;
        w.flush()
    }
}

/// The canonical reason phrase for the status codes this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_line_and_params() {
        let r = parse_request("GET /search?q=karen+mike&s=2&limit=10 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/search");
        assert_eq!(r.param("q"), Some("karen mike"));
        assert_eq!(r.param("s"), Some("2"));
        assert_eq!(r.param("limit"), Some("10"));
        assert_eq!(r.param("nope"), None);
    }

    #[test]
    fn percent_round_trip() {
        let raw = "\"Peter Buneman\" & co + 100%";
        assert_eq!(percent_decode(&percent_encode(raw)), raw);
        assert_eq!(percent_decode("a%20b%2Bc"), "a b+c");
        // Invalid escapes pass through instead of erroring.
        assert_eq!(percent_decode("100%zz"), "100%zz");
        assert_eq!(percent_decode("dangling%2"), "dangling%2");
    }

    #[test]
    fn keep_alive_defaults_follow_the_http_version() {
        let r = parse_request("GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let r = parse_request("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse_request("GET / HTTP/1.1\r\nconnection:  CLOSE \r\n\r\n").unwrap();
        assert!(!r.keep_alive, "header name and value are case-insensitive");
        let r = parse_request("GET / HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let r = parse_request("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive, "HTTP/1.0 opts in explicitly");
    }

    #[test]
    fn content_length_framing() {
        assert_eq!(head_content_length("GET / HTTP/1.1\r\nContent-Length: 12\r\n"), Some(12));
        assert_eq!(head_content_length("GET / HTTP/1.1\r\ncontent-length:0\r\n"), Some(0));
        assert_eq!(head_content_length("GET / HTTP/1.1\r\nHost: x\r\n"), None);
        assert_eq!(head_content_length("GET / HTTP/1.1\r\nContent-Length: nope\r\n"), None);
    }

    #[test]
    fn serialize_controls_the_connection_header() {
        let keep = String::from_utf8(HttpResponse::json(200, "{}").serialize(true)).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"), "{keep}");
        let close = String::from_utf8(HttpResponse::json(200, "{}").serialize(false)).unwrap();
        assert!(close.contains("Connection: close\r\n"), "{close}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_request("").is_err());
        assert!(parse_request("GET /x").is_err());
        assert!(parse_request("GET /x SPDY/3\r\n\r\n").is_err());
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        HttpResponse::json(200, "{}")
            .with_header("x-gks-cache", "hit".to_string())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("x-gks-cache: hit\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn error_body_is_json() {
        let r = HttpResponse::error(400, "no \"q\"");
        assert_eq!(String::from_utf8(r.body).unwrap(), "{\"error\":\"no \\\"q\\\"\"}");
    }
}
