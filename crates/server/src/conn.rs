//! Per-connection state for the reactor: nonblocking read/write driving
//! and HTTP/1.1 request framing, with **no** timestamps or blocking calls
//! of its own — deadlines are enforced by the reactor, which passes every
//! `Instant` in, and all I/O here is single-shot against a socket already
//! in nonblocking mode (`WouldBlock` parks the connection instead of
//! pinning a thread).
//!
//! A connection is either [`ConnState::Reading`] (accumulating request
//! bytes; the framing is head terminator plus optional `Content-Length`)
//! or [`ConnState::Writing`] (flushing a serialized response). Fully-read
//! requests leave the reactor as [`WorkItem`]s; workers hand sockets back
//! as [`Retired`] values for the reactor to re-adopt.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::http::{self, Request};

/// How many body bytes may follow a request head. Heads and bodies share
/// one bound: [`http::MAX_REQUEST_BYTES`] caps the whole message.
fn total_message_len(head_end: usize, head: &str) -> usize {
    head_end + 2 + http::head_content_length(head).unwrap_or(0)
}

/// One reactor-owned connection's progress.
#[derive(Debug)]
pub(crate) enum ConnState {
    /// Accumulating a request. `started` is the reactor-stamped arrival of
    /// the first byte — the request's deadline anchor; `None` while the
    /// connection sits idle between keep-alive requests.
    Reading {
        buf: Vec<u8>,
        started: Option<Instant>,
    },
    /// Flushing a serialized response; `written` bytes are already out.
    Writing {
        buf: Vec<u8>,
        written: usize,
        /// Park back into `Reading` (with `residual`) after the flush, or
        /// close.
        keep_alive: bool,
        /// Bytes past the current request (pipelined follow-up) to seed the
        /// next `Reading` state.
        residual: Vec<u8>,
        /// Whether finishing this flush should count into `served` (false
        /// when a worker already counted it, or for admission rejects —
        /// which were never served requests).
        count_served: bool,
    },
}

/// What one readiness-driven read pass concluded.
#[derive(Debug)]
pub(crate) enum ReadOutcome {
    /// No full request yet; the socket would block.
    NeedMore,
    /// A complete request was framed; `residual` holds any bytes beyond it.
    Complete { request: Request, residual: Vec<u8> },
    /// The message exceeded [`http::MAX_REQUEST_BYTES`].
    TooLarge,
    /// The head arrived but is not parseable HTTP.
    Malformed(&'static str),
    /// The peer closed (EOF) or the socket failed.
    Closed,
}

/// Reads until a full request is framed, the socket would block, or the
/// connection dies. `buf` carries partial (and pipelined) bytes across
/// readiness events.
pub(crate) fn drive_read(stream: &mut TcpStream, buf: &mut Vec<u8>) -> ReadOutcome {
    let mut chunk = [0u8; 4096];
    loop {
        // Frame before reading: a keep-alive residual may already hold a
        // whole pipelined request.
        if let Some(end) = http::find_head_end(buf) {
            let head = String::from_utf8_lossy(&buf[..end]).into_owned();
            let total = total_message_len(end, &head);
            if total > http::MAX_REQUEST_BYTES {
                return ReadOutcome::TooLarge;
            }
            if buf.len() >= total {
                return match http::parse_request(&head) {
                    Ok(request) => {
                        ReadOutcome::Complete { request, residual: buf.split_off(total) }
                    }
                    Err(http::HttpError::Malformed(m)) => ReadOutcome::Malformed(m),
                    Err(_) => ReadOutcome::Malformed("unparseable request head"),
                };
            }
        } else if buf.len() >= http::MAX_REQUEST_BYTES {
            return ReadOutcome::TooLarge;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return ReadOutcome::NeedMore,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
}

/// What one readiness-driven write pass concluded.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum WriteOutcome {
    /// Everything in the buffer is out.
    Done,
    /// The socket would block; `written` records the progress.
    Blocked,
    /// The peer is gone.
    Closed,
}

/// Writes as much of `buf[*written..]` as the socket accepts right now.
pub(crate) fn write_some(stream: &mut TcpStream, buf: &[u8], written: &mut usize) -> WriteOutcome {
    while *written < buf.len() {
        match stream.write(&buf[*written..]) {
            Ok(0) => return WriteOutcome::Closed,
            Ok(n) => *written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return WriteOutcome::Blocked,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return WriteOutcome::Closed,
        }
    }
    WriteOutcome::Done
}

/// A fully-read request leaving the reactor for the worker pool. The
/// worker owns the socket while it computes and writes the response, then
/// hands it back as a [`Retired`] (or drops it for `Connection: close`).
#[derive(Debug)]
pub(crate) struct WorkItem {
    pub stream: TcpStream,
    pub request: Request,
    /// Deadline anchor: when the request's first byte arrived.
    pub accepted_at: Instant,
    /// Pipelined bytes past this request, returned to the reactor with the
    /// socket.
    pub residual: Vec<u8>,
    /// How many requests this connection completed before this one (drives
    /// the keep-alive reuse counter).
    pub requests_served: u64,
}

/// A socket a worker hands back to the reactor.
#[derive(Debug)]
pub(crate) struct Retired {
    pub stream: TcpStream,
    pub kind: RetiredKind,
    /// Requests completed on this connection so far (including the one the
    /// worker just answered).
    pub requests_served: u64,
}

/// Why the socket came back.
#[derive(Debug)]
pub(crate) enum RetiredKind {
    /// Response fully written; park for the next keep-alive request.
    Idle { residual: Vec<u8> },
    /// Response partially written (the worker's nonblocking write hit
    /// `WouldBlock`); the reactor finishes the flush.
    Flush {
        buf: Vec<u8>,
        written: usize,
        keep_alive: bool,
        residual: Vec<u8>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A connected nonblocking socket pair over loopback.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    #[test]
    fn frames_a_request_and_keeps_the_residual() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut buf = Vec::new();
        // Wait for the bytes to arrive on the nonblocking side.
        let deadline = Instant::now() + std::time::Duration::from_secs(2);
        loop {
            match drive_read(&mut server, &mut buf) {
                ReadOutcome::Complete { request, residual } => {
                    assert_eq!(request.path, "/a");
                    assert!(request.keep_alive);
                    let mut buf = residual;
                    match drive_read(&mut server, &mut buf) {
                        ReadOutcome::Complete { request, residual } => {
                            assert_eq!(request.path, "/b");
                            assert!(!request.keep_alive);
                            assert!(residual.is_empty());
                        }
                        other => panic!("pipelined request not framed: {other:?}"),
                    }
                    return;
                }
                ReadOutcome::NeedMore if Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
    }

    #[test]
    fn partial_reads_park_and_resume() {
        let (mut client, mut server) = pair();
        client.write_all(b"GET /slow HT").unwrap();
        let mut buf = Vec::new();
        let deadline = Instant::now() + std::time::Duration::from_secs(2);
        // Drain what's there: must end in NeedMore, never an error.
        loop {
            match drive_read(&mut server, &mut buf) {
                ReadOutcome::NeedMore => break,
                ReadOutcome::Complete { .. } => panic!("framed a partial request"),
                other => {
                    assert!(Instant::now() < deadline, "stuck: {other:?}");
                }
            }
        }
        client.write_all(b"TP/1.1\r\n\r\n").unwrap();
        loop {
            match drive_read(&mut server, &mut buf) {
                ReadOutcome::Complete { request, .. } => {
                    assert_eq!(request.path, "/slow");
                    return;
                }
                ReadOutcome::NeedMore if Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_messages_are_rejected() {
        let mut buf = vec![b'x'; http::MAX_REQUEST_BYTES];
        let (_client, mut server) = pair();
        match drive_read(&mut server, &mut buf) {
            ReadOutcome::TooLarge => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // A small head declaring an enormous body is equally rejected.
        let mut buf = b"GET / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n".to_vec();
        let (_client, mut server) = pair();
        match drive_read(&mut server, &mut buf) {
            ReadOutcome::TooLarge => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn eof_reads_as_closed() {
        let (client, mut server) = pair();
        drop(client);
        let mut buf = Vec::new();
        let deadline = Instant::now() + std::time::Duration::from_secs(2);
        loop {
            match drive_read(&mut server, &mut buf) {
                ReadOutcome::Closed => return,
                ReadOutcome::NeedMore if Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
    }
}
