//! Readiness multiplexing for the reactor, std-only.
//!
//! On Unix this wraps `poll(2)` through the same minimal `extern "C"`
//! technique `signal.rs` uses for `signal(2)` — no crate dependency, one
//! syscall, level-triggered semantics that pair naturally with the
//! reactor's "retry until `WouldBlock`" I/O. On other platforms it
//! degrades to a short sleep that reports every slot ready; the sockets
//! are nonblocking, so a spurious ready costs one `WouldBlock` read.

use std::net::{TcpListener, TcpStream};

/// One pollable endpoint the reactor is interested in.
#[derive(Debug)]
pub(crate) enum Source<'a> {
    Listener(&'a TcpListener),
    Stream(&'a TcpStream),
}

/// An entry in the poll set: which socket, which direction, and the
/// caller's token for mapping readiness back to a connection.
#[derive(Debug)]
pub(crate) struct Slot<'a> {
    pub token: usize,
    pub src: Source<'a>,
    /// Poll for writability instead of readability.
    pub write: bool,
}

#[cfg(unix)]
mod imp {
    use super::{Slot, Source};
    use std::os::unix::io::AsRawFd;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Blocks up to `timeout_ms` and returns the tokens of every slot with
    /// any readiness (including errors/hangups — the subsequent
    /// nonblocking I/O surfaces those as `Closed`).
    pub(crate) fn wait(slots: &[Slot<'_>], timeout_ms: i32) -> Vec<usize> {
        if slots.is_empty() {
            return Vec::new();
        }
        let mut fds: Vec<PollFd> = slots
            .iter()
            .map(|slot| PollFd {
                fd: match slot.src {
                    Source::Listener(l) => l.as_raw_fd(),
                    Source::Stream(s) => s.as_raw_fd(),
                },
                events: if slot.write { POLLOUT } else { POLLIN },
                revents: 0,
            })
            .collect();
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc <= 0 {
            // Timeout or EINTR: nothing ready; the reactor loops again.
            return Vec::new();
        }
        slots
            .iter()
            .zip(&fds)
            .filter(|(_, fd)| fd.revents != 0)
            .map(|(slot, _)| slot.token)
            .collect()
    }
}

#[cfg(not(unix))]
mod imp {
    use super::Slot;
    use std::time::Duration;

    /// Portable fallback: nap briefly, then claim everything is ready.
    /// Level-triggered spurious readiness is harmless — all sockets are
    /// nonblocking, so a not-actually-ready slot costs one `WouldBlock`.
    pub(crate) fn wait(slots: &[Slot<'_>], timeout_ms: i32) -> Vec<usize> {
        std::thread::sleep(Duration::from_millis(u64::from(timeout_ms.clamp(0, 2) as u32)));
        slots.iter().map(|slot| slot.token).collect()
    }
}

pub(crate) use imp::wait;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    #[test]
    fn readable_stream_is_reported_and_quiet_stream_is_not() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut chatty_client = std::net::TcpStream::connect(addr).unwrap();
        let (chatty, _) = listener.accept().unwrap();
        let _quiet_client = std::net::TcpStream::connect(addr).unwrap();
        let (quiet, _) = listener.accept().unwrap();
        chatty_client.write_all(b"hi").unwrap();
        chatty_client.flush().unwrap();

        // Poll until the written bytes are visible on the accepted side.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            let slots = [
                Slot { token: 7, src: Source::Stream(&chatty), write: false },
                Slot { token: 8, src: Source::Stream(&quiet), write: false },
            ];
            let ready = wait(&slots, 50);
            if ready.contains(&7) {
                #[cfg(unix)]
                assert!(!ready.contains(&8), "quiet stream reported readable");
                return;
            }
            assert!(std::time::Instant::now() < deadline, "chatty stream never ready");
        }
    }

    #[test]
    fn pending_accept_makes_the_listener_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            let slots = [Slot { token: 0, src: Source::Listener(&listener), write: false }];
            if wait(&slots, 50).contains(&0) {
                return;
            }
            assert!(std::time::Instant::now() < deadline, "listener never ready");
        }
    }

    #[test]
    fn empty_poll_set_returns_immediately() {
        assert!(wait(&[], 0).is_empty());
    }
}
