//! Load generator for a running `gks serve` instance, in two pacing modes.
//!
//! **Closed loop** (default): `--clients N` threads each issue requests
//! back-to-back — a client waits for its response before sending the next.
//! Simple and self-throttling, but it suffers *coordinated omission*: when
//! the server stalls, the generator stops sending, so the stall is sampled
//! once instead of once per request that *would* have been sent, and tail
//! percentiles come out flattering.
//!
//! **Open loop** (`--open-loop --rate <qps>`): requests are scheduled on a
//! fixed timeline (`t_i = start + i/rate`) regardless of how the server is
//! doing; client threads pull the next scheduled slot from a shared
//! counter, sleep until its time, and measure latency **from the scheduled
//! send time**. A server stall now penalizes every request scheduled during
//! it. When all clients are busy the schedule keeps advancing, and the gap
//! is reported as *send lag* (scheduled-vs-actual send time) — lag growing
//! without bound means the offered rate exceeds capacity.
//!
//! Queries are sampled from a workload file under a Zipf-like skew — a
//! small set of hot queries dominates, which is both how real query logs
//! behave and what exercises the result cache. The report aggregates status
//! classes, cache hits observed via the `x-gks-cache` header, sustained
//! QPS, and latency percentiles computed exactly from recorded samples.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::client::{http_get, ClientResponse, HttpClient};
use crate::http::percent_encode;

/// How request send times are decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Each client sends its next request as soon as the previous response
    /// arrives.
    Closed,
    /// Requests follow a fixed schedule at this aggregate rate (QPS),
    /// independent of response times.
    Open {
        /// Aggregate scheduled request rate, QPS.
        rate_qps: f64,
    },
}

/// One `--index` traffic-mix target: requests carrying this entry go to
/// `/ix/<name>/search` with probability proportional to `weight`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexTarget {
    /// Catalog route key (the `/ix/<name>/` prefix).
    pub name: String,
    /// Relative traffic weight (≥ 1).
    pub weight: u64,
}

/// Parses an `--index` argument: `NAME` or `NAME=WEIGHT` (weight ≥ 1).
pub fn parse_index_target(arg: &str) -> Option<IndexTarget> {
    let (name, weight) = match arg.split_once('=') {
        None => (arg, 1),
        Some((name, w)) => (name, w.parse::<u64>().ok().filter(|&w| w >= 1)?),
    };
    let name = name.trim();
    if name.is_empty() {
        return None;
    }
    Some(IndexTarget { name: name.to_string(), weight })
}

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address to target.
    pub addr: SocketAddr,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues (open loop: total = clients × this, but
    /// the schedule is shared, not per-client).
    pub requests_per_client: usize,
    /// Zipf skew exponent; 0 = uniform, ~1 = classic web-query skew.
    pub zipf_s: f64,
    /// RNG seed (deterministic workloads for repeatable runs).
    pub seed: u64,
    /// Per-request client timeout.
    pub timeout: Duration,
    /// Closed or open-loop pacing.
    pub pacing: Pacing,
    /// Catalog indexes to spread traffic over, weighted. Empty = bare
    /// `/search` (the server's default index).
    pub targets: Vec<IndexTarget>,
    /// Send `explain=1` and collect the per-response `x-gks-cost` summary,
    /// so the report can put work per query next to QPS.
    pub explain: bool,
    /// Reuse one keep-alive connection per client thread instead of
    /// connecting per request (the event-driven server parks the idle
    /// socket between requests).
    pub keep_alive: bool,
    /// Extra idle connections opened before the run and held for its whole
    /// duration (`--connections`): a high-connection sweep measures QPS and
    /// latency while the server multiplexes thousands of parked sockets.
    pub connections: usize,
    /// Slowloris connections (`--slow-clients`): each sends a partial
    /// request head and then stalls. They must pin reactor poll slots, not
    /// workers — the measured workload should be unaffected.
    pub slow_clients: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 7070)),
            clients: 8,
            requests_per_client: 50,
            zipf_s: 1.0,
            seed: 0x6b73_6721,
            timeout: Duration::from_secs(5),
            pacing: Pacing::Closed,
            targets: Vec::new(),
            explain: false,
            keep_alive: false,
            connections: 0,
            slow_clients: 0,
        }
    }
}

/// One workload entry: a query string plus its `s` threshold spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadEntry {
    /// Raw keyword query, e.g. `agarwal keyword search`.
    pub query: String,
    /// Threshold spelling passed through as `?s=` (`all`, `half`, or an int).
    pub s: String,
}

/// Parses a workload file: one query per line, optional `<TAB>s-value`
/// suffix; blank lines and `#` comments skipped.
pub fn parse_workload(text: &str) -> Vec<WorkloadEntry> {
    text.lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(|line| match line.split_once('\t') {
            Some((query, s)) => {
                WorkloadEntry { query: query.trim().to_string(), s: s.trim().to_string() }
            }
            None => WorkloadEntry { query: line.to_string(), s: "1".to_string() },
        })
        .collect()
}

/// Aggregated results of a load-generation run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests attempted across all clients.
    pub total: u64,
    /// 2xx responses.
    pub ok: u64,
    /// 4xx responses.
    pub client_errors: u64,
    /// 5xx responses (admission rejects + deadline aborts).
    pub server_errors: u64,
    /// Transport failures (connect/read errors, timeouts).
    pub transport_errors: u64,
    /// Responses carrying `x-gks-cache: hit`.
    pub cache_hits: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Sorted end-to-end latencies (µs) of completed requests. Closed loop:
    /// measured from the actual send. Open loop: measured from the
    /// *scheduled* send time, so queueing delay inside the generator counts
    /// against the server (no coordinated omission).
    pub latencies_micros: Vec<u64>,
    /// Open loop only: sorted scheduled-vs-actual send lag (µs) per request
    /// — how far behind its schedule the generator was when the request
    /// actually went out. Empty for closed-loop runs.
    pub send_lags_micros: Vec<u64>,
    /// Responses carrying `x-gks-shards` (answered by a sharded index).
    pub sharded: u64,
    /// Widest per-request shard fan-out observed (`x-gks-shards`); 0 when
    /// no sharded response was seen.
    pub fanout_max: u64,
    /// Sorted per-request gather (merge) times (µs) reported by the server
    /// via `x-gks-gather-micros`. Cache hits skip the gather, so this only
    /// samples real scatter/gather rounds.
    pub gather_micros: Vec<u64>,
    /// Sorted postings-scanned-per-query samples from `x-gks-cost`
    /// summaries (`--explain` runs only). Cache hits replay cached bytes
    /// without the header, so this samples actual engine work.
    pub work_postings: Vec<u64>,
}

impl LoadReport {
    /// Sustained throughput over the run.
    pub fn qps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total as f64 / secs
    }

    /// Cache hit rate over completed (non-transport-error) requests.
    pub fn hit_rate(&self) -> f64 {
        let completed = self.ok + self.client_errors + self.server_errors;
        if completed == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / completed as f64
    }

    /// Exact `q`-quantile (0 < q ≤ 1) of the recorded latencies, in µs.
    pub fn percentile(&self, q: f64) -> u64 {
        Self::exact_quantile(&self.latencies_micros, q)
    }

    /// Exact `q`-quantile of the recorded send lags (open loop), in µs.
    pub fn send_lag_percentile(&self, q: f64) -> u64 {
        Self::exact_quantile(&self.send_lags_micros, q)
    }

    /// Exact `q`-quantile of the recorded gather times (sharded), in µs.
    pub fn gather_percentile(&self, q: f64) -> u64 {
        Self::exact_quantile(&self.gather_micros, q)
    }

    /// Exact `q`-quantile of postings scanned per query (`--explain` runs).
    pub fn work_percentile(&self, q: f64) -> u64 {
        Self::exact_quantile(&self.work_postings, q)
    }

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "requests          {}", self.total);
        let _ = writeln!(out, "  2xx             {}", self.ok);
        let _ = writeln!(out, "  4xx             {}", self.client_errors);
        let _ = writeln!(out, "  5xx             {}", self.server_errors);
        let _ = writeln!(out, "  transport-errs  {}", self.transport_errors);
        let _ = writeln!(
            out,
            "cache hits        {} ({:.1}%)",
            self.cache_hits,
            self.hit_rate() * 100.0
        );
        let _ = writeln!(out, "elapsed           {:.3}s", self.elapsed.as_secs_f64());
        let _ = writeln!(out, "throughput        {:.1} qps", self.qps());
        for (q, label) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            let _ = writeln!(out, "latency {label}       {}us", self.percentile(q));
        }
        if !self.send_lags_micros.is_empty() {
            for (q, label) in [(0.5, "p50"), (0.99, "p99")] {
                let _ = writeln!(out, "send lag {label}      {}us", self.send_lag_percentile(q));
            }
            let _ = writeln!(
                out,
                "send lag max      {}us",
                self.send_lags_micros[self.send_lags_micros.len() - 1]
            );
        }
        if self.sharded > 0 {
            let _ = writeln!(
                out,
                "sharded           {} response(s), fan-out {}",
                self.sharded, self.fanout_max
            );
            if !self.gather_micros.is_empty() {
                for (q, label) in [(0.5, "p50"), (0.99, "p99")] {
                    let _ = writeln!(out, "gather {label}        {}us", self.gather_percentile(q));
                }
            }
        }
        if !self.work_postings.is_empty() {
            // Work beside QPS: a bench leg that got faster by scanning less
            // (cache, pruning) reads differently from one that got faster
            // per posting.
            for (q, label) in [(0.5, "p50"), (0.99, "p99")] {
                let _ = writeln!(
                    out,
                    "work {label}          {} postings/query",
                    self.work_percentile(q)
                );
            }
        }
        out
    }
}

/// SplitMix64 — tiny deterministic PRNG for query sampling; no external
/// crates and stable across platforms.
#[derive(Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf sampler over ranks `0..n` via inverse-CDF on precomputed cumulative
/// weights (`weight(rank) = 1 / (rank+1)^s`). O(log n) per sample.
#[derive(Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s` (`s = 0` → uniform).
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        let n = n.max(1);
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    fn sample(&self, rng: &mut SplitMix64) -> usize {
        let total = self.cumulative[self.cumulative.len() - 1];
        let target = rng.next_f64() * total;
        // First rank whose cumulative weight exceeds the target.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).unwrap_or(std::cmp::Ordering::Equal))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[derive(Debug, Default)]
struct SharedTallies {
    ok: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    transport_errors: AtomicU64,
    cache_hits: AtomicU64,
    sharded: AtomicU64,
    fanout_max: AtomicU64,
    gather_micros: std::sync::Mutex<Vec<u64>>,
    work_postings: std::sync::Mutex<Vec<u64>>,
}

/// Weighted pick over the configured index targets. Empty targets → `None`
/// (bare `/search`), and — deliberately — no RNG draw, so single-index runs
/// sample the exact same query sequence as before the traffic-mix feature.
fn pick_target<'a>(config: &'a LoadgenConfig, rng: &mut SplitMix64) -> Option<&'a IndexTarget> {
    if config.targets.is_empty() {
        return None;
    }
    let total: u64 = config.targets.iter().map(|t| t.weight.max(1)).sum();
    let mut roll = rng.next_u64() % total.max(1);
    for target in &config.targets {
        let w = target.weight.max(1);
        if roll < w {
            return Some(target);
        }
        roll -= w;
    }
    config.targets.last()
}

/// Routes one GET through the per-thread keep-alive connection when
/// [`LoadgenConfig::keep_alive`] is set, dialing (or redialing) on demand;
/// otherwise falls back to connect-per-request [`http_get`]. A transport
/// error clears the slot so the next request reconnects.
fn send(
    config: &LoadgenConfig,
    target: &str,
    conn: &mut Option<HttpClient>,
) -> std::io::Result<ClientResponse> {
    if !config.keep_alive {
        return http_get(config.addr, target, config.timeout);
    }
    let mut client = match conn.take() {
        Some(client) => client,
        None => HttpClient::connect(config.addr, config.timeout)?,
    };
    let response = client.get(target)?;
    // Only a healthy connection goes back in the slot; an error above
    // dropped the client, so the next request redials.
    *conn = Some(client);
    Ok(response)
}

/// Issues one request and tallies its outcome. `index` routes via the
/// `/ix/<name>/` prefix when given. Returns the measured latency anchored at
/// `measure_from` (closed loop: the actual send; open loop: the scheduled
/// send, which charges generator queueing to the server), or `None` on a
/// transport error.
fn issue(
    config: &LoadgenConfig,
    tallies: &SharedTallies,
    entry: &WorkloadEntry,
    index: Option<&str>,
    measure_from: Instant,
    conn: &mut Option<HttpClient>,
) -> Option<u64> {
    let prefix = match index {
        Some(name) => format!("/ix/{}", percent_encode(name)),
        None => String::new(),
    };
    let target = format!(
        "{prefix}/search?q={}&s={}{}",
        percent_encode(&entry.query),
        percent_encode(&entry.s),
        if config.explain { "&explain=1" } else { "" }
    );
    match send(config, &target, conn) {
        Ok(response) => {
            let micros = u64::try_from(measure_from.elapsed().as_micros()).unwrap_or(u64::MAX);
            let counter = match response.status {
                200..=299 => &tallies.ok,
                400..=499 => &tallies.client_errors,
                _ => &tallies.server_errors,
            };
            counter.fetch_add(1, Ordering::Relaxed);
            if response.header("x-gks-cache") == Some("hit") {
                tallies.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            // Sharded indexes announce their scatter width and (on misses)
            // the gather time; fold both into the run summary.
            if let Some(width) = response.header("x-gks-shards").and_then(|v| v.parse().ok()) {
                tallies.sharded.fetch_add(1, Ordering::Relaxed);
                tallies.fanout_max.fetch_max(width, Ordering::Relaxed);
            }
            if let Some(gather) =
                response.header("x-gks-gather-micros").and_then(|v| v.parse().ok())
            {
                if let Ok(mut samples) = tallies.gather_micros.lock() {
                    samples.push(gather);
                }
            }
            // Engine runs under --explain report their cost summary; cache
            // hits have no header, so work samples only cover real work.
            if let Some(ledger) = response
                .header("x-gks-cost")
                .and_then(gks_core::CostLedger::parse_summary_header)
            {
                if let Ok(mut samples) = tallies.work_postings.lock() {
                    samples.push(ledger.postings_scanned);
                }
            }
            Some(micros)
        }
        Err(_) => {
            tallies.transport_errors.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Runs the generator against `config.addr` with queries sampled from
/// `workload`, dispatching on [`LoadgenConfig::pacing`]. Blocks until every
/// client finishes. Total requests = `clients × requests_per_client` in
/// both modes.
pub fn run(config: &LoadgenConfig, workload: &[WorkloadEntry]) -> LoadReport {
    let entries: Arc<Vec<WorkloadEntry>> = Arc::new(if workload.is_empty() {
        vec![WorkloadEntry { query: "keyword".to_string(), s: "1".to_string() }]
    } else {
        workload.to_vec()
    });
    let tallies = Arc::new(SharedTallies::default());
    // Background sockets held for the whole run: `connections` idle
    // keep-alive conns (the server parks them in its poll set) and
    // `slow_clients` slowloris conns that stall mid-request-head. Both are
    // dropped only after the measured workload finishes.
    let _holders = open_holders(config);
    let started = Instant::now();
    let total = (config.clients.max(1) * config.requests_per_client) as u64;
    let (latencies_micros, send_lags_micros) = match config.pacing {
        Pacing::Closed => (run_closed(config, &entries, &tallies), Vec::new()),
        Pacing::Open { rate_qps } => run_open(config, &entries, &tallies, rate_qps, total),
    };
    let mut gather_micros =
        tallies.gather_micros.lock().map(|samples| samples.clone()).unwrap_or_default();
    gather_micros.sort_unstable();
    let mut work_postings =
        tallies.work_postings.lock().map(|samples| samples.clone()).unwrap_or_default();
    work_postings.sort_unstable();
    LoadReport {
        total,
        ok: tallies.ok.load(Ordering::Relaxed),
        client_errors: tallies.client_errors.load(Ordering::Relaxed),
        server_errors: tallies.server_errors.load(Ordering::Relaxed),
        transport_errors: tallies.transport_errors.load(Ordering::Relaxed),
        cache_hits: tallies.cache_hits.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        latencies_micros,
        send_lags_micros,
        sharded: tallies.sharded.load(Ordering::Relaxed),
        fanout_max: tallies.fanout_max.load(Ordering::Relaxed),
        gather_micros,
        work_postings,
    }
}

/// Opens the idle and slowloris holder connections. Idle holders complete
/// the TCP handshake and go silent — a well-behaved but inactive keep-alive
/// client. Slowloris holders send an unterminated request head and stall,
/// which must tie up a poll slot (until the read deadline evicts them with
/// a 408), never a worker. Connect failures are skipped: the point is the
/// population held open, not an exact count.
fn open_holders(config: &LoadgenConfig) -> Vec<std::net::TcpStream> {
    use std::io::Write as _;
    let mut holders = Vec::with_capacity(config.connections + config.slow_clients);
    for _ in 0..config.connections {
        if let Ok(stream) = std::net::TcpStream::connect_timeout(&config.addr, config.timeout) {
            holders.push(stream);
        }
    }
    for _ in 0..config.slow_clients {
        if let Ok(mut stream) = std::net::TcpStream::connect_timeout(&config.addr, config.timeout) {
            let _ = stream.write(b"GET /search?q=slowloris HTTP/1.1\r\nHost: gks\r\n");
            holders.push(stream);
        }
    }
    holders
}

/// Closed loop: each client sends back-to-back.
fn run_closed(
    config: &LoadgenConfig,
    entries: &Arc<Vec<WorkloadEntry>>,
    tallies: &Arc<SharedTallies>,
) -> Vec<u64> {
    let handles: Vec<_> = (0..config.clients.max(1))
        .map(|client_id| {
            let entries = Arc::clone(entries);
            let tallies = Arc::clone(tallies);
            let config = config.clone();
            std::thread::spawn(move || {
                let mut rng = SplitMix64(config.seed ^ (client_id as u64).wrapping_mul(0x9e37));
                let sampler = ZipfSampler::new(entries.len(), config.zipf_s);
                let mut latencies = Vec::with_capacity(config.requests_per_client);
                let mut conn = None;
                for _ in 0..config.requests_per_client {
                    let entry = &entries[sampler.sample(&mut rng)];
                    let index = pick_target(&config, &mut rng).map(|t| t.name.clone());
                    let sent = Instant::now();
                    if let Some(micros) =
                        issue(&config, &tallies, entry, index.as_deref(), sent, &mut conn)
                    {
                        latencies.push(micros);
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies_micros = Vec::new();
    for handle in handles {
        if let Ok(mut thread_latencies) = handle.join() {
            latencies_micros.append(&mut thread_latencies);
        }
    }
    latencies_micros.sort_unstable();
    latencies_micros
}

/// Open loop: request `i` is due at `start + i/rate`; clients claim slots
/// from a shared counter, sleep until the slot's time, and measure from the
/// schedule. Returns `(latencies, send_lags)`, both sorted.
fn run_open(
    config: &LoadgenConfig,
    entries: &Arc<Vec<WorkloadEntry>>,
    tallies: &Arc<SharedTallies>,
    rate_qps: f64,
    total: u64,
) -> (Vec<u64>, Vec<u64>) {
    // Degenerate rates fall back to "everything due immediately" — still
    // open loop, just with the whole schedule at t=0.
    let interval_nanos = if rate_qps > 0.0 { 1e9 / rate_qps } else { 0.0 };
    let next_slot = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..config.clients.max(1))
        .map(|client_id| {
            let entries = Arc::clone(entries);
            let tallies = Arc::clone(tallies);
            let next_slot = Arc::clone(&next_slot);
            let config = config.clone();
            std::thread::spawn(move || {
                let mut rng = SplitMix64(config.seed ^ (client_id as u64).wrapping_mul(0x9e37));
                let sampler = ZipfSampler::new(entries.len(), config.zipf_s);
                let mut latencies = Vec::new();
                let mut lags = Vec::new();
                let mut conn = None;
                loop {
                    let slot = next_slot.fetch_add(1, Ordering::Relaxed);
                    if slot as u64 >= total {
                        break;
                    }
                    let due = start + Duration::from_nanos((slot as f64 * interval_nanos) as u64);
                    let now = Instant::now();
                    if let Some(wait) = due.checked_duration_since(now) {
                        std::thread::sleep(wait);
                    }
                    // Scheduled-vs-actual send lag: zero when we slept until
                    // the slot, positive when the generator fell behind.
                    let lag = Instant::now().saturating_duration_since(due);
                    lags.push(u64::try_from(lag.as_micros()).unwrap_or(u64::MAX));
                    let entry = &entries[sampler.sample(&mut rng)];
                    let index = pick_target(&config, &mut rng).map(|t| t.name.clone());
                    if let Some(micros) =
                        issue(&config, &tallies, entry, index.as_deref(), due, &mut conn)
                    {
                        latencies.push(micros);
                    }
                }
                (latencies, lags)
            })
        })
        .collect();
    let mut latencies_micros = Vec::new();
    let mut send_lags_micros = Vec::new();
    for handle in handles {
        if let Ok((mut thread_latencies, mut thread_lags)) = handle.join() {
            latencies_micros.append(&mut thread_latencies);
            send_lags_micros.append(&mut thread_lags);
        }
    }
    latencies_micros.sort_unstable();
    send_lags_micros.sort_unstable();
    (latencies_micros, send_lags_micros)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_target_parsing() {
        assert_eq!(
            parse_index_target("dblp"),
            Some(IndexTarget { name: "dblp".into(), weight: 1 })
        );
        assert_eq!(
            parse_index_target("nasa=3"),
            Some(IndexTarget { name: "nasa".into(), weight: 3 })
        );
        assert_eq!(parse_index_target(""), None);
        assert_eq!(parse_index_target("=2"), None);
        assert_eq!(parse_index_target("a=0"), None, "weight must be >= 1");
        assert_eq!(parse_index_target("a=x"), None);
    }

    #[test]
    fn target_picks_follow_weights() {
        let config = LoadgenConfig {
            targets: vec![
                IndexTarget { name: "hot".into(), weight: 9 },
                IndexTarget { name: "cold".into(), weight: 1 },
            ],
            ..Default::default()
        };
        let mut rng = SplitMix64(42);
        let mut hot = 0u32;
        const DRAWS: u32 = 2_000;
        for _ in 0..DRAWS {
            if pick_target(&config, &mut rng).unwrap().name == "hot" {
                hot += 1;
            }
        }
        // Expect ~90%; allow generous slack for the deterministic PRNG.
        assert!((1_600..=2_000).contains(&hot), "hot picks {hot} of {DRAWS}");

        let bare = LoadgenConfig::default();
        assert!(pick_target(&bare, &mut rng).is_none(), "no targets → default index");
    }

    #[test]
    fn workload_parsing() {
        let entries =
            parse_workload("# comment\nkeyword search\t2\n\nagarwal\n  twig joins \thalf\n");
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0], WorkloadEntry { query: "keyword search".into(), s: "2".into() });
        assert_eq!(entries[1], WorkloadEntry { query: "agarwal".into(), s: "1".into() });
        assert_eq!(entries[2], WorkloadEntry { query: "twig joins".into(), s: "half".into() });
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let sampler = ZipfSampler::new(100, 1.2);
        let mut rng = SplitMix64(7);
        let mut head = 0u32;
        const DRAWS: u32 = 2_000;
        for _ in 0..DRAWS {
            if sampler.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1.2 over 100 ranks, the top 10 carry well over half the
        // mass; uniform sampling would put only ~10% there.
        assert!(head > DRAWS / 2, "head draws {head} of {DRAWS}");
    }

    #[test]
    fn zipf_zero_is_roughly_uniform() {
        let sampler = ZipfSampler::new(10, 0.0);
        let mut rng = SplitMix64(11);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..=1300).contains(&c), "uniform bucket way off: {counts:?}");
        }
    }

    #[test]
    fn percentiles_are_exact_over_samples() {
        let report = LoadReport {
            total: 4,
            ok: 4,
            client_errors: 0,
            server_errors: 0,
            transport_errors: 0,
            cache_hits: 2,
            elapsed: Duration::from_secs(2),
            latencies_micros: vec![10, 20, 30, 40],
            send_lags_micros: Vec::new(),
            sharded: 0,
            fanout_max: 0,
            gather_micros: Vec::new(),
            work_postings: Vec::new(),
        };
        assert_eq!(report.percentile(0.5), 20);
        assert_eq!(report.percentile(0.99), 40);
        assert_eq!(report.qps(), 2.0);
        assert!((report.hit_rate() - 0.5).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("throughput"));
        assert!(!text.contains("send lag"), "closed loop reports no lag");
        assert!(!text.contains("sharded"), "no shard lines for unsharded runs");
    }

    #[test]
    fn open_loop_report_includes_send_lag() {
        let report = LoadReport {
            total: 3,
            ok: 3,
            client_errors: 0,
            server_errors: 0,
            transport_errors: 0,
            cache_hits: 0,
            elapsed: Duration::from_secs(1),
            latencies_micros: vec![100, 200, 300],
            send_lags_micros: vec![0, 5, 250],
            sharded: 0,
            fanout_max: 0,
            gather_micros: Vec::new(),
            work_postings: Vec::new(),
        };
        assert_eq!(report.send_lag_percentile(0.5), 5);
        assert_eq!(report.send_lag_percentile(0.99), 250);
        let text = report.render();
        assert!(text.contains("send lag p50"), "{text}");
        assert!(text.contains("send lag max      250us"), "{text}");
    }

    #[test]
    fn explain_report_includes_work_summary() {
        let report = LoadReport {
            total: 3,
            ok: 3,
            client_errors: 0,
            server_errors: 0,
            transport_errors: 0,
            cache_hits: 0,
            elapsed: Duration::from_secs(1),
            latencies_micros: vec![100, 200, 300],
            send_lags_micros: Vec::new(),
            sharded: 0,
            fanout_max: 0,
            gather_micros: Vec::new(),
            work_postings: vec![4, 9, 120],
        };
        assert_eq!(report.work_percentile(0.5), 9);
        assert_eq!(report.work_percentile(0.99), 120);
        let text = report.render();
        assert!(text.contains("work p50          9 postings/query"), "{text}");
        assert!(text.contains("work p99          120 postings/query"), "{text}");
    }

    #[test]
    fn sharded_report_includes_fanout_and_gather() {
        let report = LoadReport {
            total: 3,
            ok: 3,
            client_errors: 0,
            server_errors: 0,
            transport_errors: 0,
            cache_hits: 1,
            elapsed: Duration::from_secs(1),
            latencies_micros: vec![100, 200, 300],
            send_lags_micros: Vec::new(),
            sharded: 3,
            fanout_max: 4,
            gather_micros: vec![7, 11],
            work_postings: Vec::new(),
        };
        assert_eq!(report.gather_percentile(0.5), 7);
        assert_eq!(report.gather_percentile(0.99), 11);
        let text = report.render();
        assert!(text.contains("sharded           3 response(s), fan-out 4"), "{text}");
        assert!(text.contains("gather p50        7us"), "{text}");
        assert!(text.contains("gather p99        11us"), "{text}");
    }
}
